#!/usr/bin/env python3
"""What-if policy experiments.

Re-runs the same nine days of traffic under alternative censorship
policies and compares outcomes against the Summer-2011 baseline — the
forward-looking use of the reproduction the paper's conclusion
envisions ("facilitate the design of censorship-evading tools").

Scenarios:
  * baseline         — the policy the paper measured;
  * tor-blackout     — the December-2012 state (all relays blocked);
  * streaming-curfew — category × time-of-day blocking (evening);
  * no-keywords      — the keyword engine removed (collateral-damage
                       counterfactual).

Run:  python examples/whatif_policies.py
"""

from __future__ import annotations

from repro.analysis.overview import traffic_breakdown
from repro.analysis.toranalysis import identify_tor_traffic, tor_overview
from repro.reporting import render_table
from repro.scenarios import (
    build_custom_scenario,
    no_keyword_filtering,
    streaming_curfew,
    tor_blackout,
)
from repro.workload.config import small_config


def main() -> None:
    config = small_config(40_000, seed=8)
    print("Running four policies over identical traffic...")

    scenarios = {
        "baseline (2011)": build_custom_scenario(config),
        "tor blackout (2012)": build_custom_scenario(config, tor_blackout),
        "streaming curfew 18-23h": build_custom_scenario(
            config, streaming_curfew(18, 23)
        ),
        "no keyword engine": build_custom_scenario(
            config, no_keyword_filtering
        ),
    }

    rows = []
    for name, datasets in scenarios.items():
        breakdown = traffic_breakdown(datasets.full)
        tor = tor_overview(identify_tor_traffic(
            datasets.full, datasets.generator.tor_directory
        ))
        rows.append([
            name,
            f"{breakdown.censored_pct:.2f}",
            f"{breakdown.allowed_pct:.2f}",
            f"{tor.censored_pct:.1f}",
            len(tor.censored_by_proxy),
        ])
    print(render_table(
        ["Policy", "Censored %", "Allowed %", "Tor censored %",
         "Proxies censoring Tor"],
        rows,
        title="\nOutcomes under alternative policies",
    ))

    print("\nReadings:")
    print(" * The Tor blackout multiplies Tor censorship while the rest "
          "of the traffic is untouched — circumvention tooling should "
          "expect relay blocking to arrive independently of web policy "
          "changes (it did, in Dec 2012).")
    print(" * The curfew shows how cheaply a DPI appliance turns "
          "category data into time-targeted blocking.")
    print(" * Removing the keyword engine roughly halves censored volume "
          "— most of what the 2011 policy blocked was substring "
          "collateral, exactly the paper's conclusion.")


if __name__ == "__main__":
    main()
