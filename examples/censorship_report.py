#!/usr/bin/env python3
"""The full measurement study, end to end.

Simulates the deployment and runs every analysis of the paper —
Tables 1-15 and Figures 1-10 — printing a condensed report.

Run:  python examples/censorship_report.py [total_requests]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.report import build_report
from repro.datasets import build_scenario
from repro.reporting import render_table
from repro.reporting.tables import render_bar_chart
from repro.workload.config import (
    DEFAULT_BOOSTS,
    DEFAULT_USER_DAY_BOOST,
    ScenarioConfig,
)


def main() -> None:
    total = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    print(f"Simulating {total:,} requests across 9 days and 7 proxies...")
    datasets = build_scenario(ScenarioConfig(
        total_requests=total,
        seed=42,
        boosts=dict(DEFAULT_BOOSTS) | {"redirect-targets": 120.0},
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    ))
    print("Running the full analysis pipeline...")
    report = build_report(datasets)

    full = report.table3["full"]
    print(f"\n=== Overview (Section 4) ===")
    print(f"Requests: {full.total:,}; allowed {full.allowed_pct:.2f}%, "
          f"censored {full.censored_pct:.2f}%, "
          f"errors {full.denied_pct - full.censored_pct:.2f}%, "
          f"proxied {full.proxied_pct:.2f}%")

    print(render_table(
        ["Allowed domain", "%", "Censored domain", "%"],
        [
            [a.domain, f"{a.share_pct:.2f}", c.domain, f"{c.share_pct:.2f}"]
            for a, c in zip(report.table4.allowed, report.table4.censored)
        ],
        title="\nTable 4 — top domains",
    ))

    print("\n=== The censorship policy, recovered from the logs "
          "(Section 5.4) ===")
    print(f"Suspected always-blocked domains: {len(report.table8)} "
          f"(top: {[r.domain for r in report.table8[:6]]})")
    print(f"Recovered keywords: "
          f"{[(k.keyword, k.coverage) for k in report.recovered_keywords]}")
    print(render_table(
        ["Keyword", "Censored", "% of censored", "Allowed"],
        [[r.keyword, r.censored, f"{r.censored_share_pct:.2f}", r.allowed]
         for r in report.table10],
        title="\nTable 10 — keyword blacklist",
    ))

    print(render_bar_chart(
        [(s.category, s.share_pct) for s in report.fig3[:9]],
        title="\nFig 3 — censored traffic by category",
    ))

    print("\n=== Proxies (Section 5.2) ===")
    matrix = report.table6
    print("Cosine similarity of censored-domain vectors "
          "(SG-48 is the outlier):")
    header = ["", *matrix.proxies]
    rows = [
        [a, *(f"{matrix.value(a, b):.2f}" for b in matrix.proxies)]
        for a in matrix.proxies
    ]
    print(render_table(header, rows))

    print("\n=== IP-based filtering (Tables 11-12) ===")
    print(render_table(
        ["Country", "Censored", "Allowed", "Ratio %"],
        [[r.country, r.censored, r.allowed, f"{r.ratio_pct:.2f}"]
         for r in report.table11[:7]],
    ))

    print("\n=== Social media (Section 6) ===")
    print(render_table(
        ["Network", "Censored", "Allowed"],
        [[r.network, r.censored, r.allowed] for r in report.table13[:8]],
    ))
    if report.table14:
        print(render_table(
            ["Facebook page", "Censored", "Allowed"],
            [[r.page, r.censored, r.allowed] for r in report.table14[:8]],
            title="\nBlocked Facebook pages (custom category)",
        ))

    print("\n=== Circumvention (Section 7) ===")
    tor = report.tor
    print(f"Tor: {tor.total_requests} requests to {tor.distinct_relays} "
          f"relays, {tor.http_share_pct:.1f}% directory traffic, "
          f"{tor.censored} censored — all by {set(tor.censored_by_proxy)}")
    bt = report.bittorrent
    print(f"BitTorrent: {bt.announce_requests} announces from "
          f"{bt.unique_users} peers, {bt.allowed_share_pct:.2f}% allowed; "
          f"{bt.circumvention_announces} announces for circumvention tools, "
          f"{bt.im_software_announces} for IM installers")
    cache = report.google_cache
    print(f"Google cache: {cache.requests} fetches, {cache.censored} "
          f"censored; {cache.censored_content_fetches} allowed fetches of "
          f"otherwise-censored content ({', '.join(cache.censored_targets)})")

    anon = report.fig10
    print(f"Anonymizers: {anon.hosts} hosts, "
          f"{anon.never_filtered_hosts_pct:.1f}% never filtered; of the "
          f"filtered ones {anon.majority_allowed_pct:.1f}% still serve more "
          "allowed than censored requests")

    values = report.fig9.rfilter[~np.isnan(report.fig9.rfilter)]
    print(f"Tor re-censoring ratio R_filter: mean {values.mean():.2f}, "
          f"std {values.std():.2f} over {len(values)} bins "
          "(inconsistent blocking)")


if __name__ == "__main__":
    main()
