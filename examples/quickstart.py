#!/usr/bin/env python3
"""Quickstart: simulate a small Blue Coat deployment and look at the logs.

Builds a scaled-down version of the censorship ecosystem the paper
measured, prints the headline statistics, shows the classification of
a few raw log lines, and round-trips records through the leaked CSV
format.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import io

from repro.analysis.overview import top_domains, traffic_breakdown
from repro.datasets import build_scenario
from repro.logmodel.elff import read_log, write_log
from repro.logmodel.record import LogRecord
from repro.reporting import render_table
from repro.workload.config import small_config


def main() -> None:
    print("Building a 30,000-request scenario "
          "(9 days, 7 proxies, Syrian policy)...")
    datasets = build_scenario(small_config(30_000, seed=1))
    print(f"datasets: {datasets.summary()}")

    # -- headline statistics (the paper's Table 3) -----------------------
    breakdown = traffic_breakdown(datasets.full)
    print(render_table(
        ["Class", "Requests", "% of traffic"],
        [
            ["allowed", breakdown.allowed, f"{breakdown.allowed_pct:.2f}"],
            ["censored", breakdown.censored, f"{breakdown.censored_pct:.2f}"],
            ["errors", breakdown.errors,
             f"{breakdown.denied_pct - breakdown.censored_pct:.2f}"],
            ["proxied", breakdown.proxied, f"{breakdown.proxied_pct:.2f}"],
        ],
        title="\nTraffic breakdown (paper: 93.25% allowed, 0.98% censored)",
    ))

    # -- who gets censored (the paper's Table 4) --------------------------
    domains = top_domains(datasets.full, n=8)
    print(render_table(
        ["Censored domain", "Requests", "% of censored"],
        [[row.domain, row.requests, f"{row.share_pct:.1f}"]
         for row in domains.censored],
        title="\nTop censored domains",
    ))

    # -- raw log round-trip (the leaked CSV/ELFF format) -------------------
    print("\nRound-tripping 3 records through the leaked log format:")
    records = []
    for i in (0, 1, 2):
        row = datasets.full.row(i)
        records.append(LogRecord(
            epoch=int(row["epoch"]),
            c_ip=str(row["c_ip"]),
            s_ip=str(row["s_ip"]),
            cs_host=str(row["cs_host"]),
            cs_uri_path=str(row["cs_uri_path"]),
            cs_uri_query=str(row["cs_uri_query"]),
            sc_filter_result=str(row["sc_filter_result"]),
            x_exception_id=str(row["x_exception_id"]),
        ))
    buffer = io.StringIO()
    write_log(records, buffer)
    buffer.seek(0)
    for record in read_log(buffer):
        print(f"  {record.cs_host:<40} -> {record.traffic_class.value}")

    print("\nDone.  See examples/censorship_report.py for the full "
          "analysis pipeline.")


if __name__ == "__main__":
    main()
