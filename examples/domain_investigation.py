#!/usr/bin/env python3
"""Investigating individual domains, the way an analyst works the logs.

The paper's aggregate tables raise per-domain questions — *why* is a
domain censored, which of its URLs get through, which host under it is
the problem?  The drill-down API answers them.

Run:  python examples/domain_investigation.py [domain ...]
"""

from __future__ import annotations

import sys

from repro.analysis.drilldown import domain_profile
from repro.datasets import build_scenario
from repro.reporting import render_table
from repro.workload.config import small_config

DEFAULT_DOMAINS = (
    "facebook.com",   # mixed: plugins blocked, platform open
    "metacafe.com",   # fully blocked by domain rule
    "live.com",       # one host blocked, the rest open
    "google.com",     # collateral: the toolbar endpoint only
)


def show(profile) -> None:
    kind = (
        "FULLY BLOCKED" if profile.fully_blocked
        else "mixed" if profile.mixed
        else "open"
    )
    print(f"\n=== {profile.domain} — {kind} "
          f"({profile.censored_pct:.1f}% of its traffic censored) ===")
    print(f"requests: {profile.requests:,}  allowed {profile.allowed:,}  "
          f"censored {profile.censored:,}  errors {profile.errors:,}  "
          f"proxied {profile.proxied:,}")
    if profile.hosts:
        print("hosts:", ", ".join(
            f"{host} ({count})" for host, count in profile.hosts[:5]
        ))
    if profile.top_censored_paths:
        print(render_table(
            ["Censored path", "Censored", "Allowed"],
            [[p.path, p.censored, p.allowed]
             for p in profile.top_censored_paths[:5]],
        ))
    if profile.top_allowed_paths:
        allowed_paths = ", ".join(
            p.path for p in profile.top_allowed_paths[:4]
        )
        print(f"allowed paths: {allowed_paths}")
    if profile.censored_by_day:
        series = ", ".join(f"{d}:{c}" for d, c in profile.censored_by_day)
        print(f"censored per day: {series}")


def main() -> None:
    domains = sys.argv[1:] or list(DEFAULT_DOMAINS)
    print("Simulating 50,000 requests...")
    datasets = build_scenario(small_config(50_000, seed=12))
    for domain in domains:
        show(domain_profile(datasets.full, domain))
    print("\nReading: facebook's censorship is all plugin endpoints "
          "(keyword collateral); metacafe never serves a single allowed "
          "request (domain rule); live.com splits cleanly by host "
          "(messenger gateway blocked, mail open); google loses only "
          "the toolbar path.")


if __name__ == "__main__":
    main()
