#!/usr/bin/env python3
"""Censorship-circumvention audit (Section 7 of the paper).

Measures how Syrian users evade the filter: web proxies and VPNs
(Fig. 10), BitTorrent as a delivery channel for blocked software
(Section 7.3), and Google's cache as an accidental mirror of censored
pages (Section 7.4).

Run:  python examples/circumvention_audit.py
"""

from __future__ import annotations

from repro.analysis.anonymizers import anonymizer_analysis
from repro.analysis.googlecache import google_cache_analysis
from repro.analysis.p2p import bittorrent_analysis
from repro.analysis.stringfilter import recover_censored_domains
from repro.bittorrent import TitleDatabase
from repro.datasets import build_scenario
from repro.stats.distributions import fraction_at_or_below
from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig


def main() -> None:
    print("Simulating with circumvention traffic oversampled...")
    datasets = build_scenario(ScenarioConfig(
        total_requests=80_000,
        seed=5,
        boosts=dict(DEFAULT_BOOSTS) | {
            "bittorrent": 20.0, "google-cache": 300.0,
        },
    ))
    frame = datasets.full

    # -- web proxies / VPNs (Section 7.2, Fig. 10) -----------------------
    anon = anonymizer_analysis(frame, datasets.categorizer)
    print(f"\nAnonymizer services: {anon.hosts} hosts carrying "
          f"{anon.requests_share_pct:.2f}% of traffic")
    print(f"  never filtered: {anon.never_filtered_hosts_pct:.1f}% of "
          f"hosts ({anon.never_filtered_requests_pct:.1f}% of requests)")
    print(f"  of the {anon.partially_filtered_hosts} filtered services, "
          f"{anon.majority_allowed_pct:.1f}% still serve more allowed "
          "than censored requests")
    if anon.ratio_cdf:
        ratios = [value for value, _ in anon.ratio_cdf]
        below_one = fraction_at_or_below(
            __import__("numpy").array(ratios), 1.0
        )
        print(f"  allowed/censored ratio spans {min(ratios):.2f} to "
              f"{max(ratios):.1f} (Fig. 10b)")
    print("  -> censorship keys on the 'proxy' keyword in fetch URLs, "
          "not on the services themselves; tools without the keyword "
          "pass untouched.")

    # -- BitTorrent (Section 7.3) ----------------------------------------
    titledb = TitleDatabase(datasets.generator.torrent_catalog)
    bt = bittorrent_analysis(frame, titledb)
    print(f"\nBitTorrent: {bt.announce_requests} announce requests from "
          f"{bt.unique_users} peers for {bt.unique_contents} contents")
    print(f"  {bt.allowed_share_pct:.2f}% allowed (paper: 99.97%); the "
          f"only censored tracker: {bt.censored_tracker_hosts}")
    print(f"  title crawl resolved {bt.resolve_rate_pct:.1f}% of info "
          "hashes (paper: 77.4%)")
    print(f"  circumvention-tool torrents: {bt.circumvention_announces} "
          f"announces; IM-installer torrents: {bt.im_software_announces}")
    print("  -> users fetch UltraSurf and Skype installers over P2P "
          "because the official sites are blocked.")

    # -- Google cache (Section 7.4) ---------------------------------------
    suspected = {row.domain for row in recover_censored_domains(frame)}
    cache = google_cache_analysis(
        frame, suspected | {"panet.co.il", "free-syria.com"}
    )
    print(f"\nGoogle cache: {cache.requests} fetches through "
          "webcache.googleusercontent.com")
    print(f"  censored: {cache.censored} (only keyword hits in the cache "
          "URL itself)")
    print(f"  allowed fetches of otherwise-censored content: "
          f"{cache.censored_content_fetches} — targets: "
          f"{', '.join(cache.censored_targets)}")
    print("  -> an unintended but effective circumvention channel, as "
          "the paper concludes.")


if __name__ == "__main__":
    main()
