#!/usr/bin/env python3
"""Social-media censorship audit (Section 6 of the paper).

Shows the paper's headline finding about social media: the platforms
stay up, but a handful of political pages are surgically redirected,
and the bulk of "censored facebook traffic" is collateral damage from
the ``proxy`` keyword hitting social-plugin URLs.

Run:  python examples/social_media_audit.py
"""

from __future__ import annotations

from repro.analysis.socialmedia import (
    facebook_pages,
    facebook_plugins,
    osn_breakdown,
)
from repro.analysis.redirects import redirect_hosts
from repro.datasets import build_scenario
from repro.reporting import render_table
from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig


def main() -> None:
    print("Simulating with page-visit traffic oversampled...")
    datasets = build_scenario(ScenarioConfig(
        total_requests=80_000,
        seed=6,
        boosts=dict(DEFAULT_BOOSTS) | {"redirect-targets": 600.0},
    ))
    frame = datasets.full

    print(render_table(
        ["Network", "Censored", "Allowed", "Proxied"],
        [[r.network, r.censored, r.allowed, r.proxied]
         for r in osn_breakdown(frame, top=12)],
        title="\nTable 13 — the social-network watchlist "
              "(28 networks; most are open)",
    ))

    print(render_table(
        ["Facebook page", "Censored", "Allowed", "Custom-category hits"],
        [[r.page, r.censored, r.allowed, r.custom_category_hits]
         for r in facebook_pages(frame)[:12]],
        title="\nTable 14 — page-level censorship (the custom "
              "'Blocked sites' category)",
    ))
    print("Note how narrow the targeting is: the same page with an AJAX "
          "query form escapes the category, and related pages "
          "(ShaamNewsNetwork, Syrian.Revolution.Army) are never touched.")

    print(render_table(
        ["Plugin element", "Censored", "% of censored fb traffic"],
        [[r.element, r.censored, f"{r.censored_share_pct:.1f}"]
         for r in facebook_plugins(frame)],
        title="\nTable 15 — social plugins: the collateral damage",
    ))
    print("The plugin URLs embed the SDK channel file xd_proxy.php; the "
          "'proxy' substring match censors them all.")

    redirects = redirect_hosts(frame)
    print(render_table(
        ["Redirect host", "Requests", "% of redirects"],
        [[host, count, f"{share:.1f}"]
         for host, count, share in redirects.rows],
        title="\nTable 7 — hosts redirected rather than denied",
    ))


if __name__ == "__main__":
    main()
