#!/usr/bin/env python3
"""Tor censorship analysis (Section 7.1 of the paper).

Identifies Tor traffic in the logs by matching destination endpoints
against the relay directory, shows that a single proxy censors onion
connections while directory traffic passes, and computes the
R_filter inconsistency metric of Fig. 9.

Run:  python examples/tor_blocking.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.toranalysis import (
    identify_tor_traffic,
    refilter_ratio,
    tor_hourly_series,
    tor_overview,
)
from repro.datasets import build_scenario
from repro.reporting.tables import render_bar_chart
from repro.timeline import day_epoch
from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig


def main() -> None:
    print("Simulating with Tor traffic oversampled for resolution...")
    datasets = build_scenario(ScenarioConfig(
        total_requests=80_000,
        seed=7,
        boosts=dict(DEFAULT_BOOSTS) | {"tor": 150.0},
    ))
    directory = datasets.generator.tor_directory
    print(f"Relay directory: {len(directory)} relays, "
          f"{len(directory.dir_endpoints())} with directory ports")

    tor = identify_tor_traffic(datasets.full, directory)
    overview = tor_overview(tor)
    print(f"\nIdentified {overview.total_requests} Tor requests to "
          f"{overview.distinct_relays} relays "
          f"(paper: 95K requests, 1,111 relays)")
    print(f"Directory (Tor_http) share: {overview.http_share_pct:.1f}% "
          "(paper: 73%)")
    print(f"TCP errors: {overview.tcp_error_pct:.1f}% (paper: 16.2%)")
    print(f"Censored: {overview.censored} "
          f"({overview.censored_pct:.2f}%; paper: 1.38%)")
    print(f"Censoring proxies: {overview.censored_by_proxy} "
          "(paper: 99.9% SG-44)")
    print(f"Tor_http censored: {overview.http_censored} "
          "(paper: only onion traffic is ever censored)")

    start = day_epoch("2011-08-01")
    end = day_epoch("2011-08-06") + 86400
    series = tor_hourly_series(tor, start, end)
    daily = series.counts.reshape(6, 24).sum(axis=1)
    print(render_bar_chart(
        [(f"Aug {i + 1}", float(count)) for i, count in enumerate(daily)],
        title="\nTor requests per day (paper: peak on the Aug 3 protests)",
    ))

    rfilter = refilter_ratio(tor, bin_seconds=6 * 3600)
    values = rfilter.rfilter[~np.isnan(rfilter.rfilter)]
    print(f"\nR_filter over {len(values)} bins: mean {values.mean():.3f}, "
          f"std {values.std():.3f}, min {values.min():.2f}")
    print("High variance = previously-censored relays alternate between "
          "blocked and allowed, the paper's evidence that the Tor "
          "blocking was a trial deployment.")


if __name__ == "__main__":
    main()
