#!/usr/bin/env python3
"""The release pipeline: simulate → anonymize → publish → audit → analyze.

Re-enacts the data's journey: the proxies log raw traffic, the release
suppresses client identities (zeroed everywhere, hashed for July
22-23), a privacy audit verifies nothing leaks, and the published
files still support the full analysis — the property that made the
paper possible.

Run:  python examples/release_pipeline.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.analysis.overview import top_domains, traffic_breakdown
from repro.datasets import build_scenario
from repro.frame import concat, frame_from_records
from repro.logmodel.audit import audit_release
from repro.logmodel.elff import ReadStats, read_log, write_log
from repro.logmodel.record import LogRecord
from repro.workload.config import small_config


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="syria-release-")
    )
    out.mkdir(parents=True, exist_ok=True)

    # 1. Simulate the deployment (anonymization happens at build time,
    #    exactly like the release).
    print("1. Simulating the deployment...")
    datasets = build_scenario(small_config(25_000, seed=14))
    frame = datasets.full

    # 2. Publish: one ELFF file per proxy, like the Telecomix release.
    print("2. Writing the release files...")
    by_proxy: dict[str, list[LogRecord]] = {}
    for i in range(len(frame)):
        row = frame.row(i)
        record = LogRecord(
            epoch=int(row["epoch"]),
            c_ip=str(row["c_ip"]),
            s_ip=str(row["s_ip"]),
            cs_host=str(row["cs_host"]),
            cs_uri_path=str(row["cs_uri_path"]),
            cs_uri_query=str(row["cs_uri_query"]),
            sc_filter_result=str(row["sc_filter_result"]),
            x_exception_id=str(row["x_exception_id"]),
            cs_user_agent=str(row["cs_user_agent"]),
            cs_categories=str(row["cs_categories"]),
        )
        by_proxy.setdefault(record.s_ip, []).append(record)
    paths = []
    for s_ip, records in sorted(by_proxy.items()):
        path = out / f"sg-{s_ip.rsplit('.', 1)[-1]}.log"
        write_log(records, path)
        paths.append(path)
        print(f"   {path.name}: {len(records):,} records")

    # 3. Privacy audit before anything leaves the machine.
    print("3. Auditing the release for client-address leaks...")
    findings = audit_release(*paths)
    print(f"   {findings.summary()}")
    if not findings.safe:
        raise SystemExit("release blocked: raw client addresses present")

    # 4. A downstream researcher loads the published files...
    print("4. Re-loading the published files (lenient parser)...")
    stats = ReadStats()
    frames = [
        frame_from_records(read_log(path, lenient=True, stats=stats))
        for path in paths
    ]
    published = concat(frames)
    print(f"   parsed {stats.records:,} records, skipped {stats.skipped}")

    # 5. ...and reproduces the analysis from the files alone.
    print("5. Analyzing the published logs...")
    breakdown = traffic_breakdown(published)
    print(f"   allowed {breakdown.allowed_pct:.2f}%, "
          f"censored {breakdown.censored_pct:.2f}%")
    censored = top_domains(published).censored[:5]
    print("   top censored:", ", ".join(r.domain for r in censored))
    print(f"\nRelease directory: {out}")


if __name__ == "__main__":
    main()
