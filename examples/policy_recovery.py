#!/usr/bin/env python3
"""Recovering a censorship policy from proxy logs alone.

The paper's core methodological contribution (Section 5.4) is the
iterative recovery of the filtering rules from the logs: blocked
domains from bare-URL evidence, keywords from censored/allowed
contrast.  This example runs the recovery against a simulation where
the true policy is known, then grades the result — a validation the
paper's authors could never perform on the real leak.

Run:  python examples/policy_recovery.py
"""

from __future__ import annotations

from repro.analysis.stringfilter import (
    keyword_stats,
    recover_censored_domains,
    recover_censored_hosts,
    recover_keywords,
)
from repro.datasets import build_scenario
from repro.reporting import render_table
from repro.workload.config import small_config


def main() -> None:
    print("Simulating 60,000 requests through the Syrian policy...")
    datasets = build_scenario(small_config(60_000, seed=3))
    frame = datasets.full
    truth = datasets.policy

    # ------------------------------------------------------------------
    print("\nStep 1 — recover always-blocked domains "
          "(bare-URL evidence, Table 8):")
    suspected = recover_censored_domains(frame)
    print(render_table(
        ["Domain", "Censored", "% of censored", "In true policy?"],
        [
            [row.domain, row.censored, f"{row.censored_share_pct:.2f}",
             "yes" if row.domain in truth.blocked_domains
             else ("il-suffix" if row.domain.endswith(".il")
                   else "keyword-named")]
            for row in suspected[:15]
        ],
    ))
    recovered_set = {row.domain for row in suspected}
    truth_with_traffic = {
        domain for domain in truth.blocked_domains if domain in recovered_set
    }
    print(f"Recovered {len(suspected)} domains; "
          f"{len(truth_with_traffic)} are rule-blocked domains, the rest "
          "are .il-suffix or keyword-named hosts (indistinguishable from "
          "domain rules, as the paper notes).")

    # ------------------------------------------------------------------
    print("\nStep 2 — recover individually-blocked hosts "
          "(finer than Table 8):")
    exclusion = {
        row.domain for row in recover_censored_domains(frame, min_censored=1)
    }
    from repro.policy.syria import REDIRECT_HOSTS

    hosts = recover_censored_hosts(frame, exclude_domains=exclusion,
                                   min_censored=1)
    for row in hosts:
        if row.host in truth.blocked_hosts:
            marker = "yes (host rule)"
        elif row.host in REDIRECT_HOSTS:
            marker = "yes (redirect rule)"
        else:
            marker = "?"
        print(f"  {row.host:<30} censored={row.censored:<5} "
              f"in true policy: {marker}")

    # ------------------------------------------------------------------
    print("\nStep 3 — recover the keyword blacklist "
          "(greedy max-coverage, Table 10):")
    keywords = recover_keywords(
        frame,
        exclude_domains=exclusion,
        exclude_hosts={row.host for row in hosts},
    )
    print(render_table(
        ["Recovered keyword", "Coverage", "In true blacklist?"],
        [[k.keyword, k.coverage,
          "yes" if k.keyword in truth.keywords else "NO"]
         for k in keywords],
    ))
    missed = set(truth.keywords) - {k.keyword for k in keywords}
    if missed:
        print(f"Not recovered at this scale (too little traffic): {missed}")

    # ------------------------------------------------------------------
    print("\nStep 4 — quantify each true keyword (Table 10):")
    print(render_table(
        ["Keyword", "Censored", "% of censored", "Allowed (must be 0)"],
        [[r.keyword, r.censored, f"{r.censored_share_pct:.2f}", r.allowed]
         for r in keyword_stats(frame, truth.keywords)],
    ))
    print("\nThe 'proxy' keyword alone explains over half the censored "
          "traffic — the paper's collateral-damage finding.")


if __name__ == "__main__":
    main()
