"""Exporting a :class:`~repro.metrics.registry.MetricsRegistry`.

Two consumers: ``--metrics PATH`` writes the JSON document described in
``docs/CLI.md`` (schema ``repro.metrics/3``), and the Markdown report
embeds the human-readable summary section.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.atomicio import atomic_write_text
from repro.metrics.registry import MetricsRegistry

#: Version tag of the JSON metrics document.  Bumped to /2 when the
#: quarantined-shard ``failures`` array joined the schema, and to /3
#: when checkpoint/resume added ``totals.resumed_shards`` (shards
#: loaded from a run ledger instead of executed).
METRICS_SCHEMA = "repro.metrics/3"


def metrics_report(
    registry: MetricsRegistry,
    *,
    command: str | None = None,
    workers: int | None = None,
    wall_seconds: float | None = None,
) -> dict:
    """Assemble the JSON-ready metrics document."""
    records = registry.total_records()
    shard_wall = sum(shard.wall_seconds for shard in registry.shards)
    totals = {
        "shards": len(registry.shards),
        "records": records,
        "shard_wall_seconds": shard_wall,
        "records_per_sec": records / shard_wall if shard_wall > 0 else 0.0,
        "quarantined_shards": len(registry.failures),
        "resumed_shards": registry.counters.get("engine.shards.resumed", 0),
    }
    document = {
        "schema": METRICS_SCHEMA,
        "command": command,
        "workers": workers,
        "wall_seconds": wall_seconds,
        "totals": totals,
    }
    document.update(registry.to_dict())
    return document


def write_metrics_report(
    destination: Path | str,
    registry: MetricsRegistry,
    *,
    command: str | None = None,
    workers: int | None = None,
    wall_seconds: float | None = None,
) -> Path:
    """Write the JSON metrics document; returns the path written."""
    destination = Path(destination)
    if destination.parent != Path(""):
        destination.parent.mkdir(parents=True, exist_ok=True)
    document = metrics_report(
        registry,
        command=command,
        workers=workers,
        wall_seconds=wall_seconds,
    )
    atomic_write_text(destination, json.dumps(document, indent=2) + "\n")
    return destination


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += [
        "| " + " | ".join(str(value) for value in row) + " |" for row in rows
    ]
    return "\n".join(lines)


def metrics_to_markdown(registry: MetricsRegistry) -> str:
    """The human-readable "Pipeline metrics" section."""
    records = registry.total_records()
    shard_wall = sum(shard.wall_seconds for shard in registry.shards)
    rate = records / shard_wall if shard_wall > 0 else 0.0
    parts: list[str] = [
        "## Pipeline metrics",
        "",
        f"{len(registry.shards)} shards, {records:,} records, "
        f"{shard_wall:.2f} s shard wall time ({rate:,.0f} records/s).",
        "",
    ]
    if registry.counters:
        parts += [
            "### Counters",
            "",
            _md_table(
                ["Counter", "Value"],
                [
                    [name, f"{registry.counters[name]:,}"]
                    for name in sorted(registry.counters)
                ],
            ),
            "",
        ]
    if registry.timers:
        parts += [
            "### Timers",
            "",
            _md_table(
                ["Timer", "Spans", "Total (s)", "Mean (s)"],
                [
                    [
                        name,
                        stats.count,
                        f"{stats.total_seconds:.3f}",
                        f"{stats.mean_seconds:.4f}",
                    ]
                    for name, stats in sorted(registry.timers.items())
                ],
            ),
            "",
        ]
    if registry.shards:
        parts += [
            "### Shards",
            "",
            _md_table(
                ["Shard", "Records", "Wall (s)", "Records/s", "Worker PID"],
                [
                    [
                        shard.shard_id,
                        f"{shard.records:,}",
                        f"{shard.wall_seconds:.3f}",
                        f"{shard.records_per_sec:,.0f}",
                        shard.worker_pid,
                    ]
                    for shard in registry.shards
                ],
            ),
            "",
        ]
    if registry.failures:
        parts += [
            "### Quarantined shards",
            "",
            _md_table(
                ["Shard", "Site", "Attempts", "Error"],
                [
                    [
                        failure.shard_id,
                        failure.site,
                        failure.attempts,
                        failure.error,
                    ]
                    for failure in registry.failures
                ],
            ),
            "",
        ]
    return "\n".join(parts).rstrip("\n")
