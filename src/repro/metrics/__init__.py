"""Engine observability: mergeable metrics threaded through the pipeline.

The paper's result is a statistic over 751 M log lines; trusting a
pipeline at that scale means being able to *see* it run.  This package
provides the instrumentation layer:

* :class:`MetricsRegistry` — a process-safe, picklable, mergeable bag
  of counters, gauges, and monotonic-clock timers (the same monoid
  discipline as the streaming accumulators);
* :class:`ShardMetrics` — one record per engine shard (records, wall
  time, throughput, worker pid), collected by ``run_sharded``;
* :func:`current_registry` / :func:`use_registry` — the activation
  switch the hot paths check; when no registry is active the hooks cost
  one branch and nothing is recorded;
* :mod:`repro.metrics.report` — the ``--metrics PATH`` JSON document
  and the Markdown summary section.
"""

from repro.metrics.registry import (
    MetricsDelta,
    MetricsRegistry,
    MetricsSnapshot,
    ShardMetrics,
    TimerStats,
    current_registry,
    set_registry,
    use_registry,
)
from repro.metrics.report import (
    METRICS_SCHEMA,
    metrics_report,
    metrics_to_markdown,
    write_metrics_report,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsDelta",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ShardMetrics",
    "TimerStats",
    "current_registry",
    "metrics_report",
    "metrics_to_markdown",
    "set_registry",
    "use_registry",
    "write_metrics_report",
]
