"""Process-safe metrics primitives: counters, gauges, timers, shards.

The engine parallelizes across processes, so the registry follows the
same monoid discipline as :class:`~repro.analysis.streaming.
StreamingAnalysis`: every worker owns a private
:class:`MetricsRegistry`, and the parent folds them together with
``merge`` in shard order.  ``merge`` is associative with the empty
registry as identity (and commutative on counters and timers), which is
what makes the aggregate counts worker-count-invariant — the property
tests pin these laws down.

Registries are picklable (the thread lock is dropped and re-created
across pickling), so a worker's registry can travel back to the parent
alongside the shard result.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass

from repro.faults.report import ShardFailure


@dataclass(frozen=True)
class ShardMetrics:
    """One shard's execution record: what ran, where, and how fast."""

    shard_id: str
    records: int
    wall_seconds: float
    worker_pid: int

    @property
    def records_per_sec(self) -> float:
        """Throughput over the shard's wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.records / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "shard_id": self.shard_id,
            "records": self.records,
            "wall_seconds": self.wall_seconds,
            "records_per_sec": self.records_per_sec,
            "worker_pid": self.worker_pid,
        }


@dataclass
class TimerStats:
    """Accumulated monotonic-clock spans for one timer name."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average span length."""
        return self.total_seconds / self.count if self.count else 0.0

    def merge(self, other: "TimerStats") -> "TimerStats":
        """Fold another timer's spans in; returns self."""
        self.count += other.count
        self.total_seconds += other.total_seconds
        return self

    def copy(self) -> "TimerStats":
        return TimerStats(self.count, self.total_seconds)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable mark of a registry's monotonic state.

    Counters and timers only ever grow, so a long-running process
    cannot read *rates* off the raw registry — only totals since
    start.  A snapshot freezes the growing parts (plus a monotonic
    timestamp); :meth:`MetricsRegistry.delta_since` diffs the live
    registry against a mark to recover what happened in between.
    """

    counters: dict[str, int]
    timers: dict[str, tuple[int, float]]
    taken_at: float

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The before-anything mark (a delta against it is the total)."""
        return cls(counters={}, timers={}, taken_at=0.0)


@dataclass(frozen=True)
class MetricsDelta:
    """Growth of a registry between two marks: the per-window view.

    ``counters`` holds only the names that grew; ``timers`` the spans
    recorded in the window.  ``seconds`` is the monotonic wall time
    between the marks, which :meth:`rate` divides by.  Deltas feed the
    service's ``/stats`` endpoint and the load generator's live
    output; the batch ``--metrics`` JSON document is untouched
    (schema ``repro.metrics/3`` reports totals, as before).
    """

    counters: dict[str, int]
    timers: dict[str, TimerStats]
    seconds: float

    def count(self, name: str) -> int:
        """Counter growth in the window (0 when it did not move)."""
        return self.counters.get(name, 0)

    def rate(self, name: str) -> float:
        """Counter growth per second of window wall time."""
        if self.seconds <= 0.0:
            return 0.0
        return self.counters.get(name, 0) / self.seconds

    def to_dict(self) -> dict:
        """JSON-ready representation, deterministically ordered."""
        return {
            "seconds": self.seconds,
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "rates": {
                name: self.rate(name) for name in sorted(self.counters)
            },
            "timers": {
                name: self.timers[name].to_dict()
                for name in sorted(self.timers)
            },
        }


class MetricsRegistry:
    """A mergeable bag of counters, gauges, timers, and shard records.

    * **counters** accumulate integer deltas (``inc``); merging adds.
    * **gauges** hold the latest value (``set_gauge``); merging is a
      right-biased union — the merged-in registry wins on shared names.
    * **timers** accumulate monotonic-clock spans (``timer``/
      ``observe``); merging adds counts and totals.
    * **shards** are :class:`ShardMetrics` rows; merging concatenates
      in merge order.
    * **failures** are quarantined-shard
      :class:`~repro.faults.ShardFailure` rows (partial-results mode);
      merging concatenates in merge order.

    Mutation is guarded by a lock so concurrent threads (e.g. a future
    callback) can record safely; cross-process safety comes from each
    process owning its registry and the parent merging afterwards.
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStats] = {}
        self.shards: list[ShardMetrics] = []
        self.failures: list[ShardFailure] = []
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name*."""
        with self._lock:
            self.counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (latest wins)."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one span of *seconds* under the timer *name*."""
        with self._lock:
            stats = self.timers.get(name)
            if stats is None:
                stats = self.timers[name] = TimerStats()
            stats.count += 1
            stats.total_seconds += seconds

    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` block on the monotonic clock."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - start)

    def add_shard(self, shard: ShardMetrics) -> None:
        """Append one shard's execution record."""
        with self._lock:
            self.shards.append(shard)

    def add_failure(self, failure: ShardFailure) -> None:
        """Append one quarantined shard's failure record."""
        with self._lock:
            self.failures.append(failure)

    # -- delta snapshots ---------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """An immutable mark of the monotonic state (counters, timers)
        plus a monotonic-clock stamp, for :meth:`delta_since`."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self.counters),
                timers={
                    name: (stats.count, stats.total_seconds)
                    for name, stats in self.timers.items()
                },
                taken_at=time.monotonic(),
            )

    def delta_since(self, mark: MetricsSnapshot | None) -> MetricsDelta:
        """What grew since *mark* (``None`` = since the empty registry).

        Returns only the counters that moved and the timer spans
        recorded in the window, with the window's wall seconds — the
        building block for per-window rates in long-running processes,
        where the raw monotonic totals can only answer "since start".
        """
        if mark is None:
            mark = MetricsSnapshot.empty()
        now = self.snapshot()
        counters = {
            name: grown
            for name, value in now.counters.items()
            if (grown := value - mark.counters.get(name, 0))
        }
        timers = {}
        for name, (count, total) in now.timers.items():
            before_count, before_total = mark.timers.get(name, (0, 0.0))
            if count != before_count:
                timers[name] = TimerStats(
                    count - before_count, total - before_total
                )
        seconds = now.taken_at - mark.taken_at if mark.taken_at else 0.0
        return MetricsDelta(counters=counters, timers=timers,
                            seconds=seconds)

    # -- the monoid --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* in (counters add, gauges right-bias, timers
        add, shards and failures concatenate); returns self."""
        with self._lock:
            self.counters.update(other.counters)
            self.gauges.update(other.gauges)
            for name, stats in other.timers.items():
                mine = self.timers.get(name)
                if mine is None:
                    self.timers[name] = stats.copy()
                else:
                    mine.merge(stats)
            self.shards.extend(other.shards)
            self.failures.extend(other.failures)
        return self

    def copy(self) -> "MetricsRegistry":
        """An independent registry with the same state."""
        return MetricsRegistry().merge(self)

    def __iadd__(self, other: "MetricsRegistry") -> "MetricsRegistry":
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.merge(other)

    def __add__(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Non-mutating merge; ``sum(parts, MetricsRegistry())`` works."""
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.copy().merge(other)

    def _state(self) -> tuple:
        return (
            self.counters, self.gauges, self.timers, self.shards,
            self.failures,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self._state() == other._state()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, timers={len(self.timers)}, "
            f"shards={len(self.shards)})"
        )

    # -- pickling (locks don't pickle) ------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- export ------------------------------------------------------------

    def total_records(self) -> int:
        """Records processed across all shards."""
        return sum(shard.records for shard in self.shards)

    def to_dict(self) -> dict:
        """JSON-ready representation, deterministically ordered."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "timers": {
                name: self.timers[name].to_dict()
                for name in sorted(self.timers)
            },
            "shards": [shard.to_dict() for shard in self.shards],
            "failures": [failure.to_dict() for failure in self.failures],
        }


#: The process-wide active registry that hot paths report to; ``None``
#: disables instrumentation (the default — a single predicted branch on
#: the hot paths).
_ACTIVE: MetricsRegistry | None = None


def current_registry() -> MetricsRegistry | None:
    """The registry hot paths should report to, or None when disabled."""
    return _ACTIVE


def set_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Install *registry* as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None):
    """Activate *registry* for a ``with`` block, restoring the previous
    active registry on exit (nesting-safe)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
