"""End-to-end scenario build: traffic → policy → fleet → datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.categories import Category
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame, frame_from_records
from repro.logmodel.anonymize import hash_client_ip, zero_client_ip
from repro.logmodel.record import LogRecord
from repro.policy.syria import SyrianPolicy, build_syrian_policy
from repro.proxy import ProxyFleet
from repro.timeline import USER_SLICE_DAYS, day_span
from repro.workload import ScenarioConfig, TrafficGenerator

DEFAULT_SAMPLE_FRACTION = 0.04


@dataclass
class ScenarioDatasets:
    """The four analysis datasets plus the scenario's ground truth."""

    full: LogFrame
    sample: LogFrame
    user: LogFrame
    denied: LogFrame
    config: ScenarioConfig
    policy: SyrianPolicy
    generator: TrafficGenerator
    categorizer: TrustedSourceCategorizer
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION
    records_by_day: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, int]:
        """Dataset sizes, mirroring the paper's Table 1."""
        return {
            "full": len(self.full),
            "sample": len(self.sample),
            "user": len(self.user),
            "denied": len(self.denied),
        }


def _build_categorizer(generator: TrafficGenerator) -> TrustedSourceCategorizer:
    categorizer = TrustedSourceCategorizer(generator.sites)
    # Anonymizer endpoints addressed by raw IP categorize as
    # "Anonymizer" — the check the paper runs on censored addresses.
    for address in generator.blocked_anonymizer_addresses():
        categorizer.add_host(address, Category.ANONYMIZER)
    # The paper finds exactly one censored Israeli address categorized
    # as an Anonymizer host (Section 5.4).
    for pool in generator.address_pools:
        if pool.name == "il-84.229.0.0/16":
            categorizer.add_host(pool.addresses[0], Category.ANONYMIZER)
            break
    return categorizer


def anonymize_records(
    records: list[LogRecord], user_spans: list[tuple[int, int]]
) -> None:
    """Apply the Telecomix release treatment to client addresses."""
    for record in records:
        in_user_slice = any(
            start <= record.epoch < end for start, end in user_spans
        )
        if in_user_slice:
            record.c_ip = hash_client_ip(record.c_ip)
        else:
            record.c_ip = zero_client_ip(record.c_ip)


def assemble_datasets(
    records: list[LogRecord],
    records_by_day: dict[str, int],
    config: ScenarioConfig,
    generator: TrafficGenerator,
    policy: SyrianPolicy,
    rng: np.random.Generator,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
) -> ScenarioDatasets:
    """Assemble the four analysis datasets from simulated records.

    Shared tail of every scenario build (serial, custom-policy, and
    the sharded engine): frame conversion, the D_sample draw from
    *rng*, and the D_user/D_denied masks.
    """
    full = frame_from_records(records)
    sample = full.sample(sample_fraction, rng)
    user_spans = [day_span(day) for day in USER_SLICE_DAYS]
    user_mask = np.zeros(len(full), dtype=bool)
    epochs = full.col("epoch")
    for start, end in user_spans:
        user_mask |= (epochs >= start) & (epochs < end)
    return ScenarioDatasets(
        full=full,
        sample=sample,
        user=full.where(user_mask),
        denied=full.where(full.col("x_exception_id") != "-"),
        config=config,
        policy=policy,
        generator=generator,
        categorizer=_build_categorizer(generator),
        sample_fraction=sample_fraction,
        records_by_day=records_by_day,
    )


def build_scenario(
    config: ScenarioConfig | None = None,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
) -> ScenarioDatasets:
    """Simulate a scenario and assemble its four datasets.

    Deterministic for a given config (all randomness flows from
    ``config.seed``).
    """
    config = config or ScenarioConfig()
    generator = TrafficGenerator(config)
    policy = build_syrian_policy(
        generator.sites,
        tor_directory=generator.tor_directory,
        extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
    )
    fleet = ProxyFleet(policy)

    rng = np.random.default_rng(config.seed + 1000)
    user_spans = [day_span(day) for day in USER_SLICE_DAYS]
    all_records: list[LogRecord] = []
    records_by_day: dict[str, int] = {}
    for day, requests in generator.generate():
        day_records = [fleet.process(request, rng) for request in requests]
        anonymize_records(day_records, user_spans)
        records_by_day[day] = len(day_records)
        all_records.extend(day_records)

    return assemble_datasets(
        all_records, records_by_day, config, generator, policy, rng,
        sample_fraction,
    )
