"""End-to-end scenario build: traffic → policy → fleet → datasets.

The serial builders here run on the same fused Source → Stage → Sink
pipeline as the sharded engine: records stream generator → fleet →
anonymizer straight into columnar buffers, so a scenario build never
materializes its record list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.catalog.categories import Category
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame, frame_from_records
from repro.logmodel.record import LogRecord
from repro.pipeline import (
    AnonymizeStage,
    FleetStage,
    FrameSink,
    Pipeline,
    RecordsSource,
)
from repro.regimes import ApplianceFleet, get_regime
from repro.timeline import USER_SLICE_DAYS, day_span
from repro.workload import ScenarioConfig, TrafficGenerator

DEFAULT_SAMPLE_FRACTION = 0.04


@dataclass
class ScenarioDatasets:
    """The four analysis datasets plus the scenario's ground truth."""

    full: LogFrame
    sample: LogFrame
    user: LogFrame
    denied: LogFrame
    config: ScenarioConfig
    #: the regime's policy object — :class:`~repro.policy.syria.
    #: SyrianPolicy` for the default regime, whatever the registered
    #: profile builds otherwise.
    policy: Any
    generator: TrafficGenerator
    categorizer: TrustedSourceCategorizer
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION
    records_by_day: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, int]:
        """Dataset sizes, mirroring the paper's Table 1."""
        return {
            "full": len(self.full),
            "sample": len(self.sample),
            "user": len(self.user),
            "denied": len(self.denied),
        }


def _build_categorizer(generator: TrafficGenerator) -> TrustedSourceCategorizer:
    categorizer = TrustedSourceCategorizer(generator.sites)
    # Anonymizer endpoints addressed by raw IP categorize as
    # "Anonymizer" — the check the paper runs on censored addresses.
    for address in generator.blocked_anonymizer_addresses():
        categorizer.add_host(address, Category.ANONYMIZER)
    # The paper finds exactly one censored Israeli address categorized
    # as an Anonymizer host (Section 5.4).
    for pool in generator.address_pools:
        if pool.name == "il-84.229.0.0/16":
            categorizer.add_host(pool.addresses[0], Category.ANONYMIZER)
            break
    return categorizer


def anonymize_records(
    records: list[LogRecord], user_spans: list[tuple[int, int]]
) -> None:
    """Apply the Telecomix release treatment to client addresses.

    Batch form of :class:`~repro.pipeline.stages.AnonymizeStage`, kept
    for callers that already hold a record list.
    """
    stage = AnonymizeStage(user_spans)
    for record in records:
        stage.anonymize(record)


def assemble_datasets(
    records: list[LogRecord],
    records_by_day: dict[str, int],
    config: ScenarioConfig,
    generator: TrafficGenerator,
    policy: Any,
    rng: np.random.Generator,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
) -> ScenarioDatasets:
    """Assemble the four analysis datasets from simulated records.

    List-taking wrapper over :func:`assemble_datasets_from_frame`, for
    callers that already materialized their records.
    """
    return assemble_datasets_from_frame(
        frame_from_records(records), records_by_day, config, generator,
        policy, rng, sample_fraction,
    )


def assemble_datasets_from_frame(
    full: LogFrame,
    records_by_day: dict[str, int],
    config: ScenarioConfig,
    generator: TrafficGenerator,
    policy: Any,
    rng: np.random.Generator,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
) -> ScenarioDatasets:
    """Assemble the four analysis datasets from the D_full frame.

    Shared tail of every scenario build (serial, custom-policy, and
    the sharded engine): the D_sample draw from *rng* and the
    D_user/D_denied masks.  Taking the frame (rather than records)
    keeps fused builds single-pass — a :class:`~repro.pipeline.sinks.
    FrameSink` feeds straight in.
    """
    sample = full.sample(sample_fraction, rng)
    user_spans = [day_span(day) for day in USER_SLICE_DAYS]
    user_mask = np.zeros(len(full), dtype=bool)
    epochs = full.col("epoch")
    for start, end in user_spans:
        user_mask |= (epochs >= start) & (epochs < end)
    return ScenarioDatasets(
        full=full,
        sample=sample,
        user=full.where(user_mask),
        denied=full.where(full.col("x_exception_id") != "-"),
        config=config,
        policy=policy,
        generator=generator,
        categorizer=_build_categorizer(generator),
        sample_fraction=sample_fraction,
        records_by_day=records_by_day,
    )


def simulate_scenario_frame(
    generator: TrafficGenerator,
    fleet: ApplianceFleet,
    rng: np.random.Generator,
) -> tuple[LogFrame, dict[str, int]]:
    """One fused pass over every log-day of the serial stream layout.

    Records flow generator → fleet → anonymizer → columnar buffers
    without a record list ever existing; *rng* is shared across days
    (the legacy single-stream layout, unlike the engine's per-day
    shard streams).  Returns the D_full frame and the per-day counts.
    """
    user_spans = [day_span(day) for day in USER_SLICE_DAYS]
    stages = (FleetStage(fleet, rng), AnonymizeStage(user_spans))
    sink = FrameSink()
    records_by_day: dict[str, int] = {}
    for day, requests in generator.generate():
        before = len(sink)
        Pipeline(RecordsSource(requests), stages).run(sink)
        records_by_day[day] = len(sink) - before
    return sink.frame(), records_by_day


def build_scenario(
    config: ScenarioConfig | None = None,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
) -> ScenarioDatasets:
    """Simulate a scenario and assemble its four datasets.

    Deterministic for a given config (all randomness flows from
    ``config.seed``); the config's regime profile supplies the
    workload, policy, and fleet.
    """
    config = config or ScenarioConfig()
    profile = get_regime(config.regime)
    generator = profile.build_workload(config)
    policy = profile.build_policy(generator)
    fleet = profile.build_fleet(policy)

    rng = np.random.default_rng(config.seed + 1000)
    full, records_by_day = simulate_scenario_frame(generator, fleet, rng)
    return assemble_datasets_from_frame(
        full, records_by_day, config, generator, policy, rng,
        sample_fraction,
    )
