"""Sampling theory helpers.

The paper justifies its 4 % sample with the standard confidence
interval for proportions (Jain, *The Art of Computer Systems
Performance Analysis*, Section 13.9.2): for n = 32 M the measured
proportion is within ±0.0001 of the true one with 95 % probability.
"""

from __future__ import annotations

import math

# Two-sided normal quantiles for common confidence levels.
_Z_BY_CONFIDENCE = {
    0.90: 1.6449,
    0.95: 1.9600,
    0.99: 2.5758,
}


def proportion_confidence_interval(
    proportion: float,
    sample_size: int,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Normal-approximation CI for a proportion.

    Returns ``(low, high)``, clipped to [0, 1].
    """
    if not 0.0 <= proportion <= 1.0:
        raise ValueError(f"proportion out of range: {proportion}")
    if sample_size < 1:
        raise ValueError("sample size must be positive")
    try:
        z = _Z_BY_CONFIDENCE[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; "
            f"choose from {sorted(_Z_BY_CONFIDENCE)}"
        ) from None
    half_width = z * math.sqrt(proportion * (1.0 - proportion) / sample_size)
    return (max(0.0, proportion - half_width), min(1.0, proportion + half_width))


def half_width(proportion: float, sample_size: int, confidence: float = 0.95) -> float:
    """The ± bound of the interval (the paper quotes ±0.0001)."""
    low, high = proportion_confidence_interval(proportion, sample_size, confidence)
    return (high - low) / 2.0
