"""Dataset construction (Section 3.3 of the paper).

Builds the four datasets the paper analyzes from one simulated
scenario:

* ``D_full`` — every log record;
* ``D_sample`` — a 4 % uniform random sample of D_full;
* ``D_user`` — the July 22–23 slice, whose client addresses the
  release hashed instead of zeroing;
* ``D_denied`` — all records with a non-dash exception id.
"""

from repro.datasets.builder import ScenarioDatasets, build_scenario
from repro.datasets.sampling import proportion_confidence_interval

__all__ = ["ScenarioDatasets", "build_scenario", "proportion_confidence_interval"]
