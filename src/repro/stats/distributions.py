"""CDF and histogram utilities for the figure analyses."""

from __future__ import annotations

import numpy as np


def cdf_points(values: np.ndarray) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points.

    Used for Fig. 4(b) and Fig. 10; duplicate values collapse to the
    highest cumulative fraction.
    """
    data = np.sort(np.asarray(values, dtype=float))
    if len(data) == 0:
        return []
    fractions = np.arange(1, len(data) + 1) / len(data)
    points: list[tuple[float, float]] = []
    for value, fraction in zip(data, fractions):
        if points and points[-1][0] == value:
            points[-1] = (float(value), float(fraction))
        else:
            points.append((float(value), float(fraction)))
    return points


def fraction_at_or_below(values: np.ndarray, threshold: float) -> float:
    """P(X <= threshold) under the empirical distribution."""
    data = np.asarray(values, dtype=float)
    if len(data) == 0:
        return 0.0
    return float((data <= threshold).mean())


def log_histogram(values: np.ndarray, bins: int = 24) -> list[tuple[float, int]]:
    """Histogram with logarithmic bin edges (for heavy-tailed data).

    Returns (bin left edge, count) pairs; zero/negative values are
    dropped (they have no logarithm).
    """
    data = np.asarray(values, dtype=float)
    data = data[data > 0]
    if len(data) == 0:
        return []
    low, high = data.min(), data.max()
    if low == high:
        return [(float(low), int(len(data)))]
    edges = np.logspace(np.log10(low), np.log10(high), bins + 1)
    counts, _ = np.histogram(data, bins=edges)
    return [(float(edge), int(count)) for edge, count in zip(edges[:-1], counts)]
