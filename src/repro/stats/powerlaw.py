"""Power-law helpers for the Fig. 2 analysis.

Fig. 2 plots, per traffic class, how many domains receive a given
number of requests — a power law.  We provide the histogram builder
and a discrete maximum-likelihood exponent fit (Clauset et al.'s
approximation), used by tests to assert the distribution is actually
heavy-tailed.
"""

from __future__ import annotations

import numpy as np


def requests_per_domain_histogram(counts: np.ndarray) -> list[tuple[int, int]]:
    """From per-domain request counts to (request count, #domains).

    The x/y pairs of one Fig. 2 curve, sorted by request count.
    """
    counts = np.asarray(counts)
    counts = counts[counts > 0]
    if len(counts) == 0:
        return []
    values, frequencies = np.unique(counts, return_counts=True)
    return [(int(v), int(f)) for v, f in zip(values, frequencies)]


def fit_power_law(counts: np.ndarray, xmin: float = 1, discrete: bool = True) -> float:
    """MLE exponent of a power law over *counts*.

    Continuous data uses ``alpha = 1 + n / sum(ln(x / xmin))``; for
    discrete data (request counts) the Clauset–Shalizi–Newman
    continuity correction replaces ``xmin`` with ``xmin - 0.5``
    (Eq. 3.7), adequate for the sanity checks here.
    """
    data = np.asarray(counts, dtype=float)
    data = data[data >= xmin]
    if len(data) < 2:
        raise ValueError("need at least two observations >= xmin")
    denominator = max(xmin - 0.5, 0.5) if discrete else xmin
    return 1.0 + len(data) / float(np.log(data / denominator).sum())
