"""Statistical helpers used across the analyses."""

from repro.stats.distributions import cdf_points, log_histogram
from repro.stats.powerlaw import fit_power_law, requests_per_domain_histogram
from repro.stats.similarity import cosine_similarity, pairwise_cosine

__all__ = [
    "cosine_similarity",
    "pairwise_cosine",
    "fit_power_law",
    "requests_per_domain_histogram",
    "cdf_points",
    "log_histogram",
]
