"""Cosine similarity over sparse count vectors (Table 6 of the paper).

The paper compares proxies by the cosine similarity of their censored
-domain request vectors: ``A_i`` is the number of requests for domain
``i`` censored by proxy A.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def cosine_similarity(a: Mapping[object, float], b: Mapping[object, float]) -> float:
    """Cosine similarity of two sparse vectors keyed by domain.

    Returns 0.0 when either vector is empty (no censored traffic seen
    by that proxy), which is the natural reading of "no similarity".
    """
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    norm_a = math.sqrt(sum(value * value for value in a.values()))
    norm_b = math.sqrt(sum(value * value for value in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def pairwise_cosine(
    vectors: Mapping[str, Mapping[object, float]],
    order: Sequence[str] | None = None,
) -> tuple[list[str], list[list[float]]]:
    """Full similarity matrix over named vectors.

    Returns (names, matrix) with matrix[i][j] = cos(v_i, v_j).
    """
    names = list(order) if order is not None else sorted(vectors)
    matrix = [
        [cosine_similarity(vectors.get(a, {}), vectors.get(b, {})) for b in names]
        for a in names
    ]
    return names, matrix
