"""Sharded scenario simulation — the map side of the engine.

Each shard generates, filters, and anonymizes one log-day.  A worker
rebuilds the scenario context (generator + policy + fleet)
deterministically from the config — ground truth is a pure function of
the seed, so every process sees the same universe — and caches it per
process, so a nine-shard run costs one construction per worker, not
one per shard.

Two consumers sit on top:

* :func:`simulate_day_records` / :func:`write_logs` back the CLI's
  ``simulate --workers N`` and produce byte-identical ELFF output for
  every worker count;
* :func:`build_scenario_sharded` assembles a full
  :class:`~repro.datasets.ScenarioDatasets` (the ``report`` pipeline)
  from the merged day shards.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets import ScenarioDatasets
from repro.datasets.builder import (
    DEFAULT_SAMPLE_FRACTION,
    anonymize_records,
    assemble_datasets,
)
from repro.engine.pool import run_sharded
from repro.engine.shards import child_seed, plan_shards
from repro.logmodel.elff import write_log
from repro.metrics import MetricsRegistry, current_registry
from repro.logmodel.record import LogRecord
from repro.policy.syria import SyrianPolicy, build_syrian_policy
from repro.proxy import ProxyFleet
from repro.timeline import USER_SLICE_DAYS, day_span, epoch_day
from repro.workload import TrafficGenerator
from repro.workload.config import ScenarioConfig


@dataclass
class SimContext:
    """The deterministic per-process scenario ground truth."""

    generator: TrafficGenerator
    policy: SyrianPolicy
    fleet: ProxyFleet
    user_spans: list[tuple[int, int]]


#: One cached context per process; keyed by config equality so a pool
#: reused across configs rebuilds instead of leaking the old universe.
_CONTEXT: tuple[ScenarioConfig, SimContext] | None = None


def scenario_context(config: ScenarioConfig) -> SimContext:
    """Build (or reuse) the scenario context for *config*."""
    global _CONTEXT
    if _CONTEXT is not None and _CONTEXT[0] == config:
        return _CONTEXT[1]
    generator = TrafficGenerator(config)
    policy = build_syrian_policy(
        generator.sites,
        tor_directory=generator.tor_directory,
        extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
    )
    context = SimContext(
        generator=generator,
        policy=policy,
        fleet=ProxyFleet(policy),
        user_spans=[day_span(day) for day in USER_SLICE_DAYS],
    )
    _CONTEXT = (config, context)
    return context


def simulate_shard(
    payload: tuple[ScenarioConfig, str, np.random.SeedSequence],
) -> list[LogRecord]:
    """Generate, filter, and anonymize one log-day.

    The shard seed spawns two independent streams — request generation
    and fleet processing (routing, errors, cache) — via stateless child
    derivation, so re-running a shard always replays the same day.
    """
    config, day, seed = payload
    context = scenario_context(config)
    generation_rng = np.random.default_rng(child_seed(seed, 0))
    fleet_rng = np.random.default_rng(child_seed(seed, 1))
    requests = context.generator.generate_day(day, generation_rng)
    records = [context.fleet.process(request, fleet_rng) for request in requests]
    anonymize_records(records, context.user_spans)
    registry = current_registry()
    if registry is not None:
        registry.inc("shard.records", len(records))
    return records


def simulate_day_records(
    config: ScenarioConfig,
    *,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
) -> dict[str, list[LogRecord]]:
    """Simulate every configured log-day, in day order.

    The returned mapping iterates in ``config.days`` order regardless
    of worker count or completion order.  A *metrics* registry collects
    per-shard throughput and the hot-path counters (verdicts,
    exceptions, cache activity) without touching the random streams —
    output is byte-identical with and without it.
    """
    plan = plan_shards(config)
    results = run_sharded(
        simulate_shard,
        [(config, shard.day, shard.seed) for shard in plan.shards],
        workers=workers,
        labels=[shard.shard_id for shard in plan.shards],
        metrics=metrics,
    )
    return {shard.day: records for shard, records in zip(plan.shards, results)}


def build_scenario_sharded(
    config: ScenarioConfig | None = None,
    *,
    workers: int = 1,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    metrics: MetricsRegistry | None = None,
) -> ScenarioDatasets:
    """Sharded counterpart of :func:`repro.datasets.build_scenario`.

    Deterministic for a given config at every worker count (the D_sample
    draw uses the plan's dedicated sampling seed).  The random streams
    are sharded per day, so the numbers differ from the serial
    builder's single-stream run of the same seed — by design: the
    engine's invariant is worker-count independence, not equality with
    the legacy stream layout.
    """
    config = config or ScenarioConfig()
    plan = plan_shards(config)
    day_records = simulate_day_records(config, workers=workers, metrics=metrics)
    all_records: list[LogRecord] = []
    records_by_day: dict[str, int] = {}
    for day, records in day_records.items():
        records_by_day[day] = len(records)
        all_records.extend(records)
    context = scenario_context(config)
    rng = np.random.default_rng(plan.sampling_seed)
    assemble_timer = (
        metrics.timer("engine.assemble_seconds")
        if metrics is not None
        else nullcontext()
    )
    with assemble_timer:
        return assemble_datasets(
            all_records, records_by_day, config, context.generator,
            context.policy, rng, sample_fraction,
        )


def write_logs(
    day_records: dict[str, list[LogRecord]],
    out_dir: Path,
    *,
    per_proxy: bool = False,
    per_day: bool = False,
) -> list[tuple[Path, int]]:
    """Write simulated days as ELFF files; returns ``(path, count)``s.

    Grouping mirrors the leak's file structure: combined
    ``proxies.log`` by default, ``sg-NN[_day].log`` with the flags.
    Records are written in day order within each file, so output bytes
    depend only on the day shards, never on worker scheduling.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if not (per_proxy or per_day):
        records = [
            record for records in day_records.values() for record in records
        ]
        path = out_dir / "proxies.log"
        return [(path, write_log(records, path))]
    grouped: dict[str, list[LogRecord]] = {}
    for records in day_records.values():
        for record in records:
            parts = []
            if per_proxy:
                parts.append(f"sg-{record.s_ip.rsplit('.', 1)[-1]}")
            if per_day:
                parts.append(epoch_day(record.epoch))
            grouped.setdefault("_".join(parts), []).append(record)
    return [
        (out_dir / f"{stem}.log", write_log(group, out_dir / f"{stem}.log"))
        for stem, group in sorted(grouped.items())
    ]
