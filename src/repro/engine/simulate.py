"""Sharded scenario simulation — the map side of the engine.

Each shard is one fused pipeline pass over one log-day:
``DayTrafficSource → FleetStage → AnonymizeStage → <sink>``.  A worker
rebuilds the scenario context (generator + policy + fleet, all three
supplied by the config's registered regime profile — see
:mod:`repro.regimes`) deterministically from the config — ground truth
is a pure function of the seed, so every process sees the same
universe — and caches it per process, so a nine-shard run costs one
construction per worker, not one per shard.

The sink is the caller's choice: :func:`simulate_into` runs the day
pipelines into fresh copies of any mergeable
:class:`~repro.pipeline.Sink` and reduces them in day order, which is
how every consumer fuses onto one traversal:

* :func:`simulate_to_logs` (the CLI's ``simulate``) streams each day
  straight into grouped ELFF buffers — generation, filtering, and
  serialization in a single pass, optionally gzip-compressed;
* :func:`build_scenario_sharded` (the ``report`` pipeline) folds each
  day straight into columnar frame buffers, so the full record list is
  never materialized;
* :func:`simulate_day_records` / :func:`write_logs` keep the legacy
  list-shaped API on the same pipeline core.

Output is byte-identical at every worker count for all of them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro.datasets import ScenarioDatasets
from repro.datasets.builder import (
    DEFAULT_SAMPLE_FRACTION,
    assemble_datasets_from_frame,
)
from repro.engine.pool import RetryPolicy, run_sharded
from repro.engine.shards import child_seed, plan_shards
from repro.faults import FaultPlan, ShardFailureReport
from repro.logmodel.record import LogRecord
from repro.metrics import MetricsRegistry, current_registry
from repro.pipeline import (
    AnonymizeStage,
    DayTrafficSource,
    FleetStage,
    FrameSink,
    GroupedElffSink,
    Pipeline,
    RecordListSink,
    Sink,
)
from repro.regimes import ApplianceFleet, RegimeProfile, get_regime
from repro.runstate import RunCheckpoint
from repro.timeline import USER_SLICE_DAYS, day_span
from repro.workload import TrafficGenerator
from repro.workload.config import ScenarioConfig


@dataclass
class SimContext:
    """The deterministic per-process scenario ground truth."""

    profile: RegimeProfile
    generator: TrafficGenerator
    policy: Any
    fleet: ApplianceFleet
    user_spans: list[tuple[int, int]]


#: One cached context per process; keyed by config equality (the
#: ``regime`` field included) so a pool reused across configs rebuilds
#: instead of leaking the old universe.
_CONTEXT: tuple[ScenarioConfig, SimContext] | None = None


def scenario_context(config: ScenarioConfig) -> SimContext:
    """Build (or reuse) the scenario context for *config*.

    The config's regime profile supplies all three layers: the
    workload, the policy over its ground truth, and the appliance
    fleet that filters it.
    """
    global _CONTEXT
    if _CONTEXT is not None and _CONTEXT[0] == config:
        return _CONTEXT[1]
    profile = get_regime(config.regime)
    generator = profile.build_workload(config)
    policy = profile.build_policy(generator)
    context = SimContext(
        profile=profile,
        generator=generator,
        policy=policy,
        fleet=profile.build_fleet(policy),
        user_spans=[day_span(day) for day in USER_SLICE_DAYS],
    )
    _CONTEXT = (config, context)
    return context


def day_pipeline(
    config: ScenarioConfig, day: str, seed: np.random.SeedSequence
) -> Pipeline:
    """The fused pipeline for one log-day shard.

    The shard seed spawns two independent streams — request generation
    and fleet processing (routing, errors, cache) — via stateless child
    derivation, so re-running a shard always replays the same day.
    """
    context = scenario_context(config)
    return Pipeline(
        DayTrafficSource(
            context.generator, day, np.random.default_rng(child_seed(seed, 0))
        ),
        (
            FleetStage(
                context.fleet, np.random.default_rng(child_seed(seed, 1))
            ),
            AnonymizeStage(context.user_spans),
        ),
    )


def simulate_sink_shard(
    payload: tuple[ScenarioConfig, str, np.random.SeedSequence, Sink],
    batch_size: int | None = None,
) -> Sink:
    """Run one log-day pipeline into a fresh copy of the payload sink.

    With a *batch_size* the pass runs in column-batch mode: the fleet
    stage still draws its rng record-at-a-time (so the random stream is
    untouched), the anonymize stage and the sink fold columns.  The
    shipped sink state — and therefore every output byte — is identical
    either way.
    """
    config, day, seed, prototype = payload
    pipeline = day_pipeline(config, day, seed)
    sink = prototype.fresh()
    if batch_size is None:
        pipeline.run(sink)
    else:
        pipeline.run_batched(sink, batch_size)
    registry = current_registry()
    if registry is not None:
        registry.inc("shard.records", len(sink))
    return sink


def simulate_shard(
    payload: tuple[ScenarioConfig, str, np.random.SeedSequence],
) -> list[LogRecord]:
    """Generate, filter, and anonymize one log-day as a record list."""
    config, day, seed = payload
    return simulate_sink_shard((config, day, seed, RecordListSink())).records


def simulate_into(
    config: ScenarioConfig,
    sink: Sink,
    *,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
    batch_size: int | None = None,
) -> tuple[Sink, dict[str, int]]:
    """Run every day shard into fresh copies of *sink* and reduce.

    Each shard folds its day's stream into ``sink.fresh()``; the parent
    merges the per-shard sinks into *sink* in ``config.days`` order
    regardless of worker count or completion order (the sinks' merge
    laws make that equal to one serial pass).  Returns the merged sink
    and the per-day record counts.  A *metrics* registry collects
    per-shard throughput and the hot-path counters without touching the
    random streams — output is byte-identical with and without it.

    *retry* and *fault_plan* pass through to :func:`run_sharded`.  With
    ``allow_partial=True`` a day shard that fails every attempt is
    quarantined (reported via *failures*/*metrics*) instead of aborting
    the run, and the merged sink equals a fault-free run restricted to
    the surviving days — quarantined days simply never merge.

    *batch_size* switches shards to column-batch execution (an
    execution strategy only — not part of the checkpoint identity, and
    never a source of output differences).
    """
    plan = plan_shards(config)
    task = (
        simulate_sink_shard
        if batch_size is None
        else partial(simulate_sink_shard, batch_size=batch_size)
    )
    parts = run_sharded(
        task,
        [(config, shard.day, shard.seed, sink) for shard in plan.shards],
        workers=workers,
        labels=[shard.shard_id for shard in plan.shards],
        metrics=metrics,
        retry=retry,
        strict=not allow_partial,
        failures=failures,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    records_by_day: dict[str, int] = {}
    for shard, part in zip(plan.shards, parts):
        if part is None:  # quarantined day
            continue
        records_by_day[shard.day] = len(part)
        sink.merge(part)
    return sink, records_by_day


def simulate_day_records(
    config: ScenarioConfig,
    *,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
) -> dict[str, list[LogRecord]]:
    """Simulate every configured log-day, in day order.

    The returned mapping iterates in ``config.days`` order regardless
    of worker count or completion order.  In partial mode, quarantined
    days are absent from the mapping.
    """
    plan = plan_shards(config)
    results = run_sharded(
        simulate_shard,
        [(config, shard.day, shard.seed) for shard in plan.shards],
        workers=workers,
        labels=[shard.shard_id for shard in plan.shards],
        metrics=metrics,
        retry=retry,
        strict=not allow_partial,
        failures=failures,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    return {
        shard.day: records
        for shard, records in zip(plan.shards, results)
        if records is not None
    }


def simulate_to_logs(
    config: ScenarioConfig,
    out_dir: Path | str,
    *,
    per_proxy: bool = False,
    per_day: bool = False,
    compress: bool = False,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
    batch_size: int | None = None,
) -> list[tuple[Path, int]]:
    """Simulate and write ELFF logs in one fused pass per shard.

    Every record is serialized the moment the fleet emits it — no
    intermediate record list — and the per-shard buffers merge in day
    order, so output bytes are identical to the legacy
    simulate-then-:func:`write_logs` two-step at every worker count.
    ``compress=True`` writes deterministic ``.log.gz`` files.
    """
    sink = GroupedElffSink(
        per_proxy=per_proxy, per_day=per_day, compress=compress
    )
    merged, _ = simulate_into(
        config, sink, workers=workers, metrics=metrics, retry=retry,
        allow_partial=allow_partial, failures=failures,
        fault_plan=fault_plan, checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return merged.write_dir(Path(out_dir))


def build_scenario_sharded(
    config: ScenarioConfig | None = None,
    *,
    workers: int = 1,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
    batch_size: int | None = None,
) -> ScenarioDatasets:
    """Sharded counterpart of :func:`repro.datasets.build_scenario`.

    Fused: each day shard folds straight into columnar frame buffers
    (:class:`~repro.pipeline.FrameSink`), so the full record list is
    never materialized — memory is the frame plus one in-flight shard.
    Deterministic for a given config at every worker count (the D_sample
    draw uses the plan's dedicated sampling seed).  The random streams
    are sharded per day, so the numbers differ from the serial
    builder's single-stream run of the same seed — by design: the
    engine's invariant is worker-count independence, not equality with
    the legacy stream layout.
    """
    config = config or ScenarioConfig()
    plan = plan_shards(config)
    sink, records_by_day = simulate_into(
        config, FrameSink(), workers=workers, metrics=metrics,
        retry=retry, allow_partial=allow_partial, failures=failures,
        fault_plan=fault_plan, checkpoint=checkpoint,
        batch_size=batch_size,
    )
    context = scenario_context(config)
    rng = np.random.default_rng(plan.sampling_seed)
    assemble_timer = (
        metrics.timer("engine.assemble_seconds")
        if metrics is not None
        else nullcontext()
    )
    with assemble_timer:
        return assemble_datasets_from_frame(
            sink.frame(), records_by_day, config, context.generator,
            context.policy, rng, sample_fraction,
        )


def write_logs(
    day_records: dict[str, list[LogRecord]],
    out_dir: Path,
    *,
    per_proxy: bool = False,
    per_day: bool = False,
    compress: bool = False,
) -> list[tuple[Path, int]]:
    """Write simulated days as ELFF files; returns ``(path, count)``s.

    List-taking wrapper over :class:`~repro.pipeline.GroupedElffSink`
    (the fused path is :func:`simulate_to_logs`).  Grouping mirrors the
    leak's file structure: combined ``proxies.log`` by default,
    ``sg-NN[_day].log`` with the flags.  Records are written in day
    order within each file, so output bytes depend only on the day
    shards, never on worker scheduling.
    """
    sink = GroupedElffSink(
        per_proxy=per_proxy, per_day=per_day, compress=compress
    )
    for records in day_records.values():
        sink.consume(records)
    return sink.write_dir(Path(out_dir))
