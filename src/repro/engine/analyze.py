"""Sharded log analysis — the reduce side of the engine.

One log file is one shard, run as one fused pipeline pass:
``ElffSource → <sink>``.  Workers stream-read with the lenient ELFF
reader (gzip-transparent for ``.log.gz`` inputs) and fold into
:class:`~repro.analysis.streaming.StreamingAnalysis` accumulators; the
parent merges the per-file accumulators in input order.  Because
``merge`` is associative and agrees with single-pass consumption (the
merge-law property tests), the reduced result is identical to a serial
read of the same files at every worker count.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path

from repro.analysis.streaming import StreamingAnalysis
from repro.engine.pool import RetryPolicy, run_sharded
from repro.faults import FaultPlan, ShardFailureReport
from repro.frame import LogFrame, concat, empty_frame
from repro.logmodel.elff import ReadStats
from repro.metrics import MetricsRegistry, current_registry
from repro.runstate import RunCheckpoint
from repro.pipeline import (
    ElffSource,
    FrameSink,
    Pipeline,
    StreamingAnalysisSink,
)


def analyze_shard(
    path: str, batch_size: int | None = None
) -> tuple[StreamingAnalysis, ReadStats]:
    """Stream one log file into a fresh accumulator.

    With a *batch_size* the pass runs in column-batch mode
    (vectorized parse and counter folds); the accumulator state is
    identical either way.
    """
    stats = ReadStats()
    pipeline = Pipeline(ElffSource(path, lenient=True, stats=stats))
    sink = StreamingAnalysisSink()
    if batch_size is None:
        pipeline.run(sink)
    else:
        pipeline.run_batched(sink, batch_size)
    registry = current_registry()
    if registry is not None:
        registry.inc("shard.records", stats.records)
    return sink.analysis, stats


def analyze_logs(
    paths: list[Path | str],
    *,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
    batch_size: int | None = None,
) -> tuple[StreamingAnalysis, ReadStats]:
    """Map-reduce the streaming analysis over many log files.

    Returns the merged accumulator plus the merged lenient-read
    bookkeeping (kept/skipped line counts).  An empty *paths* list
    yields empty accumulators.  A *metrics* registry collects per-file
    throughput plus the reader/consumer hot-path counters.

    With ``allow_partial=True`` a file shard that fails every retry is
    quarantined (reported via *failures*/*metrics*) and the merged
    accumulator equals a fault-free run over the surviving files.

    *batch_size* switches workers to column-batch execution.  It is
    an execution strategy, not part of the run's identity: results are
    identical at every batch size, and a checkpointed run may resume
    under a different one (the ledger fingerprint ignores it).
    """
    task = (
        analyze_shard
        if batch_size is None
        else partial(analyze_shard, batch_size=batch_size)
    )
    parts = run_sharded(
        task,
        [str(path) for path in paths],
        workers=workers,
        labels=[f"log:{Path(path).name}" for path in paths],
        metrics=metrics,
        retry=retry,
        strict=not allow_partial,
        failures=failures,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    analysis = StreamingAnalysis()
    stats = ReadStats()
    for part in parts:
        if part is None:  # quarantined file
            continue
        part_analysis, part_stats = part
        analysis += part_analysis
        stats += part_stats
    return analysis, stats


def load_frame_shard(path: str, batch_size: int | None = None) -> LogFrame:
    """Load one log file into a columnar frame (strict read)."""
    pipeline = Pipeline(ElffSource(path))
    sink = FrameSink()
    if batch_size is None:
        pipeline.run(sink)
    else:
        pipeline.run_batched(sink, batch_size)
    frame = sink.frame()
    registry = current_registry()
    if registry is not None:
        registry.inc("shard.records", len(frame))
    return frame


def load_frames(
    paths: list[Path | str],
    *,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    allow_partial: bool = False,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
    batch_size: int | None = None,
) -> LogFrame:
    """Parallel counterpart of the CLI's frame loader.

    An empty *paths* list yields the zero-row frame with the standard
    columns (it used to raise ``IndexError``); in partial mode the
    frame is the concatenation of the surviving files only.
    *batch_size* switches workers to column-batch execution (same
    frame, faster parse).
    """
    task = (
        load_frame_shard
        if batch_size is None
        else partial(load_frame_shard, batch_size=batch_size)
    )
    frames = run_sharded(
        task,
        [str(path) for path in paths],
        workers=workers,
        labels=[f"log:{Path(path).name}" for path in paths],
        metrics=metrics,
        retry=retry,
        strict=not allow_partial,
        failures=failures,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    frames = [frame for frame in frames if frame is not None]
    if not frames:
        return empty_frame()
    return concat(frames) if len(frames) > 1 else frames[0]
