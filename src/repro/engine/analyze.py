"""Sharded log analysis — the reduce side of the engine.

One log file is one shard.  Workers stream-read with the lenient ELFF
reader and fold into :class:`~repro.analysis.streaming.
StreamingAnalysis` accumulators; the parent merges the per-file
accumulators in input order.  Because ``merge`` is associative and
agrees with single-pass consumption (the merge-law property tests),
the reduced result is identical to a serial read of the same files at
every worker count.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.streaming import StreamingAnalysis
from repro.engine.pool import run_sharded
from repro.frame import LogFrame, concat, frame_from_records
from repro.logmodel.elff import ReadStats, read_log


def analyze_shard(path: str) -> tuple[StreamingAnalysis, ReadStats]:
    """Stream one log file into a fresh accumulator."""
    stats = ReadStats()
    analysis = StreamingAnalysis().consume(
        read_log(Path(path), lenient=True, stats=stats)
    )
    return analysis, stats


def analyze_logs(
    paths: list[Path | str], *, workers: int = 1
) -> tuple[StreamingAnalysis, ReadStats]:
    """Map-reduce the streaming analysis over many log files.

    Returns the merged accumulator plus the merged lenient-read
    bookkeeping (kept/skipped line counts).
    """
    parts = run_sharded(
        analyze_shard,
        [str(path) for path in paths],
        workers=workers,
        labels=[f"log:{Path(path).name}" for path in paths],
    )
    analysis = StreamingAnalysis()
    stats = ReadStats()
    for part_analysis, part_stats in parts:
        analysis += part_analysis
        stats += part_stats
    return analysis, stats


def load_frame_shard(path: str) -> LogFrame:
    """Load one log file into a columnar frame (strict read)."""
    return frame_from_records(read_log(Path(path)))


def load_frames(paths: list[Path | str], *, workers: int = 1) -> LogFrame:
    """Parallel counterpart of the CLI's frame loader."""
    frames = run_sharded(
        load_frame_shard,
        [str(path) for path in paths],
        workers=workers,
        labels=[f"log:{Path(path).name}" for path in paths],
    )
    return concat(frames) if len(frames) > 1 else frames[0]
