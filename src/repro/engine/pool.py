"""Process-pool execution with shard-aware error handling and retry.

The engine's unit of parallelism is a *shard*: a self-contained piece
of work (one log-day to simulate, one log file to analyze) whose result
can be merged with its siblings afterwards.  :func:`run_sharded` is the
single dispatch point:

* ``workers=1`` is a pure serial loop — no pool, no pickling, no
  multiprocessing dependency at all;
* with more workers, shards fan out over a ``ProcessPoolExecutor``;
* a pool that cannot start or that breaks mid-run (a worker killed by
  the OS, a sandbox that forbids semaphores) degrades gracefully to the
  serial loop with an :class:`EngineFallbackWarning`, so parallelism is
  an optimization, never a new failure mode;
* a shard that raises is **retried** with capped exponential backoff
  (:class:`RetryPolicy`) — because every shard replays a deterministic
  stream, a retried shard produces the exact bytes the first attempt
  would have, so transient failures are invisible in the output;
* a shard that still fails after its retry budget either aborts the
  run wrapped in :class:`ShardError` (``strict=True``, the default) or
  is **quarantined** into a
  :class:`~repro.faults.ShardFailure` record while the survivors
  complete (``strict=False``, partial-results mode);
* with a :class:`~repro.runstate.RunCheckpoint` (``checkpoint=``),
  every completed shard is persisted to a durable run ledger and a
  resumed run loads verified completed shards into the merge instead
  of re-executing them — retries cover transient faults, quarantine
  covers poisoned shards, and the checkpoint covers process death.

Every shard attempt executes under the active
:class:`~repro.faults.FaultPlan` (explicit ``fault_plan=`` argument or
the ``REPRO_FAULT_PLAN`` environment knob), which is how the chaos
suite injects crashes, transient exceptions, corrupt reads, and slow
shards through the same code paths production runs use.

Results are always returned in shard order, which is what makes the
parallel paths bit-reproducible: callers merge in a fixed order no
matter which worker finished first.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.faults import (
    FaultPlan,
    ShardFailure,
    ShardFailureReport,
    fault_point,
    plan_from_env,
    use_fault_plan,
)
from repro.metrics import MetricsRegistry, ShardMetrics, use_registry
from repro.runstate import RunCheckpoint, ShardArtifact

P = TypeVar("P")
R = TypeVar("R")

#: What a quarantined shard leaves in the results list (partial mode).
QUARANTINED = None


class EngineFallbackWarning(RuntimeWarning):
    """The pool was unavailable and the engine degraded to serial."""


class ShardError(RuntimeError):
    """A worker failed while processing one shard.

    Carries the shard's label in :attr:`shard_id` and the underlying
    exception in :attr:`error`.  The exception that triggered this
    raise is chained as ``__cause__`` — usually the same object as
    :attr:`error`, except on the pool-fallback path, where ``error``
    is the *original* pool-run exception and ``__cause__`` the serial
    re-run's failure.
    """

    def __init__(self, shard_id: str, error: BaseException):
        super().__init__(f"shard {shard_id!r} failed: {error!r}")
        self.shard_id = shard_id
        self.error = error


class ShardTimeout(RuntimeError):
    """A shard exceeded the per-shard timeout (pool execution only)."""

    #: Site label used in quarantine reports.
    site = "timeout"

    def __init__(self, shard_id: str, seconds: float):
        super().__init__(
            f"shard {shard_id!r} timed out after {seconds:g}s"
        )
        self.shard_id = shard_id
        self.seconds = seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry budget, backoff shape, and timeout.

    ``max_retries`` counts *re*-executions: a shard runs at most
    ``max_retries + 1`` times.  Backoff is capped exponential —
    ``min(backoff_cap, backoff_base * 2**attempt)`` — with no jitter,
    because the engine's reproducibility contract extends to its
    failure handling.  ``timeout`` bounds one attempt's wall time on
    the pool path (a timed-out attempt counts as a failure and is
    retried); the serial path cannot interrupt a running shard, so
    timeouts only apply when ``workers > 1``.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    timeout: float | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """How long to wait before re-running attempt ``attempt + 1``."""
        if self.backoff_base <= 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy, honouring ``REPRO_MAX_SHARD_RETRIES``
        and ``REPRO_SHARD_TIMEOUT``.

        A malformed value raises a :class:`ValueError` naming the
        variable and the offending text, never a bare parse traceback.
        """
        retries = _env_number(
            "REPRO_MAX_SHARD_RETRIES", int, "a non-negative integer"
        )
        timeout = _env_number(
            "REPRO_SHARD_TIMEOUT", float, "a positive number of seconds"
        )
        if retries is not None and retries < 0:
            raise ValueError(
                "REPRO_MAX_SHARD_RETRIES must be a non-negative integer, "
                f"got {os.environ['REPRO_MAX_SHARD_RETRIES']!r}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError(
                "REPRO_SHARD_TIMEOUT must be a positive number of "
                f"seconds, got {os.environ['REPRO_SHARD_TIMEOUT']!r}"
            )
        return cls(
            max_retries=2 if retries is None else retries,
            timeout=timeout,
        )


def _env_number(name: str, parse, expected: str):
    """Parse an optional numeric environment knob with an actionable
    error: the message names the variable and quotes the bad text."""
    text = os.environ.get(name)
    if not text:
        return None
    try:
        return parse(text)
    except ValueError:
        raise ValueError(
            f"{name} must be {expected}, got {text!r}"
        ) from None


def _make_executor(workers: int):
    """Pool factory, isolated so tests (and broken environments) can
    observe creation failures."""
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=workers)


def _warn_fallback(reason: str) -> None:
    warnings.warn(
        f"engine: {reason}; falling back to serial execution",
        EngineFallbackWarning,
        stacklevel=3,
    )


def _run_attempt(
    task: Callable[[P], R],
    payload: P,
    label: str,
    attempt: int,
    plan: FaultPlan | None,
) -> R:
    """Execute one attempt of one shard under the fault-plan context.

    Module-level and picklable — this is the callable the pool actually
    submits, so injected faults fire inside the worker exactly where
    real failures would.
    """
    if plan is None:
        return task(payload)
    with use_fault_plan(plan, shard_id=label, attempt=attempt):
        fault_point("shard.start")
        return task(payload)


@dataclass
class _ShardRun:
    """What an instrumented shard sends back to the parent."""

    result: Any
    registry: MetricsRegistry
    wall_seconds: float
    worker_pid: int


class _Instrumented:
    """Picklable task wrapper: runs the shard under a fresh registry
    and returns the result together with the shard's metrics."""

    __slots__ = ("task",)

    def __init__(self, task: Callable[[P], R]):
        self.task = task

    def __call__(self, payload: P) -> _ShardRun:
        registry = MetricsRegistry()
        start = time.perf_counter()
        with use_registry(registry):
            result = self.task(payload)
        return _ShardRun(
            result=result,
            registry=registry,
            wall_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )


def _shard_records(run: _ShardRun) -> int:
    """How many records the shard produced.

    Instrumented shard functions declare it via the ``shard.records``
    counter; for uninstrumented tasks a sized result is its own count.
    """
    count = run.registry.counters.get("shard.records")
    if count is not None:
        return count
    try:
        return len(run.result)  # type: ignore[arg-type]
    except TypeError:
        return 0


def _collect_metrics(
    metrics: MetricsRegistry, runs: Sequence[Any], labels: Sequence[str]
) -> list:
    """Unwrap instrumented results, folding shard metrics into
    *metrics* in shard order.

    Called only after dispatch fully succeeded, so shards that ran in a
    pool that later broke are never folded in — the serial re-run's
    metrics are the only ones counted (no double counting across the
    fallback).  Quarantined shards contribute no metrics and stay
    ``QUARANTINED`` in the result list.

    A :class:`~repro.runstate.ShardArtifact` slot is a shard resumed
    from a checkpoint ledger: its stored worker registry (when the
    original run was instrumented) merges in so aggregate counters
    match an uninterrupted run, its ledger-recorded throughput becomes
    the :class:`ShardMetrics` row (``worker_pid`` 0 — no process ran
    it this time), and it counts into ``engine.shards.resumed``.
    """
    results = []
    for label, run in zip(labels, runs):
        if run is QUARANTINED:
            results.append(QUARANTINED)
            continue
        if isinstance(run, ShardArtifact):
            metrics.inc("engine.shards.resumed")
            if isinstance(run.registry, MetricsRegistry):
                metrics.merge(run.registry)
            metrics.add_shard(ShardMetrics(
                shard_id=label,
                records=run.records,
                wall_seconds=run.wall_seconds,
                worker_pid=0,
            ))
            results.append(run.result)
            continue
        metrics.merge(run.registry)
        metrics.add_shard(ShardMetrics(
            shard_id=label,
            records=_shard_records(run),
            wall_seconds=run.wall_seconds,
            worker_pid=run.worker_pid,
        ))
        results.append(run.result)
    return results


def _note_retry(metrics: MetricsRegistry | None) -> None:
    if metrics is not None:
        metrics.inc("engine.shard_retries")


def _settle_failure(
    label: str,
    error: BaseException,
    attempts: int,
    strict: bool,
    failures: ShardFailureReport | None,
    metrics: MetricsRegistry | None,
) -> None:
    """A shard exhausted its retry budget: abort or quarantine."""
    if strict:
        raise ShardError(label, error) from error
    failure = ShardFailure(
        shard_id=label,
        site=getattr(error, "site", "task"),
        attempts=attempts,
        error=repr(error),
    )
    if failures is not None:
        failures.add(failure)
    if metrics is not None:
        metrics.add_failure(failure)
        metrics.inc("engine.shards.quarantined")


def run_sharded(
    task: Callable[[P], R],
    payloads: Iterable[P],
    *,
    workers: int = 1,
    labels: Sequence[str] | None = None,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = True,
    failures: ShardFailureReport | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: RunCheckpoint | None = None,
) -> list[R]:
    """Run *task* over every payload, returning results in input order.

    *task* must be a module-level callable and the payloads picklable
    when ``workers > 1`` (the serial path has no such constraint).
    *labels* name the shards in error messages; they default to
    ``shard-<index>``.

    *retry* governs per-shard re-execution (default:
    :meth:`RetryPolicy.from_env`).  With ``strict=True`` a shard that
    fails every attempt aborts the run in :class:`ShardError`; with
    ``strict=False`` it is quarantined — its slot in the returned list
    is :data:`QUARANTINED` (``None``), a
    :class:`~repro.faults.ShardFailure` is appended to *failures* (when
    given) and recorded into *metrics*, and the surviving shards
    complete normally.

    *fault_plan* injects deterministic faults into every attempt (the
    chaos suite's entry point); when ``None``, the
    ``REPRO_FAULT_PLAN`` environment knob is consulted, and when that
    is unset too, the fault sites are inert.

    With a *metrics* registry, every shard executes under a fresh
    worker-local registry (activated via
    :func:`repro.metrics.use_registry`, so the hot-path hooks record
    into it); the per-shard registries are merged into *metrics* in
    shard order after the whole dispatch succeeds, along with one
    :class:`~repro.metrics.ShardMetrics` per shard.  Merging last means
    a pool that breaks mid-run and falls back to serial counts each
    shard exactly once, and a failed attempt's partial metrics are
    never counted at all.

    A *checkpoint* (:class:`~repro.runstate.RunCheckpoint`) makes the
    dispatch crash-safe across process death: on start the ledger's
    fingerprint and shard plan are verified (mismatch refuses the
    run), every journaled shard whose artifact still hashes clean is
    loaded into its result slot instead of being dispatched (counted
    as ``engine.shards.resumed`` when *metrics* is given), and every
    freshly completed shard is durably recorded — atomic artifact
    write, then an fsync'd journal line — the moment it settles.
    Quarantined shards are never recorded; they re-run on resume.
    """
    payloads = list(payloads)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if labels is None:
        labels = [f"shard-{index}" for index in range(len(payloads))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(payloads):
            raise ValueError(
                f"{len(labels)} labels for {len(payloads)} payloads"
            )
    if retry is None:
        retry = RetryPolicy.from_env()
    if fault_plan is None:
        fault_plan = plan_from_env()

    resumed: dict[str, ShardArtifact] = {}
    record = None
    if checkpoint is not None:
        resumed = checkpoint.begin(labels)

        def record(label: str, outcome) -> None:
            if isinstance(outcome, _ShardRun):
                checkpoint.record(
                    label, outcome.result,
                    records=_shard_records(outcome),
                    wall_seconds=outcome.wall_seconds,
                    registry=outcome.registry,
                )
                return
            try:
                records = len(outcome)  # type: ignore[arg-type]
            except TypeError:
                records = 0
            checkpoint.record(label, outcome, records=records)

    pending = [
        index for index, label in enumerate(labels)
        if label not in resumed
    ]
    pending_payloads = [payloads[index] for index in pending]
    pending_labels = [labels[index] for index in pending]
    try:
        if metrics is not None:
            runs = _dispatch(
                _Instrumented(task), pending_payloads, pending_labels,
                workers, retry, fault_plan, strict, failures, metrics,
                record,
            )
            return _collect_metrics(
                metrics, _weave(labels, resumed, runs), labels
            )
        results = _dispatch(
            task, pending_payloads, pending_labels, workers, retry,
            fault_plan, strict, failures, None, record,
        )
        return [
            part.result if isinstance(part, ShardArtifact) else part
            for part in _weave(labels, resumed, results)
        ]
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _weave(
    labels: Sequence[str],
    resumed: dict[str, ShardArtifact],
    dispatched: Sequence[Any],
) -> list:
    """Interleave resumed artifacts with dispatched results back into
    full shard order."""
    if not resumed:
        return list(dispatched)
    parts = iter(dispatched)
    return [
        resumed[label] if label in resumed else next(parts)
        for label in labels
    ]


class _PoolBroke(Exception):
    """Internal signal: the pool died; fall back to serial.

    Carries the pool-level error plus every *original* shard exception
    observed before the break, so the serial re-run can re-raise the
    original failure (with its shard id) instead of only the pool
    error when the re-run fails too.
    """

    def __init__(
        self, error: BaseException, originals: dict[int, BaseException]
    ):
        super().__init__(repr(error))
        self.error = error
        self.originals = originals


def _dispatch(
    task: Callable[[P], R],
    payloads: Sequence[P],
    labels: Sequence[str],
    workers: int,
    retry: RetryPolicy,
    plan: FaultPlan | None,
    strict: bool,
    failures: ShardFailureReport | None,
    metrics: MetricsRegistry | None,
    record: Callable[[str, Any], None] | None = None,
) -> list[R]:
    """The execution core: serial loop, pool fan-out, or fallback."""
    effective = min(workers, len(payloads))
    if effective <= 1:
        return _run_serial(
            task, payloads, labels, retry, plan, strict, failures,
            metrics, record=record,
        )

    try:
        executor = _make_executor(effective)
    except Exception as error:  # no pool available in this environment
        _warn_fallback(f"could not start a {effective}-worker pool ({error!r})")
        return _run_serial(
            task, payloads, labels, retry, plan, strict, failures,
            metrics, record=record,
        )

    try:
        try:
            return _run_pool(
                executor, task, payloads, labels, retry, plan, strict,
                failures, metrics, record,
            )
        except _PoolBroke as broke:
            _warn_fallback(f"worker pool broke ({broke.error!r})")
            return _run_serial(
                task, payloads, labels, retry, plan, strict, failures,
                metrics, originals=broke.originals, record=record,
            )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    executor,
    task: Callable[[P], R],
    payloads: Sequence[P],
    labels: Sequence[str],
    retry: RetryPolicy,
    plan: FaultPlan | None,
    strict: bool,
    failures: ShardFailureReport | None,
    metrics: MetricsRegistry | None,
    record: Callable[[str, Any], None] | None = None,
) -> list[R]:
    """Pool fan-out with per-shard retries and timeouts.

    All shards are submitted up front (attempt 0); results are
    consumed in shard order, and a failed shard is re-submitted while
    the later shards keep running.  Any ``BrokenProcessPool`` converts
    to :class:`_PoolBroke` so the caller can degrade to serial.
    *record* (the checkpoint hook) fires as each shard's result is
    consumed, so a crash loses only the not-yet-consumed shards.
    """
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    count = len(payloads)
    attempts = [0] * count
    originals: dict[int, BaseException] = {}

    def submit(index: int):
        try:
            return executor.submit(
                _run_attempt, task, payloads[index], labels[index],
                attempts[index], plan,
            )
        except BrokenProcessPool as pool_error:
            raise _PoolBroke(pool_error, dict(originals)) from pool_error

    futures = [submit(index) for index in range(count)]
    results: list[Any] = [QUARANTINED] * count
    for index in range(count):
        while True:
            try:
                results[index] = futures[index].result(timeout=retry.timeout)
                if record is not None:
                    record(labels[index], results[index])
                break
            except BrokenProcessPool as pool_error:
                raise _PoolBroke(pool_error, dict(originals)) from pool_error
            except FutureTimeout:
                futures[index].cancel()
                error: BaseException = ShardTimeout(
                    labels[index], retry.timeout or 0.0
                )
            except Exception as caught:
                error = caught
            originals.setdefault(index, error)
            if attempts[index] < retry.max_retries:
                _note_retry(metrics)
                time.sleep(retry.backoff_seconds(attempts[index]))
                attempts[index] += 1
                futures[index] = submit(index)
                continue
            _settle_failure(
                labels[index], error, attempts[index] + 1, strict,
                failures, metrics,
            )
            break
    return results


def _run_serial(
    task: Callable[[P], R],
    payloads: Sequence[P],
    labels: Sequence[str],
    retry: RetryPolicy,
    plan: FaultPlan | None,
    strict: bool,
    failures: ShardFailureReport | None,
    metrics: MetricsRegistry | None,
    originals: dict[int, BaseException] | None = None,
    record: Callable[[str, Any], None] | None = None,
) -> list[R]:
    """Serial loop with the same retry/quarantine semantics.

    *originals* carries shard exceptions observed before a pool break:
    if the serial re-run of such a shard also fails, the raised
    :class:`ShardError` surfaces the *original* exception (with the
    shard id) rather than only the re-run's error — the pool failure
    stays in the ``__cause__`` chain for forensics.
    """
    results: list[Any] = []
    for index, (label, payload) in enumerate(zip(labels, payloads)):
        attempt = 0
        while True:
            try:
                outcome = _run_attempt(task, payload, label, attempt, plan)
                if record is not None:
                    record(label, outcome)
                results.append(outcome)
                break
            except Exception as error:
                if attempt < retry.max_retries:
                    _note_retry(metrics)
                    time.sleep(retry.backoff_seconds(attempt))
                    attempt += 1
                    continue
                original = (originals or {}).get(index)
                if strict and original is not None:
                    raise ShardError(label, original) from error
                _settle_failure(
                    label, error, attempt + 1, strict, failures, metrics
                )
                results.append(QUARANTINED)
                break
    return results
