"""Process-pool execution with shard-aware error handling.

The engine's unit of parallelism is a *shard*: a self-contained piece
of work (one log-day to simulate, one log file to analyze) whose result
can be merged with its siblings afterwards.  :func:`run_sharded` is the
single dispatch point:

* ``workers=1`` is a pure serial loop — no pool, no pickling, no
  multiprocessing dependency at all;
* with more workers, shards fan out over a ``ProcessPoolExecutor``;
* a pool that cannot start or that breaks mid-run (a worker killed by
  the OS, a sandbox that forbids semaphores) degrades gracefully to the
  serial loop with an :class:`EngineFallbackWarning`, so parallelism is
  an optimization, never a new failure mode;
* an ordinary exception raised *inside* a worker is re-raised in the
  parent wrapped in :class:`ShardError`, which names the failing shard.

Results are always returned in shard order, which is what makes the
parallel paths bit-reproducible: callers merge in a fixed order no
matter which worker finished first.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.metrics import MetricsRegistry, ShardMetrics, use_registry

P = TypeVar("P")
R = TypeVar("R")


class EngineFallbackWarning(RuntimeWarning):
    """The pool was unavailable and the engine degraded to serial."""


class ShardError(RuntimeError):
    """A worker failed while processing one shard.

    Carries the shard's label in :attr:`shard_id`; the original
    exception is chained as ``__cause__``.
    """

    def __init__(self, shard_id: str, error: BaseException):
        super().__init__(f"shard {shard_id!r} failed: {error!r}")
        self.shard_id = shard_id


def _make_executor(workers: int):
    """Pool factory, isolated so tests (and broken environments) can
    observe creation failures."""
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=workers)


def _warn_fallback(reason: str) -> None:
    warnings.warn(
        f"engine: {reason}; falling back to serial execution",
        EngineFallbackWarning,
        stacklevel=3,
    )


@dataclass
class _ShardRun:
    """What an instrumented shard sends back to the parent."""

    result: Any
    registry: MetricsRegistry
    wall_seconds: float
    worker_pid: int


class _Instrumented:
    """Picklable task wrapper: runs the shard under a fresh registry
    and returns the result together with the shard's metrics."""

    __slots__ = ("task",)

    def __init__(self, task: Callable[[P], R]):
        self.task = task

    def __call__(self, payload: P) -> _ShardRun:
        registry = MetricsRegistry()
        start = time.perf_counter()
        with use_registry(registry):
            result = self.task(payload)
        return _ShardRun(
            result=result,
            registry=registry,
            wall_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )


def _shard_records(run: _ShardRun) -> int:
    """How many records the shard produced.

    Instrumented shard functions declare it via the ``shard.records``
    counter; for uninstrumented tasks a sized result is its own count.
    """
    count = run.registry.counters.get("shard.records")
    if count is not None:
        return count
    try:
        return len(run.result)  # type: ignore[arg-type]
    except TypeError:
        return 0


def _collect_metrics(
    metrics: MetricsRegistry, runs: Sequence[_ShardRun], labels: Sequence[str]
) -> list:
    """Unwrap instrumented results, folding shard metrics into
    *metrics* in shard order.

    Called only after dispatch fully succeeded, so shards that ran in a
    pool that later broke are never folded in — the serial re-run's
    metrics are the only ones counted (no double counting across the
    fallback).
    """
    results = []
    for label, run in zip(labels, runs):
        metrics.merge(run.registry)
        metrics.add_shard(ShardMetrics(
            shard_id=label,
            records=_shard_records(run),
            wall_seconds=run.wall_seconds,
            worker_pid=run.worker_pid,
        ))
        results.append(run.result)
    return results


def _run_serial(
    task: Callable[[P], R], payloads: Sequence[P], labels: Sequence[str]
) -> list[R]:
    results = []
    for label, payload in zip(labels, payloads):
        try:
            results.append(task(payload))
        except Exception as error:
            raise ShardError(label, error) from error
    return results


def run_sharded(
    task: Callable[[P], R],
    payloads: Iterable[P],
    *,
    workers: int = 1,
    labels: Sequence[str] | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[R]:
    """Run *task* over every payload, returning results in input order.

    *task* must be a module-level callable and the payloads picklable
    when ``workers > 1`` (the serial path has no such constraint).
    *labels* name the shards in error messages; they default to
    ``shard-<index>``.

    With a *metrics* registry, every shard executes under a fresh
    worker-local registry (activated via
    :func:`repro.metrics.use_registry`, so the hot-path hooks record
    into it); the per-shard registries are merged into *metrics* in
    shard order after the whole dispatch succeeds, along with one
    :class:`~repro.metrics.ShardMetrics` per shard.  Merging last means
    a pool that breaks mid-run and falls back to serial counts each
    shard exactly once.
    """
    payloads = list(payloads)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if labels is None:
        labels = [f"shard-{index}" for index in range(len(payloads))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(payloads):
            raise ValueError(
                f"{len(labels)} labels for {len(payloads)} payloads"
            )
    if metrics is not None:
        runs = _dispatch(_Instrumented(task), payloads, labels, workers)
        return _collect_metrics(metrics, runs, labels)
    return _dispatch(task, payloads, labels, workers)


def _dispatch(
    task: Callable[[P], R],
    payloads: Sequence[P],
    labels: Sequence[str],
    workers: int,
) -> list[R]:
    """The execution core: serial loop, pool fan-out, or fallback."""
    effective = min(workers, len(payloads))
    if effective <= 1:
        return _run_serial(task, payloads, labels)

    try:
        executor = _make_executor(effective)
    except Exception as error:  # no pool available in this environment
        _warn_fallback(f"could not start a {effective}-worker pool ({error!r})")
        return _run_serial(task, payloads, labels)

    from concurrent.futures.process import BrokenProcessPool

    try:
        futures = [executor.submit(task, payload) for payload in payloads]
        results = []
        for label, future in zip(labels, futures):
            try:
                results.append(future.result())
            except BrokenProcessPool as error:
                _warn_fallback(
                    f"worker pool broke while running {label!r} ({error!r})"
                )
                return _run_serial(task, payloads, labels)
            except Exception as error:
                raise ShardError(label, error) from error
        return results
    except BrokenProcessPool as error:  # broke during submission
        _warn_fallback(f"worker pool broke during dispatch ({error!r})")
        return _run_serial(task, payloads, labels)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
