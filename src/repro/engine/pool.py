"""Process-pool execution with shard-aware error handling.

The engine's unit of parallelism is a *shard*: a self-contained piece
of work (one log-day to simulate, one log file to analyze) whose result
can be merged with its siblings afterwards.  :func:`run_sharded` is the
single dispatch point:

* ``workers=1`` is a pure serial loop — no pool, no pickling, no
  multiprocessing dependency at all;
* with more workers, shards fan out over a ``ProcessPoolExecutor``;
* a pool that cannot start or that breaks mid-run (a worker killed by
  the OS, a sandbox that forbids semaphores) degrades gracefully to the
  serial loop with an :class:`EngineFallbackWarning`, so parallelism is
  an optimization, never a new failure mode;
* an ordinary exception raised *inside* a worker is re-raised in the
  parent wrapped in :class:`ShardError`, which names the failing shard.

Results are always returned in shard order, which is what makes the
parallel paths bit-reproducible: callers merge in a fixed order no
matter which worker finished first.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

P = TypeVar("P")
R = TypeVar("R")


class EngineFallbackWarning(RuntimeWarning):
    """The pool was unavailable and the engine degraded to serial."""


class ShardError(RuntimeError):
    """A worker failed while processing one shard.

    Carries the shard's label in :attr:`shard_id`; the original
    exception is chained as ``__cause__``.
    """

    def __init__(self, shard_id: str, error: BaseException):
        super().__init__(f"shard {shard_id!r} failed: {error!r}")
        self.shard_id = shard_id


def _make_executor(workers: int):
    """Pool factory, isolated so tests (and broken environments) can
    observe creation failures."""
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=workers)


def _warn_fallback(reason: str) -> None:
    warnings.warn(
        f"engine: {reason}; falling back to serial execution",
        EngineFallbackWarning,
        stacklevel=3,
    )


def _run_serial(
    task: Callable[[P], R], payloads: Sequence[P], labels: Sequence[str]
) -> list[R]:
    results = []
    for label, payload in zip(labels, payloads):
        try:
            results.append(task(payload))
        except Exception as error:
            raise ShardError(label, error) from error
    return results


def run_sharded(
    task: Callable[[P], R],
    payloads: Iterable[P],
    *,
    workers: int = 1,
    labels: Sequence[str] | None = None,
) -> list[R]:
    """Run *task* over every payload, returning results in input order.

    *task* must be a module-level callable and the payloads picklable
    when ``workers > 1`` (the serial path has no such constraint).
    *labels* name the shards in error messages; they default to
    ``shard-<index>``.
    """
    payloads = list(payloads)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if labels is None:
        labels = [f"shard-{index}" for index in range(len(payloads))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(payloads):
            raise ValueError(
                f"{len(labels)} labels for {len(payloads)} payloads"
            )
    effective = min(workers, len(payloads))
    if effective <= 1:
        return _run_serial(task, payloads, labels)

    try:
        executor = _make_executor(effective)
    except Exception as error:  # no pool available in this environment
        _warn_fallback(f"could not start a {effective}-worker pool ({error!r})")
        return _run_serial(task, payloads, labels)

    from concurrent.futures.process import BrokenProcessPool

    try:
        futures = [executor.submit(task, payload) for payload in payloads]
        results = []
        for label, future in zip(labels, futures):
            try:
                results.append(future.result())
            except BrokenProcessPool as error:
                _warn_fallback(
                    f"worker pool broke while running {label!r} ({error!r})"
                )
                return _run_serial(task, payloads, labels)
            except Exception as error:
                raise ShardError(label, error) from error
        return results
    except BrokenProcessPool as error:  # broke during submission
        _warn_fallback(f"worker pool broke during dispatch ({error!r})")
        return _run_serial(task, payloads, labels)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
