"""Sharded parallel simulate→analyze execution layer.

The paper's pipeline chewed through 600 GB / 751 M requests; this
package is how the reproduction scales in the same direction.  The
workload partitions along the leak's own natural boundary — log-days ×
proxies — into independent shards:

* :mod:`repro.engine.shards` derives per-shard seeds from the scenario
  seed with ``SeedSequence.spawn`` (worker-count-invariant);
* :mod:`repro.engine.pool` fans shards over a process pool, with a
  zero-dependency serial path at ``workers=1``, shard-labelled error
  propagation, graceful degradation to serial when no pool can run,
  per-shard retry with capped exponential backoff
  (:class:`RetryPolicy`), per-shard timeouts, and a ``strict=False``
  partial-results mode that quarantines shards which exhaust their
  retry budget into :class:`~repro.faults.ShardFailure` records
  instead of aborting the run;
* :mod:`repro.engine.simulate` maps shards to simulated log-days and
  writes ELFF output that is byte-identical at every worker count;
* :mod:`repro.engine.analyze` map-reduces the streaming analysis over
  log files via the accumulators' ``merge``.

Every dispatch point accepts a :class:`repro.metrics.MetricsRegistry`
(``metrics=...``), which collects per-shard throughput records and the
hot-path counters without perturbing the simulated output, plus a
:class:`repro.faults.FaultPlan` (``fault_plan=...``, or the
``REPRO_FAULT_PLAN`` environment knob) for deterministic chaos
testing of all of the above, plus a
:class:`repro.runstate.RunCheckpoint` (``checkpoint=...``) that
journals every completed shard to a durable run ledger and, on
resume, loads verified completed shards instead of re-running them.
"""

from repro.engine.analyze import (
    analyze_logs,
    analyze_shard,
    load_frames,
)
from repro.engine.pool import (
    QUARANTINED,
    EngineFallbackWarning,
    RetryPolicy,
    ShardError,
    ShardTimeout,
    run_sharded,
)
from repro.engine.shards import (
    ShardPlan,
    SimShard,
    child_seed,
    plan_shards,
)
from repro.engine.simulate import (
    build_scenario_sharded,
    day_pipeline,
    scenario_context,
    simulate_day_records,
    simulate_into,
    simulate_shard,
    simulate_sink_shard,
    simulate_to_logs,
    write_logs,
)

__all__ = [
    "EngineFallbackWarning",
    "QUARANTINED",
    "RetryPolicy",
    "ShardError",
    "ShardPlan",
    "ShardTimeout",
    "SimShard",
    "analyze_logs",
    "analyze_shard",
    "build_scenario_sharded",
    "child_seed",
    "day_pipeline",
    "load_frames",
    "plan_shards",
    "run_sharded",
    "scenario_context",
    "simulate_day_records",
    "simulate_into",
    "simulate_shard",
    "simulate_sink_shard",
    "simulate_to_logs",
    "write_logs",
]
