"""Deterministic shard planning.

The natural shards of this domain already exist in the data: the leak
is organized as log-days × proxies, and every log-day's traffic is
independent given the scenario config.  The planner derives one shard
per configured log-day, each carrying its own entropy spawned from the
scenario seed via :class:`numpy.random.SeedSequence`.

The derivation depends only on ``(config.seed, day order)`` — never on
the worker count or on which process executes a shard — which is the
invariant the determinism suite locks down: ``workers=1`` and
``workers=N`` consume byte-identical random streams per day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.config import ScenarioConfig


@dataclass(frozen=True)
class SimShard:
    """One simulation work unit: a log-day plus its spawned entropy."""

    index: int
    day: str
    seed: np.random.SeedSequence

    @property
    def shard_id(self) -> str:
        """Stable label used in progress and error messages."""
        return f"day:{self.day}"


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of a scenario, plus the sampling entropy."""

    shards: tuple[SimShard, ...]
    sampling_seed: np.random.SeedSequence

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(config: ScenarioConfig) -> ShardPlan:
    """Partition *config* into per-log-day shards.

    The root ``SeedSequence(config.seed)`` spawns ``len(days) + 1``
    children: one per day, in ``config.days`` order, plus a trailing
    child reserved for the D_sample draw so dataset assembly is also
    worker-count-invariant.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(len(config.days) + 1)
    shards = tuple(
        SimShard(index=index, day=day, seed=child)
        for index, (day, child) in enumerate(zip(config.days, children))
    )
    return ShardPlan(shards=shards, sampling_seed=children[-1])


def child_seed(
    seed: np.random.SeedSequence, key: int
) -> np.random.SeedSequence:
    """The *key*-th child of *seed*, derived without mutating it.

    Equivalent to ``seed.spawn(key + 1)[key]`` but stateless, so a
    shard re-executed after a pool fallback sees the same stream.
    """
    return np.random.SeedSequence(
        entropy=seed.entropy, spawn_key=(*seed.spawn_key, key)
    )
