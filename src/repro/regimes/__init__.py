"""Pluggable censorship-regime profiles.

A regime profile (:class:`~repro.regimes.base.RegimeProfile`) bundles
a policy-rule builder, an appliance/fleet behaviour model, a workload
spec, and the recovery analyses that re-derive the regime's rules
from its own logs.  Three deployments ship registered:

``syria``
    The paper's Blue Coat SG-9000 proxy fleet (the default; output is
    byte-identical to the pre-regime engine).
``pakistan``
    ISP-level DNS NXDOMAIN injection plus HTTP 302 block pages, no
    proxy cache ("The Anatomy of Web Censorship in Pakistan").
``turkmenistan``
    Keyword DPI with RST teardown and /16-wide overblocking
    ("Measuring and Evading Turkmenistan's Internet Censorship").

Importing this package registers all three.  ``repro compare`` (see
:mod:`repro.regimes.compare`) runs one workload through N regimes and
tabulates them side by side.
"""

from repro.regimes.base import (
    ApplianceFleet,
    RegimeProfile,
    RuleRecovery,
    UnknownRegimeError,
    available_regimes,
    get_regime,
    register_regime,
)
from repro.regimes.pakistan import PAKISTAN
from repro.regimes.syria import SYRIA
from repro.regimes.turkmenistan import TURKMENISTAN

__all__ = [
    "ApplianceFleet",
    "RegimeProfile",
    "RuleRecovery",
    "UnknownRegimeError",
    "available_regimes",
    "get_regime",
    "register_regime",
    "SYRIA",
    "PAKISTAN",
    "TURKMENISTAN",
]
