"""Syria as a regime profile — the paper's deployment, re-homed.

The profile delegates to exactly the construction the pre-regime
engine hardwired: :func:`repro.policy.syria.build_syrian_policy` over
the canonical workload's ground truth, filtered by the seven-proxy
:class:`~repro.proxy.ProxyFleet`.  Byte-identical output to the
pre-refactor pipeline is pinned differentially in
``tests/test_regimes.py``, so treat any change to the construction
order here as an output-breaking change.
"""

from __future__ import annotations

from repro.analysis.stringfilter import (
    recover_censored_domains,
    recover_censored_hosts,
    recover_keywords,
)
from repro.frame import LogFrame
from repro.policy.syria import SyrianPolicy, build_syrian_policy
from repro.proxy import ProxyFleet
from repro.regimes.base import RegimeProfile, RuleRecovery, register_regime
from repro.workload import TrafficGenerator


def _build_policy(generator: TrafficGenerator) -> SyrianPolicy:
    return build_syrian_policy(
        generator.sites,
        tor_directory=generator.tor_directory,
        extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
    )


def _recover(frame: LogFrame, policy: SyrianPolicy) -> tuple[RuleRecovery, ...]:
    """The paper's Section 5.4 recovery, scored against ground truth."""
    suspected = recover_censored_domains(frame, min_censored=3)
    exclusion = {
        row.domain for row in recover_censored_domains(frame, min_censored=1)
    }
    hosts = recover_censored_hosts(
        frame, exclude_domains=exclusion, min_censored=1
    )
    keywords = recover_keywords(
        frame,
        exclude_domains=exclusion,
        exclude_hosts={row.host for row in hosts},
    )
    return (
        RuleRecovery(
            kind="url-domains",
            recovered=tuple(sorted(row.domain for row in suspected)),
            truth=tuple(sorted(policy.blocked_domains)),
        ),
        RuleRecovery(
            kind="hosts",
            recovered=tuple(sorted(row.host for row in hosts)),
            truth=tuple(sorted(policy.blocked_hosts)),
        ),
        RuleRecovery(
            kind="keywords",
            recovered=tuple(sorted(k.keyword for k in keywords)),
            truth=tuple(sorted(policy.keywords)),
        ),
    )


SYRIA = register_regime(RegimeProfile(
    name="syria",
    description="Blue Coat SG-9000 proxy fleet (Summer 2011, the paper)",
    mechanisms=("url-filtering", "keywords", "ip-subnets", "categories"),
    censor_exceptions=frozenset({"policy_denied", "policy_redirect"}),
    build_workload=TrafficGenerator,
    build_policy=_build_policy,
    build_fleet=ProxyFleet,
    recover_rules=_recover,
))
