"""Turkmenistan: keyword DPI with RST teardown and subnet overblocking.

Models the architecture of "Measuring and Evading Turkmenistan's
Internet Censorship" (PAPERS.md): a state-telecom DPI box watches both
directions of every flow and tears matching connections down with
forged RSTs.  Two rule layers:

* **keyword DPI** — a substring blacklist over the visible request
  text (host+path+query for HTTP, SNI/host for CONNECT); a match
  kills the connection mid-flight;
* **subnet-wide overblocking** — endpoint blocks are deployed as
  whole /16 prefixes rather than individual addresses, so clean
  hosting traffic that happens to share a /16 with a blocked
  anonymizer endpoint is collateral damage (the paper's hallmark
  finding).

Both layers emit the same wire behaviour — a torn-down connection —
so both log the ``dpi_rst_teardown`` signature: status 0, zero bytes
served, ``TCP_RST_INJECT``.  No cache (no PROXIED rows), no category
layer (``cs-categories`` is ``-``).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.analysis.stringfilter import recover_keywords
from repro.frame import LogFrame
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry
from repro.net.ip import IPv4Network, parse_ipv4
from repro.net.url import is_ip_like
from repro.policy.engine import PolicyEngine
from repro.policy.errors import ErrorModel
from repro.policy.rules import Action, RequestView, Verdict
from repro.regimes.base import (
    STATUS_BY_ERROR_EXCEPTION,
    RegimeProfile,
    RuleRecovery,
    register_regime,
)
from repro.traffic import Request
from repro.workload import TrafficGenerator

RST_TEARDOWN = "dpi_rst_teardown"

#: The DPI keyword blacklist: circumvention-tool vocabulary (the
#: tooling names the paper probes for, not Syria's list — ``israel``
#: and ``ultrareach`` are absent, ``vpn``/``psiphon`` are present).
TM_KEYWORDS: tuple[str, ...] = (
    "proxy",
    "vpn",
    "ultrasurf",
    "hotspotshield",
    "psiphon",
)

_ALLOWED_STATUSES = (200, 304, 302, 404)
_ALLOWED_STATUS_CUMULATIVE = np.cumsum((0.82, 0.11, 0.04, 0.03))


class DpiKeywordRule:
    """Substring blacklist enforced by RST injection."""

    def __init__(self, keywords: Iterable[str], name: str = "dpi"):
        self.keywords = tuple(keyword.lower() for keyword in keywords)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        text = request.matchable_text()
        for keyword in self.keywords:
            if keyword in text:
                return Verdict(
                    Action.DENY, RST_TEARDOWN, f"{self.name}:{keyword}"
                )
        return None


class SubnetRstRule:
    """Destination-prefix blacklist enforced by RST injection."""

    def __init__(self, prefixes: Iterable[IPv4Network], name: str = "subnet"):
        self.prefixes = tuple(prefixes)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if not is_ip_like(request.host):
            return None
        address = parse_ipv4(request.host)
        for prefix in self.prefixes:
            if address in prefix:
                return Verdict(
                    Action.DENY, RST_TEARDOWN, f"{self.name}:{prefix}"
                )
        return None


@dataclass(frozen=True)
class TurkmenistanPolicy:
    """The deployed rule set plus its ground truth."""

    engine: PolicyEngine
    dpi_keywords: tuple[str, ...]
    blocked_prefixes: tuple[IPv4Network, ...]


def widen_to_prefixes(
    addresses: Iterable[str], prefix: int = 16
) -> tuple[IPv4Network, ...]:
    """Widen individual addresses to their covering /``prefix`` blocks.

    This *is* the overblocking: one blocked anonymizer endpoint takes
    its entire /16 down with it.
    """
    networks = {IPv4Network(parse_ipv4(a), prefix) for a in addresses}
    return tuple(sorted(networks, key=lambda net: (net.network, net.prefix)))


def build_turkmenistan_policy(generator: TrafficGenerator) -> TurkmenistanPolicy:
    """Assemble the Turkmen policy over the workload's ground truth.

    The same anonymizer endpoints Syria blocks individually are here
    deployed as whole /16 prefixes, which drags the clean hosting
    pools sharing those /16s into the blackout.
    """
    prefixes = widen_to_prefixes(generator.blocked_anonymizer_addresses())
    engine = PolicyEngine(
        [DpiKeywordRule(TM_KEYWORDS), SubnetRstRule(prefixes)],
        name="turkmenistan-dpi",
    )
    return TurkmenistanPolicy(
        engine=engine,
        dpi_keywords=TM_KEYWORDS,
        blocked_prefixes=prefixes,
    )


class DpiFleet:
    """The state-telecom DPI gateway.

    Satisfies :class:`~repro.regimes.base.ApplianceFleet`.  A single
    chokepoint appliance — the paper's vantage points all sit behind
    the same Turkmentelecom path.
    """

    name = "TM-DPI-1"
    s_ip = "217.174.224.1"

    def __init__(
        self,
        policy: TurkmenistanPolicy,
        error_model: ErrorModel | None = None,
    ):
        self.policy = policy
        self.error_model = error_model or ErrorModel()

    def process(self, request: Request, rng: np.random.Generator) -> LogRecord:
        view = RequestView(
            host=request.host,
            path=request.path,
            query=request.query,
            port=request.port,
            scheme=request.scheme,
            method=request.method,
            epoch=request.epoch,
            user_agent=request.user_agent,
        )
        verdict = self.policy.engine.evaluate(view)
        exception = verdict.exception_id
        if verdict.action is Action.ALLOW:
            error = self.error_model.sample(rng)
            if error is not None:
                exception = error
        record = self._emit(request, exception, rng)
        registry = current_registry()
        if registry is not None:
            registry.inc("fleet.requests")
            registry.inc("fleet.verdict." + record.sc_filter_result)
            if record.x_exception_id != "-":
                registry.inc("fleet.exception." + record.x_exception_id)
        return record

    def _emit(
        self, request: Request, exception: str, rng: np.random.Generator
    ) -> LogRecord:
        supplier = "-"
        content_type = "-"
        if exception == "-":
            status_index = int(np.searchsorted(
                _ALLOWED_STATUS_CUMULATIVE, rng.random(), side="right"
            ))
            status = _ALLOWED_STATUSES[min(status_index, 3)]
            sc_bytes = int(rng.lognormal(8.0, 1.3))
            supplier = request.host
            content_type = request.content_type
            filter_result = "OBSERVED"
            s_action = (
                "TCP_TUNNELED" if request.method == "CONNECT" else "TCP_MISS"
            )
        elif exception == RST_TEARDOWN:
            # The torn-down connection: no response ever arrives, so
            # no status and no served bytes.
            status = 0
            sc_bytes = 0
            filter_result = "DENIED"
            s_action = "TCP_RST_INJECT"
        else:
            status = STATUS_BY_ERROR_EXCEPTION.get(exception, 503)
            sc_bytes = int(rng.integers(0, 700))
            filter_result = "DENIED"
            s_action = "TCP_ERR_MISS"

        return LogRecord(
            epoch=request.epoch,
            c_ip=request.c_ip,
            s_ip=self.s_ip,
            cs_host=request.host,
            cs_uri_scheme=request.scheme,
            cs_uri_port=request.port,
            cs_uri_path=request.path if request.method != "CONNECT" else "-",
            cs_uri_query=request.query if request.method != "CONNECT" else "-",
            cs_uri_ext=request.ext,
            cs_method=request.method,
            cs_user_agent=request.user_agent,
            cs_referer=request.referer,
            sc_filter_result=filter_result,
            x_exception_id=exception,
            cs_categories="-",
            sc_status=status,
            s_action=s_action,
            rs_content_type=content_type,
            time_taken=int(rng.lognormal(4.5, 1.0)),
            sc_bytes=sc_bytes,
            cs_bytes=int(rng.integers(200, 900)),
            s_supplier_name=supplier,
        )


def recover_blocked_prefixes(frame: LogFrame) -> tuple[str, ...]:
    """Recover the /16 blackout map from raw-IP traffic alone.

    Table 12's methodology generalized: a /16 is recovered when it
    contains censored raw-IP traffic and not a single allowed raw-IP
    request — the observable footprint of prefix-wide blocking.
    """
    hosts = frame.col("cs_host")
    exceptions = frame.col("x_exception_id")
    censored: set[int] = set()
    allowed: set[int] = set()
    for host, exception in zip(hosts, exceptions):
        if not is_ip_like(host):
            continue
        block = parse_ipv4(host) & 0xFFFF0000
        if exception == RST_TEARDOWN:
            censored.add(block)
        elif exception == "-":
            allowed.add(block)
    return tuple(
        str(IPv4Network(block, 16)) for block in sorted(censored - allowed)
    )


def _recover(
    frame: LogFrame, policy: TurkmenistanPolicy
) -> tuple[RuleRecovery, ...]:
    keywords = recover_keywords(frame)
    return (
        RuleRecovery(
            kind="dpi-keywords",
            recovered=tuple(sorted(k.keyword for k in keywords)),
            truth=tuple(sorted(policy.dpi_keywords)),
        ),
        RuleRecovery(
            kind="blocked-prefixes",
            recovered=recover_blocked_prefixes(frame),
            truth=tuple(str(p) for p in policy.blocked_prefixes),
        ),
    )


TURKMENISTAN = register_regime(RegimeProfile(
    name="turkmenistan",
    description="Keyword DPI with RST teardown and /16-wide overblocking",
    mechanisms=("keyword-dpi", "rst-teardown", "subnet-overblocking"),
    censor_exceptions=frozenset({RST_TEARDOWN}),
    build_workload=TrafficGenerator,
    build_policy=build_turkmenistan_policy,
    build_fleet=DpiFleet,
    recover_rules=_recover,
))
