"""The regime-profile abstraction.

A :class:`RegimeProfile` bundles everything one censorship deployment
needs to run through the shared pipeline: how to build the workload,
how to turn that workload's ground truth into a policy, which
appliance model filters the traffic (a caching proxy fleet, a DNS
injector, a bidirectional-RST DPI box — anything satisfying
:class:`ApplianceFleet`), and how to re-derive the deployed rules from
the logs the appliances emit.

The registry maps regime names (``ScenarioConfig.regime``,
``--regime``) to profiles.  Registering a new regime is additive: the
engine, the checkpoint ledger, the batch path, and ``repro compare``
pick it up by name without modification.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # imported for annotations only — keeps this module light
    import numpy as np

    from repro.frame import LogFrame
    from repro.logmodel.record import LogRecord
    from repro.traffic import Request
    from repro.workload import ScenarioConfig, TrafficGenerator


@runtime_checkable
class ApplianceFleet(Protocol):
    """What the engine requires of a regime's filtering layer.

    One request in, one log record out; *rng* is the shard's dedicated
    fleet stream, consumed record-at-a-time so column-batch execution
    never changes the random draws.
    :class:`~repro.proxy.fleet.ProxyFleet` and the single
    :class:`~repro.proxy.sg9000.SG9000` already satisfy this.
    """

    def process(
        self, request: "Request", rng: "np.random.Generator"
    ) -> "LogRecord": ...


#: Status codes for network-error exceptions, shared by appliance
#: models that inject errors via :class:`~repro.policy.errors.
#: ErrorModel` (same vocabulary as the SG-9000's SGOS conventions).
STATUS_BY_ERROR_EXCEPTION: dict[str, int] = {
    "tcp_error": 503,
    "internal_error": 500,
    "invalid_request": 400,
    "unsupported_protocol": 501,
    "dns_unresolved_hostname": 503,
    "dns_server_failure": 503,
    "unsupported_encoding": 415,
    "invalid_response": 502,
}


@dataclass(frozen=True)
class RuleRecovery:
    """One recovered rule set scored against the deployed ground truth.

    ``recovered`` is what the regime's recovery analysis re-derived
    from the logs alone; ``truth`` is the rule set the policy actually
    deployed.  Precision/recall follow the usual definitions, with the
    empty-set conventions that make small smoke workloads well-defined
    (no recoveries → precision 1.0; no truth → recall 1.0).
    """

    kind: str
    recovered: tuple[str, ...]
    truth: tuple[str, ...]

    @property
    def true_positives(self) -> int:
        return len(set(self.recovered) & set(self.truth))

    @property
    def precision(self) -> float:
        if not self.recovered:
            return 1.0
        return self.true_positives / len(set(self.recovered))

    @property
    def recall(self) -> float:
        if not self.truth:
            return 1.0
        return self.true_positives / len(set(self.truth))


@dataclass(frozen=True)
class RegimeProfile:
    """One registered censorship deployment.

    The four bundled capabilities:

    ``build_workload``
        :class:`~repro.workload.ScenarioConfig` → traffic generator —
        the regime's traffic-mixture spec (most regimes share the
        canonical generator so ``repro compare`` can hold the workload
        fixed across regimes).
    ``build_policy``
        generator → the regime's policy object (any type; the fleet
        and the recovery own its interpretation).
    ``build_fleet``
        policy → an :class:`ApplianceFleet`.
    ``recover_rules``
        (D_full frame, policy) → scored :class:`RuleRecovery` rows —
        the Section 5.4-style analysis that re-derives the regime's
        rules from its own logs.

    ``censor_exceptions`` names the verdict signatures this regime
    emits; every id must be a member of
    :data:`repro.logmodel.classify.CENSOR_EXCEPTIONS` so the shared
    classification, masks, and streaming accumulators count it.
    """

    name: str
    description: str
    mechanisms: tuple[str, ...]
    censor_exceptions: frozenset[str]
    build_workload: Callable[["ScenarioConfig"], "TrafficGenerator"]
    build_policy: Callable[["TrafficGenerator"], Any]
    build_fleet: Callable[[Any], ApplianceFleet]
    recover_rules: Callable[["LogFrame", Any], tuple[RuleRecovery, ...]]


class UnknownRegimeError(ValueError):
    """Raised for a regime name with no registered profile."""


_REGISTRY: dict[str, RegimeProfile] = {}


def register_regime(profile: RegimeProfile, replace: bool = False) -> RegimeProfile:
    """Add *profile* to the registry (idempotent re-registration of
    the same object is allowed; silently replacing a different profile
    under an existing name is not, unless ``replace=True``)."""
    existing = _REGISTRY.get(profile.name)
    if existing is not None and existing is not profile and not replace:
        raise ValueError(
            f"regime {profile.name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[profile.name] = profile
    return profile


def get_regime(name: str) -> RegimeProfile:
    """Look up a registered profile by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownRegimeError(
            f"unknown regime {name!r}; registered regimes: "
            f"{', '.join(available_regimes())}"
        ) from None


def available_regimes() -> tuple[str, ...]:
    """The registered regime names, sorted."""
    return tuple(sorted(_REGISTRY))
