"""Pakistan: ISP-level DNS injection and HTTP block pages.

Models the architecture of "The Anatomy of Web Censorship in Pakistan"
(PAPERS.md): blocking happens in the ISP's resolver/gateway path, not
in a caching proxy.  Blacklisted *domains* never resolve — the
injector answers NXDOMAIN before any TCP connection exists — while
blacklisted *URLs/hosts* on plain HTTP are answered with a 302
redirect to a government block page.  There is no proxy cache, so this
regime's logs contain no PROXIED rows at all, and no categorizer, so
``cs-categories`` is always ``-``.

Distinct verdict signatures (members of
:data:`repro.logmodel.classify.CENSOR_EXCEPTIONS`):

* ``dns_injected_nxdomain`` — status 0, ``DNS_INJECT_NXDOMAIN``;
* ``http_blockpage`` — status 302, ``TCP_BLOCKPAGE_REDIRECT``, with
  the block-page host as the supplier.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.frame import LogFrame
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry
from repro.net.url import is_ip_like, registered_domain
from repro.policy.engine import PolicyEngine
from repro.policy.errors import ErrorModel
from repro.policy.rules import Action, RequestView, Verdict
from repro.policy.syria import (
    blocked_domains_from_sites,
    blocked_hosts_from_sites,
)
from repro.regimes.base import (
    STATUS_BY_ERROR_EXCEPTION,
    RegimeProfile,
    RuleRecovery,
    register_regime,
)
from repro.traffic import Request
from repro.workload import TrafficGenerator

DNS_INJECTED = "dns_injected_nxdomain"
BLOCKPAGE = "http_blockpage"

#: Where the 302 block pages point (the surveyed ISPs redirect to a
#: handful of government notice hosts; one stands in for them here).
BLOCKPAGE_HOST = "block.pta.gov.pk"

_ALLOWED_STATUSES = (200, 304, 302, 404)
_ALLOWED_STATUS_CUMULATIVE = np.cumsum((0.82, 0.11, 0.04, 0.03))


class DnsInjectionRule:
    """Domain blacklist enforced at resolution time.

    Applies to every scheme — HTTPS included, since the name never
    resolves — but not to raw-IP requests, which bypass DNS entirely
    (the paper's evasion observation).
    """

    def __init__(self, domains: Iterable[str], name: str = "dns"):
        self.domains = frozenset(domains)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if is_ip_like(request.host):
            return None
        domain = registered_domain(request.host)
        if domain in self.domains:
            return Verdict(Action.DENY, DNS_INJECTED, f"{self.name}:{domain}")
        return None


class BlockpageRule:
    """Host blacklist answered with a 302 block page.

    Plain HTTP only: the gateway cannot forge a response inside a TLS
    stream, so CONNECT requests to these hosts pass (the paper's
    HTTPS-evasion finding).
    """

    def __init__(self, hosts: Iterable[str], name: str = "blockpage"):
        self.hosts = frozenset(hosts)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if request.method == "CONNECT" or request.scheme == "https":
            return None
        if request.host in self.hosts:
            return Verdict(
                Action.REDIRECT, BLOCKPAGE, f"{self.name}:{request.host}"
            )
        return None


@dataclass(frozen=True)
class PakistanPolicy:
    """The deployed rule set plus its ground truth."""

    engine: PolicyEngine
    dns_blocked_domains: frozenset[str]
    blockpage_hosts: frozenset[str]
    blockpage_host: str = BLOCKPAGE_HOST


def build_pakistan_policy(generator: TrafficGenerator) -> PakistanPolicy:
    """Assemble the Pakistani policy over the workload's site universe.

    The same tagged sites that seed Syria's URL filtering stand in for
    the court-ordered blocklists: ``suspected``-tagged domains go to
    the DNS injector, individually ``blocked-host``-tagged hosts to
    the block-page list.  DNS wins when both would match — resolution
    happens before any HTTP exchange.
    """
    dns_domains = blocked_domains_from_sites(generator.sites)
    page_hosts = blocked_hosts_from_sites(generator.sites)
    engine = PolicyEngine(
        [DnsInjectionRule(dns_domains), BlockpageRule(page_hosts)],
        name="pakistan-isp",
    )
    return PakistanPolicy(
        engine=engine,
        dns_blocked_domains=dns_domains,
        blockpage_hosts=page_hosts,
    )


class DnsInjectorFleet:
    """The ISP gateway: resolver injection + inline HTTP filtering.

    Satisfies :class:`~repro.regimes.base.ApplianceFleet`.  One
    logical appliance (the logs of the Pakistani vantage points come
    from a single ISP path), no cache, no category layer.
    """

    name = "PK-GW-1"
    s_ip = "202.125.128.1"

    def __init__(self, policy: PakistanPolicy, error_model: ErrorModel | None = None):
        self.policy = policy
        self.error_model = error_model or ErrorModel()

    def process(self, request: Request, rng: np.random.Generator) -> LogRecord:
        view = RequestView(
            host=request.host,
            path=request.path,
            query=request.query,
            port=request.port,
            scheme=request.scheme,
            method=request.method,
            epoch=request.epoch,
            user_agent=request.user_agent,
        )
        verdict = self.policy.engine.evaluate(view)
        exception = verdict.exception_id
        if verdict.action is Action.ALLOW:
            error = self.error_model.sample(rng)
            if error is not None:
                exception = error
        record = self._emit(request, exception, rng)
        registry = current_registry()
        if registry is not None:
            registry.inc("fleet.requests")
            registry.inc("fleet.verdict." + record.sc_filter_result)
            if record.x_exception_id != "-":
                registry.inc("fleet.exception." + record.x_exception_id)
        return record

    def _emit(
        self, request: Request, exception: str, rng: np.random.Generator
    ) -> LogRecord:
        supplier = "-"
        content_type = "-"
        if exception == "-":
            status_index = int(np.searchsorted(
                _ALLOWED_STATUS_CUMULATIVE, rng.random(), side="right"
            ))
            status = _ALLOWED_STATUSES[min(status_index, 3)]
            sc_bytes = int(rng.lognormal(8.0, 1.3))
            supplier = request.host
            content_type = request.content_type
            filter_result = "OBSERVED"
            s_action = (
                "TCP_TUNNELED" if request.method == "CONNECT" else "TCP_MISS"
            )
        elif exception == DNS_INJECTED:
            # The forged NXDOMAIN: no TCP connection ever exists, so
            # there is no HTTP status and almost no bytes.
            status = 0
            sc_bytes = int(rng.integers(60, 140))
            filter_result = "DENIED"
            s_action = "DNS_INJECT_NXDOMAIN"
        elif exception == BLOCKPAGE:
            status = 302
            sc_bytes = int(rng.integers(300, 600))
            supplier = self.policy.blockpage_host
            content_type = "text/html"
            filter_result = "DENIED"
            s_action = "TCP_BLOCKPAGE_REDIRECT"
        else:
            status = STATUS_BY_ERROR_EXCEPTION.get(exception, 503)
            sc_bytes = int(rng.integers(0, 700))
            filter_result = "DENIED"
            s_action = "TCP_ERR_MISS"

        return LogRecord(
            epoch=request.epoch,
            c_ip=request.c_ip,
            s_ip=self.s_ip,
            cs_host=request.host,
            cs_uri_scheme=request.scheme,
            cs_uri_port=request.port,
            cs_uri_path=request.path if request.method != "CONNECT" else "-",
            cs_uri_query=request.query if request.method != "CONNECT" else "-",
            cs_uri_ext=request.ext,
            cs_method=request.method,
            cs_user_agent=request.user_agent,
            cs_referer=request.referer,
            sc_filter_result=filter_result,
            x_exception_id=exception,
            cs_categories="-",
            sc_status=status,
            s_action=s_action,
            rs_content_type=content_type,
            time_taken=int(rng.lognormal(4.5, 1.0)),
            sc_bytes=sc_bytes,
            cs_bytes=int(rng.integers(200, 900)),
            s_supplier_name=supplier,
        )


def _recover(frame: LogFrame, policy: PakistanPolicy) -> tuple[RuleRecovery, ...]:
    """Re-derive the blocklists from the injector's own signatures.

    The mechanisms identify themselves in the logs (the paper's
    fingerprinting step): every NXDOMAIN-injected row names a
    DNS-blocked domain, every 302-to-block-page row names a filtered
    host.  Recall falls short of 1.0 exactly where the workload never
    touched a blacklisted name — unobserved rules are unrecoverable.
    """
    exceptions = frame.col("x_exception_id")
    hosts = frame.col("cs_host")
    dns_hosts = hosts[exceptions == DNS_INJECTED]
    page_hosts = hosts[exceptions == BLOCKPAGE]
    return (
        RuleRecovery(
            kind="dns-domains",
            recovered=tuple(sorted({registered_domain(h) for h in dns_hosts})),
            truth=tuple(sorted(policy.dns_blocked_domains)),
        ),
        RuleRecovery(
            kind="blockpage-hosts",
            recovered=tuple(sorted(set(page_hosts))),
            truth=tuple(sorted(policy.blockpage_hosts)),
        ),
    )


PAKISTAN = register_regime(RegimeProfile(
    name="pakistan",
    description="ISP-level DNS NXDOMAIN injection + HTTP 302 block pages",
    mechanisms=("dns-injection", "http-blockpage"),
    censor_exceptions=frozenset({DNS_INJECTED, BLOCKPAGE}),
    build_workload=TrafficGenerator,
    build_policy=build_pakistan_policy,
    build_fleet=DnsInjectorFleet,
    recover_rules=_recover,
))
