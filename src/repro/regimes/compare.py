"""``repro compare``: one workload, N regimes, side by side.

Runs the same :class:`~repro.workload.ScenarioConfig` (volume, seed,
days, boosts — everything except the ``regime`` field) through each
requested regime profile on the sharded engine, then tabulates what
each deployment did to identical traffic: block rates, the mechanism
mix (per censor-exception volume), the error surface, and how well
each regime's recovery analysis re-derives its own rules.  This is
the proof that the profile abstraction carries analysis, not just
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.overview import traffic_breakdown
from repro.logmodel.classify import CENSOR_EXCEPTIONS, NO_EXCEPTION
from repro.regimes.base import RuleRecovery, get_regime
from repro.reporting.tables import render_table
from repro.workload import ScenarioConfig

DEFAULT_COMPARE_REGIMES: tuple[str, ...] = (
    "syria",
    "pakistan",
    "turkmenistan",
)


@dataclass(frozen=True)
class RegimeSummary:
    """One regime's column of the comparison."""

    regime: str
    description: str
    mechanisms: tuple[str, ...]
    total: int
    allowed_pct: float
    censored_pct: float
    error_pct: float
    proxied_pct: float
    #: censor-exception id -> rows (the mechanism mix).
    mechanism_mix: dict[str, int]
    #: error-exception id -> rows (the error surface).
    error_surface: dict[str, int]
    recoveries: tuple[RuleRecovery, ...]


@dataclass(frozen=True)
class RegimeComparison:
    """The full cross-regime comparison over one shared workload."""

    config: ScenarioConfig
    summaries: tuple[RegimeSummary, ...]

    def summary_for(self, regime: str) -> RegimeSummary:
        for summary in self.summaries:
            if summary.regime == regime:
                return summary
        raise KeyError(f"no summary for regime {regime!r}")


def summarize_regime(regime: str, datasets) -> RegimeSummary:
    """Summarize one regime's run for the comparison table."""
    profile = get_regime(regime)
    frame = datasets.full
    breakdown = traffic_breakdown(frame)
    mechanism_mix: dict[str, int] = {}
    error_surface: dict[str, int] = {}
    for row in breakdown.exception_rows:
        if row.exception_id == NO_EXCEPTION:
            continue
        if row.exception_id in CENSOR_EXCEPTIONS:
            mechanism_mix[row.exception_id] = row.count
        else:
            error_surface[row.exception_id] = row.count
    return RegimeSummary(
        regime=regime,
        description=profile.description,
        mechanisms=profile.mechanisms,
        total=breakdown.total,
        allowed_pct=breakdown.allowed_pct,
        censored_pct=breakdown.censored_pct,
        error_pct=breakdown.denied_pct - breakdown.censored_pct,
        proxied_pct=breakdown.proxied_pct,
        mechanism_mix=mechanism_mix,
        error_surface=error_surface,
        recoveries=profile.recover_rules(frame, datasets.policy),
    )


def compare_regimes(
    config: ScenarioConfig,
    regimes: tuple[str, ...] = DEFAULT_COMPARE_REGIMES,
    *,
    workers: int = 1,
    batch_size: int | None = None,
    metrics=None,
    retry=None,
    allow_partial: bool = False,
    failures=None,
    fault_plan=None,
) -> RegimeComparison:
    """Run the shared workload through every regime and summarize.

    Each regime gets ``replace(config, regime=name)`` — same volume,
    same seed, same days — so every difference in the table is the
    deployment's doing, not the workload's.

    *retry*, *allow_partial*, *failures*, and *fault_plan* thread
    through to every regime's :func:`run_sharded` dispatch, so a
    comparison under chaos behaves like any other sharded command:
    with ``allow_partial=True`` a quarantined day drops out of that
    regime's datasets (its summary covers the surviving days; the
    shared *failures* report names which shards, per regime).
    """
    from repro.engine.simulate import build_scenario_sharded

    for name in regimes:
        get_regime(name)  # fail fast on unknown names, before any work
    summaries = []
    for name in regimes:
        datasets = build_scenario_sharded(
            replace(config, regime=name),
            workers=workers,
            batch_size=batch_size,
            metrics=metrics,
            retry=retry,
            allow_partial=allow_partial,
            failures=failures,
            fault_plan=fault_plan,
        )
        summaries.append(summarize_regime(name, datasets))
    return RegimeComparison(config=config, summaries=tuple(summaries))


def _metric_rows(comparison: RegimeComparison) -> list[list[str]]:
    """The table body: one row per metric, one column per regime."""
    summaries = comparison.summaries

    def row(label, cell):
        return [label] + [cell(s) for s in summaries]

    rows = [
        row("requests", lambda s: f"{s.total:,}"),
        row("allowed %", lambda s: f"{s.allowed_pct:.2f}"),
        row("censored %", lambda s: f"{s.censored_pct:.2f}"),
        row("errors %", lambda s: f"{s.error_pct:.2f}"),
        row("proxied %", lambda s: f"{s.proxied_pct:.2f}"),
    ]
    mechanism_ids = sorted(
        {exception for s in summaries for exception in s.mechanism_mix}
    )
    for exception in mechanism_ids:
        rows.append(row(
            f"mechanism {exception}",
            lambda s, e=exception: str(s.mechanism_mix.get(e, 0)),
        ))
    error_ids = sorted(
        {exception for s in summaries for exception in s.error_surface}
    )
    for exception in error_ids:
        rows.append(row(
            f"error {exception}",
            lambda s, e=exception: str(s.error_surface.get(e, 0)),
        ))
    kinds: list[str] = []
    for summary in summaries:
        for recovery in summary.recoveries:
            if recovery.kind not in kinds:
                kinds.append(recovery.kind)

    def recovery_cell(summary: RegimeSummary, kind: str, fmt) -> str:
        for recovery in summary.recoveries:
            if recovery.kind == kind:
                return fmt(recovery)
        return "-"

    for kind in kinds:
        rows.append(row(
            f"recovered {kind}",
            lambda s, k=kind: recovery_cell(
                s, k, lambda r: f"{len(r.recovered)}/{len(r.truth)}"
            ),
        ))
        rows.append(row(
            f"precision {kind}",
            lambda s, k=kind: recovery_cell(s, k, lambda r: f"{r.precision:.2f}"),
        ))
        rows.append(row(
            f"recall {kind}",
            lambda s, k=kind: recovery_cell(s, k, lambda r: f"{r.recall:.2f}"),
        ))
    return rows


def comparison_table(comparison: RegimeComparison) -> str:
    """Render the comparison as an aligned ASCII table."""
    headers = ["Metric"] + [s.regime for s in comparison.summaries]
    title = (
        f"Regime comparison — {comparison.config.total_requests:,} "
        f"requests, seed {comparison.config.seed}"
    )
    return render_table(headers, _metric_rows(comparison), title=title)


def comparison_to_markdown(comparison: RegimeComparison) -> str:
    """Render the comparison as a Markdown pipe table."""
    headers = ["Metric"] + [s.regime for s in comparison.summaries]
    lines = [
        f"# Regime comparison — {comparison.config.total_requests:,} "
        f"requests, seed {comparison.config.seed}",
        "",
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in _metric_rows(comparison):
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    lines.append("")
    for summary in comparison.summaries:
        lines.append(
            f"- **{summary.regime}** — {summary.description} "
            f"(mechanisms: {', '.join(summary.mechanisms)})"
        )
    return "\n".join(lines) + "\n"


def comparison_to_json(comparison: RegimeComparison) -> dict:
    """The comparison as a JSON-ready dict (``repro compare --json``)."""
    return {
        "schema": "repro.compare/1",
        "requests": comparison.config.total_requests,
        "seed": comparison.config.seed,
        "regimes": [
            {
                "regime": s.regime,
                "description": s.description,
                "mechanisms": list(s.mechanisms),
                "requests": s.total,
                "allowed_pct": s.allowed_pct,
                "censored_pct": s.censored_pct,
                "error_pct": s.error_pct,
                "proxied_pct": s.proxied_pct,
                "mechanism_mix": dict(sorted(s.mechanism_mix.items())),
                "error_surface": dict(sorted(s.error_surface.items())),
                "recoveries": [
                    {
                        "kind": r.kind,
                        "recovered": len(r.recovered),
                        "truth": len(r.truth),
                        "precision": r.precision,
                        "recall": r.recall,
                    }
                    for r in s.recoveries
                ],
            }
            for s in comparison.summaries
        ],
    }
