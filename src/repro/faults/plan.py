"""Deterministic fault injection: plans, rules, and the site hook.

The paper's pipeline had to survive 600 GB of messy reality — truncated
lines, missing days, proxy errors — and the engine's resilience layer
is only trustworthy if it can be *tested* against that reality on
demand.  This module provides the chaos side of that bargain: a
:class:`FaultPlan` describes which faults fire at which named sites,
and :func:`fault_point` is the zero-cost hook threaded through the
execution core (``run_sharded`` shard starts, the ELFF reader, the
gzip opener).

Determinism is the whole point.  A plan is a pure function of its
rules and seed: rate-based injection derives each (site, shard)
decision from a :class:`numpy.random.SeedSequence` keyed by the site
and shard id — never from call order, worker count, or wall clock — so
a chaos run is exactly reproducible, and the suite can pin "output
under faults equals the fault-free output" byte for byte.

When no plan is active, :func:`fault_point` is a single global read
and a predicted branch — fault sites cost nothing in production runs.
"""

from __future__ import annotations

import os
import time
import zlib
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

#: Fault kinds a rule may inject.  ``kill`` is the only one that does
#: not raise: it SIGKILLs the executing process outright, which is how
#: the durability suite produces real process death for
#: checkpoint/resume tests (``repro.runstate``).
FAULT_KINDS = ("transient", "crash", "corrupt", "slow", "kill")

#: The named sites the execution core exposes.  Documented here so the
#: chaos suite and the docs agree on the vocabulary.
FAULT_SITES = (
    "shard.start",   # entry of every run_sharded shard attempt
    "elff.source",   # ElffSource pipeline iteration start
    "elff.read",     # path-level ELFF read (read_log)
    "gzip.open",     # gzip-transparent reader open
    "worker.kill",   # dispatch worker, after lease grant / before work
)


class InjectedFault(RuntimeError):
    """A transient fault fired by a :class:`FaultPlan`.

    Carries the site, the shard id the plan matched, and the attempt
    number, so retry logic and quarantine reports can name the cause.
    """

    kind = "transient"

    def __init__(self, site: str, shard_id: str, attempt: int):
        super().__init__(
            f"injected {self.kind} fault at {site} "
            f"(shard {shard_id!r}, attempt {attempt})"
        )
        self.site = site
        self.shard_id = shard_id
        self.attempt = attempt

    def __reduce__(self):
        # Exceptions with multi-arg __init__ need explicit reduce to
        # survive the worker -> parent pickle trip.
        return (type(self), (self.site, self.shard_id, self.attempt))


class InjectedCrash(InjectedFault):
    """A permanent worker-crash fault (never survives a retry)."""

    kind = "crash"


class InjectedCorruption(InjectedFault):
    """A corrupted-input fault (persists across retries, like a bad
    file on disk)."""

    kind = "corrupt"


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: what fires, where, and for how long.

    ``shard_id=None`` matches every shard at the site; otherwise the
    rule fires only for the exact shard label (``day:2011-08-03``,
    ``log:sg-42.log``).  ``transient``, ``slow`` and ``kill`` faults
    honour ``fail_attempts`` — they fire while ``attempt <
    fail_attempts`` and then stop, which is what makes them
    retry-survivable (for ``kill``, what lets a reclaimed lease's
    re-run land on a "healthy node" instead of dying forever).
    ``crash`` and ``corrupt`` fire on every attempt (a dead worker
    stays dead, a corrupt file stays corrupt), which is what exercises
    quarantine.
    """

    site: str
    kind: str = "transient"
    shard_id: str | None = None
    fail_attempts: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )

    def matches(self, site: str, shard_id: str) -> bool:
        """Whether this rule applies at *site* for *shard_id*."""
        if self.site != site:
            return False
        return self.shard_id is None or self.shard_id == shard_id


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults.

    Two layers compose:

    * **explicit rules** — targeted faults for specific sites/shards
      (crash shard k, corrupt this file, slow that day);
    * **rate-based transient noise** — every ``rate_site`` shard rolls
      a deterministic uniform against ``rate``; rolls derive from a
      :class:`~numpy.random.SeedSequence` keyed by ``(seed, site,
      shard_id)`` exactly like the engine derives shard seeds, so the
      same plan fires the same faults at every worker count.

    Plans are frozen and picklable: the parent resolves one plan and
    ships it to every worker with the shard payload.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    rate: float = 0.0
    rate_site: str = "shard.start"
    rate_attempts: int = 1

    def roll(self, site: str, shard_id: str) -> float:
        """The deterministic uniform [0, 1) for (site, shard_id)."""
        token = zlib.crc32(f"{site}:{shard_id}".encode("utf-8"))
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(token,)
        )
        return float(sequence.generate_state(1)[0]) / 2.0 ** 32

    def faults_for(self, site: str, shard_id: str, attempt: int = 0):
        """The rules (plus any rate fault) firing at this call."""
        fired = [
            rule for rule in self.rules if rule.matches(site, shard_id)
        ]
        if (
            self.rate > 0.0
            and site == self.rate_site
            and attempt < self.rate_attempts
            and self.roll(site, shard_id) < self.rate
        ):
            fired.append(FaultRule(
                site=site, kind="transient", shard_id=shard_id,
                fail_attempts=self.rate_attempts,
            ))
        return fired

    def fire(self, site: str, shard_id: str, attempt: int) -> None:
        """Inject whatever this plan schedules at (site, shard_id).

        Raises the matching :class:`InjectedFault` subclass, sleeps for
        ``slow`` rules, or returns normally when nothing fires.
        """
        for rule in self.faults_for(site, shard_id, attempt):
            if rule.kind == "slow":
                if attempt < rule.fail_attempts and rule.delay_seconds > 0:
                    time.sleep(rule.delay_seconds)
                continue
            if rule.kind == "kill":
                if attempt >= rule.fail_attempts:
                    # A later attempt of the same shard — the retry of
                    # a resumed run, or a reclaimed lease in the
                    # distributed dispatcher — survives, mirroring how
                    # a re-scheduled shard lands on a healthy node.
                    continue
                # Real process death, not an exception: the worker (or
                # the serial parent) dies mid-run exactly like an OOM
                # kill or a lost node, leaving whatever the run ledger
                # has journaled so far.
                import signal

                os.kill(os.getpid(), signal.SIGKILL)
            if rule.kind == "crash":
                raise InjectedCrash(site, shard_id, attempt)
            if rule.kind == "corrupt":
                raise InjectedCorruption(site, shard_id, attempt)
            if attempt < rule.fail_attempts:
                raise InjectedFault(site, shard_id, attempt)


#: The active (plan, shard_id, attempt) context; ``None`` disables all
#: fault sites — a single predicted branch on the hot paths.
_ACTIVE: tuple[FaultPlan, str, int] | None = None


def active_fault_context() -> tuple[FaultPlan, str, int] | None:
    """The (plan, shard_id, attempt) currently in effect, if any."""
    return _ACTIVE


@contextmanager
def use_fault_plan(
    plan: FaultPlan | None,
    *,
    shard_id: str = "?",
    attempt: int = 0,
) -> Iterator[FaultPlan | None]:
    """Activate *plan* for a ``with`` block (nesting-safe).

    The engine wraps every shard attempt in this context, which is how
    ``fault_point`` calls deep inside the shard (ELFF reads, gzip
    opens) know which shard and attempt they belong to.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None if plan is None else (plan, shard_id, attempt)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fault_point(site: str) -> None:
    """The hook the execution core calls at every named fault site.

    A no-op (one global read, one branch) unless a plan was activated
    with :func:`use_fault_plan` — production runs pay nothing.
    """
    context = _ACTIVE
    if context is None:
        return
    plan, shard_id, attempt = context
    plan.fire(site, shard_id, attempt)


# -- the environment knob ----------------------------------------------------

#: Cache of the parsed REPRO_FAULT_PLAN value, keyed by the raw text so
#: tests that monkeypatch the variable see fresh parses.
_ENV_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the ``REPRO_FAULT_PLAN`` spec string.

    Comma-separated ``key=value`` pairs: ``seed=<int>``,
    ``rate=<float>``, ``attempts=<int>`` (how many attempts the rate
    faults poison), ``site=<name>`` (which site rolls the rate; default
    ``shard.start``), and ``kill=<shard_id>`` (SIGKILL the process the
    moment that shard starts — how the CI kill-resume step produces
    real process death; ``kill_site=<name>`` moves it off
    ``shard.start``).  Example::

        REPRO_FAULT_PLAN="seed=20260805,rate=0.1"

    gives every shard a deterministic 10 % chance of one transient
    failure on its first attempt — recovered by the default retry
    budget, so a chaos CI run exercises the injection and retry paths
    while every assertion stays byte-identical.

    A malformed value raises a :class:`ValueError` naming the variable
    and the offending entry, never a bare parse traceback.
    """
    seed, rate, attempts, site = 0, 0.0, 1, "shard.start"
    kill_shard, kill_site = None, "shard.start"
    for pair in spec.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, _, value = pair.partition("=")
        key, value = key.strip(), value.strip()
        try:
            if key == "seed":
                seed = int(value)
            elif key == "rate":
                rate = float(value)
            elif key == "attempts":
                attempts = int(value)
            elif key == "site":
                site = value
            elif key == "kill":
                if not value:
                    raise ValueError("kill needs a shard id")
                kill_shard = value
            elif key == "kill_site":
                kill_site = value
            else:
                raise ValueError(f"unknown key {key!r}")
        except ValueError as error:
            raise ValueError(
                f"bad REPRO_FAULT_PLAN entry {pair!r}: {error}"
            ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"REPRO_FAULT_PLAN rate must be in [0, 1], got {rate}")
    rules: tuple[FaultRule, ...] = ()
    if kill_shard is not None:
        rules = (FaultRule(site=kill_site, kind="kill", shard_id=kill_shard),)
    return FaultPlan(rules=rules, seed=seed, rate=rate,
                     rate_attempts=attempts, rate_site=site)


def plan_from_env() -> FaultPlan | None:
    """The plan described by ``REPRO_FAULT_PLAN``, or ``None``.

    Parsed lazily and cached per spec text, so the engine's dispatch
    path costs one environment lookup when the variable is unset.
    """
    global _ENV_CACHE
    spec = os.environ.get("REPRO_FAULT_PLAN")
    if not spec:
        return None
    cached_spec, cached_plan = _ENV_CACHE
    if cached_spec != spec:
        _ENV_CACHE = (spec, parse_fault_plan(spec))
    return _ENV_CACHE[1]
