"""Quarantine bookkeeping: what failed, where, and after how many tries.

In partial-results mode (``strict=False``) the engine does not die on
a shard that keeps failing after its retry budget — it quarantines the
shard into a :class:`ShardFailure` record and carries on with the
survivors.  :class:`ShardFailureReport` collects those records under
the same monoid discipline as every other accumulator in the system
(``merge``/``+=``/``+`` with the empty report as identity, merge =
concatenation in shard order), so failure reports from sharded
sub-runs reduce exactly like the results they ride alongside.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardFailure:
    """One quarantined shard: which, where it failed, and why."""

    shard_id: str
    site: str
    attempts: int
    error: str

    def to_dict(self) -> dict:
        """JSON-ready representation (for the ``--metrics`` report)."""
        return {
            "shard_id": self.shard_id,
            "site": self.site,
            "attempts": self.attempts,
            "error": self.error,
        }


class ShardFailureReport:
    """A mergeable list of :class:`ShardFailure` records.

    Merging concatenates in merge order, which keeps the report
    deterministic: the engine settles failures in shard order, so the
    report reads like the shard plan with the survivors removed.
    """

    def __init__(self, failures: list[ShardFailure] | None = None):
        self.failures: list[ShardFailure] = list(failures or [])

    def add(self, failure: ShardFailure) -> None:
        """Record one quarantined shard."""
        self.failures.append(failure)

    # -- the monoid --------------------------------------------------------

    def merge(self, other: "ShardFailureReport") -> "ShardFailureReport":
        """Fold *other*'s failures in (concatenation); returns self."""
        self.failures.extend(other.failures)
        return self

    def copy(self) -> "ShardFailureReport":
        """An independent report with the same records."""
        return ShardFailureReport(self.failures)

    def __iadd__(self, other: "ShardFailureReport") -> "ShardFailureReport":
        if not isinstance(other, ShardFailureReport):
            return NotImplemented
        return self.merge(other)

    def __add__(self, other: "ShardFailureReport") -> "ShardFailureReport":
        """Non-mutating merge; ``sum(parts, ShardFailureReport())``."""
        if not isinstance(other, ShardFailureReport):
            return NotImplemented
        return self.copy().merge(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardFailureReport):
            return NotImplemented
        return self.failures == other.failures

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self):
        return iter(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def shard_ids(self) -> list[str]:
        """The quarantined shard labels, in settle order."""
        return [failure.shard_id for failure in self.failures]

    def to_dict(self) -> list[dict]:
        """JSON-ready representation."""
        return [failure.to_dict() for failure in self.failures]

    def __repr__(self) -> str:
        return f"ShardFailureReport({self.shard_ids()!r})"
