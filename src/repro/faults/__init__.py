"""Deterministic fault injection and quarantine reporting.

The chaos side of the engine's resilience contract:

* :mod:`repro.faults.plan` — :class:`FaultPlan` schedules faults
  (transient, crash, corrupt, slow) at named sites, deterministically
  seeded like shard seeds; :func:`fault_point` is the zero-overhead
  hook the execution core calls at every site, and
  ``REPRO_FAULT_PLAN`` activates a rate-based plan from the
  environment (how CI runs the suite under injection).
* :mod:`repro.faults.report` — :class:`ShardFailure` /
  :class:`ShardFailureReport` record quarantined shards under the
  system-wide merge-monoid discipline.

The two invariants the chaos suite pins: with retries, engine output
under transient faults is byte-identical to the fault-free run at
every worker count; with quarantine, merged results equal the
fault-free results restricted to the surviving shards.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedCorruption,
    InjectedCrash,
    InjectedFault,
    active_fault_context,
    fault_point,
    parse_fault_plan,
    plan_from_env,
    use_fault_plan,
)
from repro.faults.report import ShardFailure, ShardFailureReport

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedCorruption",
    "InjectedCrash",
    "InjectedFault",
    "ShardFailure",
    "ShardFailureReport",
    "active_fault_context",
    "fault_point",
    "parse_fault_plan",
    "plan_from_env",
    "use_fault_plan",
]
