"""URL model matching the Blue Coat log decomposition.

The SG-9000 logs decompose each requested URL into separate fields:
``cs-uri-scheme``, ``cs-host``, ``cs-uri-port``, ``cs-uri-path``,
``cs-uri-query`` and ``cs-uri-ext``.  The :class:`URL` type mirrors that
decomposition so that workload generation, policy evaluation and log
serialization all share a single representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np

DEFAULT_PORTS = {"http": 80, "https": 443, "ftp": 21, "tcp": 0}


@dataclass(frozen=True, slots=True)
class URL:
    """A request URL in Blue Coat field decomposition.

    ``query`` includes no leading ``?`` (matching the logs, where the
    query field is logged without the separator but rendered with it in
    examples); :meth:`full` re-assembles a display URL.
    """

    host: str
    path: str = "/"
    query: str = ""
    scheme: str = "http"
    port: int | None = None
    ext: str = ""

    @property
    def effective_port(self) -> int:
        """The port the connection targets (explicit or scheme default)."""
        if self.port is not None:
            return self.port
        return DEFAULT_PORTS.get(self.scheme, 80)

    def matchable_text(self) -> str:
        """The text the Blue Coat string-matching engine scans.

        Per Section 5.4 of the paper, keyword filtering matches against
        the ``cs-host``, ``cs-uri-path`` and ``cs-uri-query`` fields.
        """
        return f"{self.host}{self.path}?{self.query}"

    def full(self) -> str:
        """Re-assemble a display URL."""
        port = f":{self.port}" if self.port is not None else ""
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{self.host}{port}{self.path}{query}"

    def with_query(self, query: str) -> "URL":
        """A copy of this URL with the query replaced."""
        return replace(self, query=query)

    def registered_domain(self) -> str:
        """Best-effort eTLD+1 used by the per-domain analyses.

        The paper aggregates hosts by registered domain (e.g. both
        ``www.facebook.com`` and ``ar-ar.facebook.com`` count towards
        ``facebook.com``).  We implement the common-case heuristic:
        the last two labels, or the last three when the TLD is a
        two-part country-code suffix such as ``co.uk`` or ``com.sy``.
        """
        return registered_domain(self.host)


# Two-part public suffixes that appear in the paper's domain tables
# (e.g. bbc.co.uk, mtn.com.sy, panet.co.il, alquds.co.uk).
_TWO_PART_SUFFIXES = frozenset(
    {
        "co.uk",
        "co.il",
        "com.sy",
        "net.sy",
        "org.sy",
        "gov.sy",
        "com.eg",
        "com.sa",
        "co.jp",
        "com.au",
        "org.uk",
        "ac.uk",
        "net.il",
        "org.il",
    }
)


def registered_domain(host: str) -> str:
    """Reduce *host* to its registered domain (eTLD+1 heuristic).

    Normalizes first (lowercase, trailing dot stripped) so the spelling
    variants ``WWW.Facebook.COM``, ``www.facebook.com`` and
    ``www.facebook.com.`` share one slot in the memo cache below rather
    than occupying three.
    """
    return _registered_domain(host.lower().rstrip("."))


def registered_domains(hosts) -> np.ndarray:
    """Array-in/array-out :func:`registered_domain` for batch columns.

    The scalar function's per-call shape — normalize, then an
    ``lru_cache`` lookup — costs a Python call chain per row even on a
    cache hit, which defeats vectorization in the analysis hot path.
    This fast path reduces the work to one scalar call per *distinct*
    host in the batch (hostnames repeat massively in log traffic) and
    broadcasts the results back with a fancy index.  Normalization
    (lowercase, trailing dot) is identical: each distinct spelling
    routes through :func:`registered_domain` itself.
    """
    hosts = np.asarray(hosts, dtype=object)
    if not len(hosts):
        return np.empty(0, dtype=object)
    spellings = hosts.tolist()
    mapping = {
        host: registered_domain(host) for host in dict.fromkeys(spellings)
    }
    return np.array(list(map(mapping.__getitem__, spellings)), dtype=object)


@lru_cache(maxsize=65536)
def _registered_domain(host: str) -> str:
    """The memoized core; *host* is already normalized.

    Memoized: hostnames repeat massively in log traffic, and the
    function sits in the routing and analysis hot paths.
    """
    if not host or host[0].isdigit() and is_ip_like(host):
        return host
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    if ".".join(labels[-2:]) in _TWO_PART_SUFFIXES:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])


def is_ip_like(host: str) -> bool:
    """Cheap check that *host* looks like a dotted-quad address."""
    parts = host.split(".")
    return len(parts) == 4 and all(part.isdigit() for part in parts)


def extension_of(path: str) -> str:
    """Derive the ``cs-uri-ext`` field from a path.

    Matches Blue Coat behaviour: the extension is the suffix after the
    final dot of the final path segment, empty when the segment has no
    dot or the path ends with a slash.
    """
    segment = path.rsplit("/", 1)[-1]
    if "." not in segment:
        return ""
    return segment.rsplit(".", 1)[-1]


def parse_url(text: str) -> URL:
    """Parse a display URL into Blue Coat decomposition.

    Only the subset of URL syntax that appears in proxy logs is
    supported (no userinfo, no fragments — proxies never see fragments).
    """
    scheme = "http"
    rest = text
    if "://" in text:
        scheme, _, rest = text.partition("://")
        scheme = scheme.lower()
    rest, _, query = rest.partition("?")
    hostport, slash, path = rest.partition("/")
    path = slash + path if slash else "/"
    port: int | None = None
    if ":" in hostport:
        host, _, port_text = hostport.partition(":")
        if not port_text.isdigit():
            raise ValueError(f"invalid port in URL: {text!r}")
        port = int(port_text)
    else:
        host = hostport
    if not host:
        raise ValueError(f"URL has no host: {text!r}")
    return URL(
        host=host.lower(),
        path=path,
        query=query,
        scheme=scheme,
        port=port,
        ext=extension_of(path),
    )
