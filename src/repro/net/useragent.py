"""Catalog of user-agent strings circa mid-2011.

The ``cs-user-agent`` field matters to two analyses:

* the D_user study identifies users by the (hashed c-ip, cs-user-agent)
  pair (Section 4 of the paper, following Yen et al.);
* the paper notes that some "users" are actually software agents
  retrying a censored endpoint (e.g. the Skype updater hammering
  ``skype.com``).

The catalog therefore distinguishes interactive browsers from
background/updater agents.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class UserAgent:
    """A user-agent string plus classification flags."""

    string: str
    family: str
    interactive: bool = True


BROWSERS: tuple[UserAgent, ...] = (
    UserAgent(
        "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/534.30 (KHTML, like Gecko)"
        " Chrome/12.0.742.122 Safari/534.30",
        "chrome",
    ),
    UserAgent(
        "Mozilla/5.0 (Windows NT 5.1; rv:5.0.1) Gecko/20100101 Firefox/5.0.1",
        "firefox",
    ),
    UserAgent(
        "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 5.1; Trident/4.0)",
        "msie",
    ),
    UserAgent(
        "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 6.0; SLCC1)",
        "msie",
    ),
    UserAgent(
        "Mozilla/5.0 (Windows NT 6.1; rv:2.0.1) Gecko/20100101 Firefox/4.0.1",
        "firefox",
    ),
    UserAgent(
        "Opera/9.80 (Windows NT 5.1; U; en) Presto/2.8.131 Version/11.11",
        "opera",
    ),
    UserAgent(
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_6_8) AppleWebKit/534.30"
        " (KHTML, like Gecko) Chrome/12.0.742.112 Safari/534.30",
        "chrome",
    ),
)

SOFTWARE_AGENTS: tuple[UserAgent, ...] = (
    UserAgent("Skype WISPr", "skype-updater", interactive=False),
    UserAgent("Windows-Update-Agent", "windows-update", interactive=False),
    UserAgent("Microsoft BITS/7.5", "bits", interactive=False),
    UserAgent("MSN Explorer/9.0 (MSN 8.0; TmstmpExt)", "msn", interactive=False),
    UserAgent("GoogleToolbar 7.1.2011.0512b;winxp;en", "google-toolbar", interactive=False),
    UserAgent("Java/1.6.0_26", "java", interactive=False),
)

# BitTorrent clients send their own user agents on announce requests.
BITTORRENT_AGENTS: tuple[UserAgent, ...] = (
    UserAgent("uTorrent/2210(25130)", "utorrent", interactive=False),
    UserAgent("Azureus 4.6.0.4;Windows XP;Java 1.6.0_26", "azureus", interactive=False),
    UserAgent("BitTorrent/7.2.1", "bittorrent", interactive=False),
)

ALL_AGENTS: tuple[UserAgent, ...] = BROWSERS + SOFTWARE_AGENTS + BITTORRENT_AGENTS

_BY_STRING = {agent.string: agent for agent in ALL_AGENTS}


def classify_agent(string: str) -> UserAgent | None:
    """Look up a catalog agent by its exact string, if known."""
    return _BY_STRING.get(string)
