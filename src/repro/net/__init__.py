"""Networking primitives shared by the simulator and the analyses.

Submodules
----------
``repro.net.url``
    Minimal URL model matching the Blue Coat log decomposition
    (scheme, host, port, path, query, extension).
``repro.net.ip``
    IPv4 address and CIDR arithmetic on plain integers, vectorizable
    with numpy.
``repro.net.ports``
    Well-known port registry used for the Fig. 1 port analysis.
``repro.net.useragent``
    Catalog of user-agent strings circa 2011 used to synthesize the
    ``cs-user-agent`` field.
"""

from repro.net.ip import (
    IPv4Network,
    format_ipv4,
    ip_in_network,
    parse_ipv4,
    parse_network,
)
from repro.net.url import URL, parse_url

__all__ = [
    "URL",
    "parse_url",
    "IPv4Network",
    "parse_ipv4",
    "format_ipv4",
    "parse_network",
    "ip_in_network",
]
