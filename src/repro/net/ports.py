"""Well-known port registry.

Used by the Fig. 1 analysis (destination-port distribution of allowed
and censored traffic) to label ports, and by the workload generator to
pick realistic destination ports.
"""

from __future__ import annotations

# Port -> service label, restricted to ports that show up in the logs.
WELL_KNOWN_PORTS: dict[int, str] = {
    21: "ftp",
    25: "smtp",
    53: "dns",
    80: "http",
    110: "pop3",
    143: "imap",
    443: "https",
    554: "rtsp",
    843: "flash-policy",
    1080: "socks",
    1194: "openvpn",
    1863: "msnp",
    1935: "rtmp",
    3128: "http-proxy",
    5050: "yahoo-messenger",
    5190: "aim/icq",
    5222: "xmpp",
    6667: "irc",
    6881: "bittorrent",
    8000: "http-alt",
    8080: "http-alt",
    8443: "https-alt",
    9001: "tor-or",
    9030: "tor-dir",
    9050: "tor-socks",
}

TOR_OR_PORTS = (9001, 443, 9090, 8080)
TOR_DIR_PORTS = (9030, 80)


def service_name(port: int) -> str:
    """Human label for *port* (``"other"`` when unregistered)."""
    return WELL_KNOWN_PORTS.get(port, "other")
