"""IPv4 address and network (CIDR) arithmetic.

Addresses are represented as plain ``int`` (0 .. 2**32 - 1) so that bulk
operations can be vectorized with numpy, which matters when geolocating
millions of ``cs-host`` values (Table 11 of the paper).

The standard library ``ipaddress`` module provides equivalent scalar
functionality, but its object-per-address model is too slow for the log
volumes the analyses process, and building on raw integers keeps the
:mod:`repro.geoip` interval database trivial.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_IPV4_RE = re.compile(
    r"^(25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)"
    r"\.(25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)"
    r"\.(25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)"
    r"\.(25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)$"
)

MAX_IPV4 = 2**32 - 1


def is_ipv4(text: str) -> bool:
    """Return True if *text* is a dotted-quad IPv4 address.

    Used to build the paper's D_IPv4 subset: requests whose ``cs-host``
    field is an IP address rather than a domain name.
    """
    return bool(_IPV4_RE.match(text))


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad string into an integer address.

    Raises ``ValueError`` on malformed input.
    """
    match = _IPV4_RE.match(text)
    if not match:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    a, b, c, d = (int(part) for part in match.groups())
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ipv4(addr: int) -> str:
    """Format an integer address as a dotted quad."""
    if not 0 <= addr <= MAX_IPV4:
        raise ValueError(f"address out of range: {addr}")
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


@dataclass(frozen=True, slots=True)
class IPv4Network:
    """A CIDR block, stored as (network address, prefix length).

    The network address is canonicalized: host bits are zeroed at
    construction, so ``IPv4Network(parse_ipv4("1.2.3.4"), 24)`` equals
    ``parse_network("1.2.3.0/24")``.
    """

    network: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix}")
        if not 0 <= self.network <= MAX_IPV4:
            raise ValueError(f"network address out of range: {self.network}")
        object.__setattr__(self, "network", self.network & self.netmask)

    @property
    def netmask(self) -> int:
        """The block's netmask as an integer."""
        if self.prefix == 0:
            return 0
        return (MAX_IPV4 << (32 - self.prefix)) & MAX_IPV4

    @property
    def first(self) -> int:
        """Lowest address in the block."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the block."""
        return self.network | (MAX_IPV4 >> self.prefix if self.prefix else MAX_IPV4)

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    def __contains__(self, addr: int) -> bool:
        return (addr & self.netmask) == self.network

    def contains_network(self, other: "IPv4Network") -> bool:
        """Return True if *other* is fully contained in this block."""
        return other.prefix >= self.prefix and (other.network in self)

    def subnets(self, new_prefix: int) -> list["IPv4Network"]:
        """Split the block into subnets of *new_prefix* length."""
        if new_prefix < self.prefix:
            raise ValueError("new prefix must not be shorter than current")
        step = 1 << (32 - new_prefix)
        return [
            IPv4Network(self.network + i * step, new_prefix)
            for i in range(1 << (new_prefix - self.prefix))
        ]

    def nth(self, index: int) -> int:
        """Return the *index*-th address of the block (0-based)."""
        if not 0 <= index < self.size:
            raise IndexError(f"host index {index} out of range for /{self.prefix}")
        return self.network + index

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.prefix}"


def parse_network(text: str) -> IPv4Network:
    """Parse CIDR notation, e.g. ``"84.229.0.0/16"``."""
    address, sep, prefix = text.partition("/")
    if not sep:
        raise ValueError(f"missing prefix length in {text!r}")
    return IPv4Network(parse_ipv4(address), int(prefix))


def ip_in_network(addr: int, network: IPv4Network) -> bool:
    """Convenience wrapper mirroring ``addr in network``."""
    return addr in network
