"""The pre-policy request abstraction.

The workload generator emits :class:`Request` objects; the proxy fleet
turns each into one :class:`~repro.logmodel.record.LogRecord`.  The
``component`` tag is simulation ground truth (which traffic model
produced the request) and never reaches the logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.url import extension_of


@dataclass(slots=True)
class Request:
    """One client request as it arrives at the filtering proxy."""

    epoch: int
    c_ip: str
    user_agent: str
    host: str
    path: str = "/"
    query: str = ""
    scheme: str = "http"
    port: int = 80
    method: str = "GET"
    content_type: str = "text/html"
    referer: str = "-"
    component: str = "browsing"

    @property
    def ext(self) -> str:
        """The ``cs-uri-ext`` field derived from the path."""
        if self.method == "CONNECT":
            return ""
        return extension_of(self.path)


def connect_request(
    epoch: int,
    c_ip: str,
    user_agent: str,
    host: str,
    port: int,
    component: str,
) -> Request:
    """An HTTPS/tunnel CONNECT request.

    Per Section 4 of the paper, path/query/ext are absent from HTTPS
    log entries — only the host and port are visible to the proxy.
    """
    return Request(
        epoch=epoch,
        c_ip=c_ip,
        user_agent=user_agent,
        host=host,
        path="",
        query="",
        scheme="tcp",
        port=port,
        method="CONNECT",
        content_type="-",
        component=component,
    )
