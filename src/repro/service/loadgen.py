"""An asyncio load generator for the ingestion service.

``repro loadgen`` drives ``POST /ingest`` at a configurable request
rate with deterministic synthetic ELFF payloads, reports live
per-interval metrics while it runs, and finishes with a summary that
includes the server's own view (a final ``/stats`` scrape) — enough to
see, from one terminal, that the queue depth stays bounded at the
offered rate.

The rate limiter is a *shared schedule*: request *i* is due at
``t0 + i / rate``, and every worker sleeps until its claimed request's
due time.  Unlike per-worker pacing, the offered rate is then
independent of the worker count, and a slow response delays only the
workers stuck on it — the schedule itself never drifts.  A ``429``
answer is honored by sleeping the server's ``Retry-After`` — doubled
for each consecutive throttle of the same payload, capped at
``retry_after_cap`` — and retrying the same payload, so throttling
sheds load without losing records and a persistently busy server is
not hammered at a fixed cadence.  Each deferred re-send is counted
separately (``loadgen.deferred``) from the throttle responses that
caused it, so the live report distinguishes "server said slow down"
from "client actually re-sent later".

Live metrics ride the same delta-snapshot machinery as the server's
``/stats``: the generator's private registry is marked every report
interval and the printed rates are true per-window deltas.
"""

from __future__ import annotations

import asyncio
import csv
import io
import json

from repro.logmodel.classify import NO_EXCEPTION
from repro.logmodel.record import LogRecord
from repro.metrics import MetricsRegistry
from repro.timeline import day_epoch

#: First synthetic log-day (inside the paper's capture period).
BASE_DAY = "2011-08-03"

#: Deterministic host rotation for synthetic traffic; the middle entry
#: is served censored so analyses over generated load are non-trivial.
_HOSTS = (
    ("www.google.com", NO_EXCEPTION, "OBSERVED"),
    ("www.facebook.com", "policy_denied", "DENIED"),
    ("www.wikipedia.org", NO_EXCEPTION, "OBSERVED"),
    ("www.skype.com", "policy_redirect", "DENIED"),
    ("www.yahoo.com", "dns_unresolved_hostname", "DENIED"),
)


def build_payload(index: int, lines: int, days: int) -> str:
    """Request *index*'s body: *lines* synthetic ELFF records.

    A pure function of its arguments, so a run's total traffic is
    reproducible and a tail-ingest of the concatenated payloads equals
    a batch analyze over them.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    base = index * lines
    for offset in range(lines):
        serial = base + offset
        host, exception, filter_result = _HOSTS[serial % len(_HOSTS)]
        epoch = (
            day_epoch(BASE_DAY)
            + (serial % days) * 86_400
            + (serial * 7) % 86_400
        )
        record = LogRecord(
            epoch=epoch,
            c_ip=f"10.0.{(serial >> 8) % 256}.{serial % 256}",
            s_ip="82.137.200.42",
            cs_host=host,
            cs_uri_path=f"/page/{serial % 97}",
            sc_filter_result=filter_result,
            x_exception_id=exception,
        )
        writer.writerow(record.to_row())
    return out.getvalue()


def backoff_delay(retry_after: float, streak: int, cap: float) -> float:
    """The sleep before re-sending a throttled payload.

    *streak* counts consecutive ``429`` answers for the same payload
    (0 on the first).  The server's ``Retry-After`` is the base; each
    repeat doubles it, capped at *cap* so a persistently saturated
    server bounds the worst-case defer instead of stalling the
    schedule indefinitely.
    """
    return min(cap, max(0.0, retry_after) * (2.0 ** streak))


class LoadGenerator:
    """Drive ``/ingest`` at *rate* requests/second until *total*
    requests have been accepted."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        rate: float,
        total: int,
        lines_per_request: int = 20,
        days: int = 3,
        workers: int = 4,
        report_interval: float = 1.0,
        retry_after_cap: float = 5.0,
        quiet: bool = False,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if total < 1:
            raise ValueError(f"total must be >= 1, got {total}")
        if retry_after_cap <= 0:
            raise ValueError(
                f"retry_after_cap must be > 0, got {retry_after_cap}"
            )
        self.host = host
        self.port = port
        self.rate = rate
        self.total = total
        self.lines_per_request = lines_per_request
        self.days = days
        self.workers = max(1, min(workers, total))
        self.report_interval = report_interval
        self.retry_after_cap = retry_after_cap
        self.quiet = quiet
        self.registry = MetricsRegistry()
        self._next_index = 0

    # -- the raw HTTP client ----------------------------------------------

    async def _request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: str = "",
    ) -> tuple[int, dict[str, str], dict]:
        """One keep-alive request; returns (status, headers, JSON)."""
        encoded = body.encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + encoded)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        status = int(status_line.split(" ")[1])
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = (
            json.loads(await reader.readexactly(length)) if length else {}
        )
        return status, headers, payload

    async def _worker(self, started_at: float) -> None:
        """Claim schedule slots and send until the schedule runs out."""
        loop = asyncio.get_running_loop()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            while True:
                index = self._next_index
                if index >= self.total:
                    return
                self._next_index = index + 1
                due = started_at + index / self.rate
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                body = build_payload(
                    index, self.lines_per_request, self.days
                )
                streak = 0
                while True:
                    status, headers, payload = await self._request(
                        reader, writer, "POST", "/ingest", body
                    )
                    self.registry.inc("loadgen.sent")
                    if status == 202:
                        self.registry.inc("loadgen.accepted")
                        self.registry.inc(
                            "loadgen.lines", self.lines_per_request
                        )
                        depth = payload.get("queue_depth", 0)
                        self.registry.set_gauge(
                            "loadgen.queue_depth", depth
                        )
                        break
                    if status == 429:
                        self.registry.inc("loadgen.throttled")
                        self.registry.inc("loadgen.deferred")
                        await asyncio.sleep(backoff_delay(
                            float(headers.get("retry-after", "1")),
                            streak,
                            self.retry_after_cap,
                        ))
                        streak += 1
                        continue
                    self.registry.inc("loadgen.errors")
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _reporter(self) -> None:
        """Print per-interval rates off delta snapshots."""
        mark = self.registry.snapshot()
        while True:
            await asyncio.sleep(self.report_interval)
            delta = self.registry.delta_since(mark)
            mark = self.registry.snapshot()
            sent = self.registry.counters["loadgen.sent"]
            print(
                f"loadgen: {sent}/{self.total} requests"
                f" | {delta.rate('loadgen.sent'):.1f} req/s"
                f" | {delta.rate('loadgen.lines'):.0f} lines/s"
                f" | throttled {delta.count('loadgen.throttled')}"
                f" | deferred {delta.count('loadgen.deferred')}",
                flush=True,
            )

    async def run(self) -> dict:
        """Drive the full schedule; returns the run summary (client
        counters plus a final server ``/stats`` scrape)."""
        loop = asyncio.get_running_loop()
        started_at = loop.time()
        workers = [
            asyncio.create_task(self._worker(started_at))
            for _ in range(self.workers)
        ]
        reporter = None
        if not self.quiet:
            reporter = asyncio.create_task(self._reporter())
        try:
            await asyncio.gather(*workers)
        finally:
            if reporter is not None:
                reporter.cancel()
                try:
                    await reporter
                except asyncio.CancelledError:
                    pass
        elapsed = loop.time() - started_at
        server_stats: dict = {}
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            try:
                _, _, server_stats = await self._request(
                    reader, writer, "GET", "/stats"
                )
            finally:
                writer.close()
                await writer.wait_closed()
        except OSError:
            pass
        counters = self.registry.counters
        return {
            "requests": counters["loadgen.sent"],
            "accepted": counters["loadgen.accepted"],
            "throttled": counters["loadgen.throttled"],
            "deferred": counters["loadgen.deferred"],
            "errors": counters["loadgen.errors"],
            "lines": counters["loadgen.lines"],
            "elapsed_seconds": elapsed,
            "achieved_rps": (
                counters["loadgen.accepted"] / elapsed if elapsed else 0.0
            ),
            "server": server_stats,
        }
