"""Worker-status HTTP surface for distributed runs.

``repro run-distributed --status-port N`` starts this tiny read-only
server next to the coordinator so an operator (or a CI drill) can
watch a campaign the same way ``/healthz`` watches ``repro serve``:

* ``GET /healthz`` — coordinator liveness plus queue totals (planned /
  completed / leased / pending shard counts and the lease counters);
* ``GET /workers`` — every worker's latest self-published status file
  (state, shards held, executed counts, heartbeat cadence).

Everything it serves is derived from the shared queue directory — the
server holds no state of its own and never writes, so it can also be
pointed at a directory worked by processes on other machines.  It runs
a stdlib :class:`ThreadingHTTPServer` on a daemon thread: the asyncio
ingest service and this server solve different problems (hot ingest
path vs. a coordinator sidecar) and stay independent.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.dispatch.queue import WorkQueue
from repro.runstate import JOURNAL_NAME, MANIFEST_NAME, read_journal


def queue_status(directory: Path | str) -> dict:
    """One snapshot of a distributed run's progress.

    Safe against every in-flight state: a directory with no manifest
    yet reports zero planned shards rather than failing.
    """
    directory = Path(directory)
    queue = WorkQueue(directory, worker_id="status-reader")
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        planned = list(manifest.get("shards") or [])
    except (OSError, json.JSONDecodeError):
        planned = []
    completed = [
        label for label in planned
        if label in read_journal(directory / JOURNAL_NAME)
    ]
    now = time.time()
    leased, expired = [], []
    for label in planned:
        if label in completed:
            continue
        lease = queue.read_lease(label)
        if lease is None:
            continue
        (expired if lease.expired(now) else leased).append({
            "shard_id": label,
            "worker": lease.worker,
            "attempt": lease.attempt,
            "deadline_in": round(lease.deadline - now, 3),
        })
    return {
        "directory": str(directory),
        "shards": {
            "planned": len(planned),
            "completed": len(completed),
            "leased": len(leased),
            "expired": len(expired),
            "pending": len(planned) - len(completed) - len(leased)
            - len(expired),
        },
        "leases": leased + expired,
        "counters": queue.event_counters(),
    }


class _StatusHandler(BaseHTTPRequestHandler):
    server_version = "repro-dispatch/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        directory = self.server.directory  # type: ignore[attr-defined]
        if self.path in ("/", "/healthz"):
            status = queue_status(directory)
            status["status"] = "ok"
            status["uptime_seconds"] = round(
                time.time() - self.server.started_at, 3  # type: ignore[attr-defined]
            )
            self._reply(200, status)
        elif self.path == "/workers":
            queue = WorkQueue(directory, worker_id="status-reader")
            self._reply(200, {"workers": queue.read_worker_statuses()})
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def _reply(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # quiet by default
        pass


class WorkerStatusServer:
    """The coordinator's status sidecar (daemon-threaded)."""

    def __init__(
        self, directory: Path | str, host: str = "127.0.0.1", port: int = 0
    ):
        self.directory = Path(directory)
        self._server = ThreadingHTTPServer((host, port), _StatusHandler)
        self._server.directory = self.directory  # type: ignore[attr-defined]
        self._server.started_at = time.time()  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-status",
            daemon=True,
        )

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "WorkerStatusServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
