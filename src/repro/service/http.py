"""The live ingestion service: HTTP + file tailing over asyncio.

``repro serve`` runs one process that accepts ELFF log lines two ways
— POSTed over HTTP and tailed from growing log files — and folds them
through the batch pipeline's sink contract into a sliding-window
:class:`~repro.service.window.WindowStore`.  Everything is stdlib: the
HTTP layer is ``asyncio.start_server`` plus a small hand-written
HTTP/1.1 parser (keep-alive, Content-Length framing), which is all
four endpoints need.

Backpressure is explicit and bounded: POSTed payloads land on a
bounded :class:`asyncio.Queue` and a single fold task drains it.  When
the fold lags and the queue fills, ``/ingest`` answers ``429`` with a
``Retry-After`` header instead of buffering without limit — the
client's load generator treats that as a signal to ease off, and the
queue depth stays bounded at any offered rate.

Endpoints:

* ``POST /ingest`` — body is raw ELFF lines (directives allowed);
  ``202`` with the queue depth, or ``429`` when the queue is full;
* ``GET  /healthz`` — liveness plus queue/fold gauges;
* ``GET  /stats`` — totals since start *and* a delta window since the
  previous ``/stats`` call (per-second rates via
  :meth:`~repro.metrics.MetricsRegistry.delta_since`);
* ``GET  /analysis?window=N`` — the merged analysis over the newest N
  retained log-days (all retained days when omitted).
"""

from __future__ import annotations

import asyncio
import io
import json
import signal
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.logmodel.elff import ReadStats, read_log
from repro.metrics import MetricsRegistry, MetricsSnapshot, use_registry
from repro.service.tailer import LogTailer
from repro.service.window import WindowStore

#: Largest accepted ``/ingest`` body; larger requests get ``413``.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024


class IngestService:
    """One ingestion process: HTTP server, tailers, fold loop, store.

    The service owns a private :class:`MetricsRegistry` (activated
    around every fold so the reader's ``elff.read.*`` counters land in
    it) and a :class:`WindowStore` that both ingest paths fold into —
    the HTTP path and the tail path produce the same per-day state the
    batch engine would, because they run the same sink fold.
    """

    def __init__(
        self,
        store: WindowStore | None = None,
        *,
        queue_size: int = 64,
        tail_paths: tuple[Path | str, ...] = (),
        poll_interval: float = 0.25,
        retry_after: float = 1.0,
        regime: str = "syria",
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.store = store if store is not None else WindowStore()
        #: Which regime's logs this service ingests — a label surfaced
        #: on ``/healthz`` (classification is regime-neutral, so the
        #: fold paths need no switching).
        self.regime = regime
        self.registry = MetricsRegistry()
        self.read_stats = ReadStats()
        self.tailers = [LogTailer(path) for path in tail_paths]
        self.poll_interval = poll_interval
        self.retry_after = retry_after
        self.queue: asyncio.Queue[str] = asyncio.Queue(maxsize=queue_size)
        self.max_queue_depth = 0
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._stats_mark: MetricsSnapshot | None = None
        self._started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the server (``port=0`` picks a free port) and launch
        the fold and tail loops."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._started_at = asyncio.get_running_loop().time()
        self._stats_mark = self.registry.snapshot()
        self._tasks.append(asyncio.create_task(self._fold_loop()))
        if self.tailers:
            self._tasks.append(asyncio.create_task(self._tail_loop()))

    async def drain(self) -> None:
        """Wait until every queued payload has been folded."""
        await self.queue.join()

    async def stop(self) -> None:
        """Drain the queue, then tear down tasks and the server."""
        await self.drain()
        for tailer in self.tailers:
            self._poll_tailer(tailer)
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        for_seconds: float | None = None,
    ) -> None:
        """Run until SIGINT/SIGTERM (or *for_seconds*), then shut down
        cleanly.  Prints the bound address so callers that asked for
        ``port=0`` — tests, the CI smoke job — can discover it."""
        await self.start(host, port)
        print(
            f"repro serve: listening on http://{self.host}:{self.port}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        done = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, done.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        try:
            if for_seconds is None:
                await done.wait()
            else:
                try:
                    await asyncio.wait_for(done.wait(), for_seconds)
                except asyncio.TimeoutError:
                    pass
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:
                    pass
            await self.stop()
            print("repro serve: shut down cleanly", flush=True)

    # -- folding -----------------------------------------------------------

    def _fold_payload(self, payload: str) -> int:
        """Fold one POSTed payload's records into the window store."""
        before = self.store.total + self.store.evicted_records
        with use_registry(self.registry):
            for record in read_log(
                io.StringIO(payload), lenient=True, stats=self.read_stats
            ):
                self.store.add(record)
        folded = self.store.total + self.store.evicted_records - before
        self.registry.inc("service.fold.records", folded)
        return folded

    async def _fold_loop(self) -> None:
        """The single consumer of the ingest queue."""
        while True:
            payload = await self.queue.get()
            try:
                self._fold_payload(payload)
            finally:
                self.queue.task_done()

    def _poll_tailer(self, tailer: LogTailer) -> int:
        """One poll of one tailed file, folded into the store."""
        with use_registry(self.registry):
            records = tailer.poll()
            for record in records:
                self.store.add(record)
        if records:
            self.registry.inc("service.tail.records", len(records))
        return len(records)

    async def _tail_loop(self) -> None:
        """Poll every tailed file on a fixed interval."""
        while True:
            for tailer in self.tailers:
                self._poll_tailer(tailer)
            await asyncio.sleep(self.poll_interval)

    # -- the HTTP layer ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra = self._route(method, target, body)
                keep_alive = headers.get("connection", "") != "close"
                writer.write(
                    _encode_response(status, payload, extra, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; None on clean EOF between
        requests.  Raises ValueError on malformed input (connection is
        dropped — a framing error leaves no safe way to answer)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        except asyncio.LimitOverrunError as error:
            raise ValueError("request head too large") from error
        if len(head) > _MAX_HEAD_BYTES:
            raise ValueError("request head too large")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0"))
        if length > MAX_BODY_BYTES:
            raise ValueError(f"body of {length} bytes exceeds the cap")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        """Dispatch one request; returns (status, JSON payload, extra
        headers)."""
        url = urlsplit(target)
        if url.path == "/ingest":
            if method != "POST":
                return 405, {"error": "POST only"}, {}
            return self._handle_ingest(body)
        if method != "GET":
            return 405, {"error": "GET only"}, {}
        if url.path == "/healthz":
            return self._handle_healthz()
        if url.path == "/stats":
            return self._handle_stats()
        if url.path == "/analysis":
            return self._handle_analysis(parse_qs(url.query))
        return 404, {"error": f"no such endpoint: {url.path}"}, {}

    def _handle_ingest(self, body: bytes) -> tuple[int, dict, dict]:
        self.registry.inc("service.ingest.requests")
        try:
            payload = body.decode("utf-8")
        except UnicodeDecodeError:
            self.registry.inc("service.ingest.rejected")
            return 400, {"error": "body is not UTF-8"}, {}
        try:
            self.queue.put_nowait(payload)
        except asyncio.QueueFull:
            self.registry.inc("service.ingest.throttled")
            return (
                429,
                {"error": "ingest queue full", "queue_depth": self.queue.qsize()},
                {"Retry-After": f"{self.retry_after:g}"},
            )
        depth = self.queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.registry.inc("service.ingest.accepted")
        return 202, {"accepted": True, "queue_depth": depth}, {}

    def _handle_healthz(self) -> tuple[int, dict, dict]:
        loop = asyncio.get_running_loop()
        uptime = (
            loop.time() - self._started_at if self._started_at is not None
            else 0.0
        )
        return (
            200,
            {
                "status": "ok",
                "regime": self.regime,
                "uptime_seconds": uptime,
                "queue_depth": self.queue.qsize(),
                "max_queue_depth": self.max_queue_depth,
                "records": len(self.store),
                "retained_days": len(self.store.days),
            },
            {},
        )

    def _handle_stats(self) -> tuple[int, dict, dict]:
        """Totals since start plus the delta window since the last
        ``/stats`` call — each scrape advances the mark, so polling
        ``/stats`` every N seconds yields true per-window rates."""
        delta = self.registry.delta_since(self._stats_mark)
        self._stats_mark = self.registry.snapshot()
        return (
            200,
            {
                "records": len(self.store),
                "evicted_days": self.store.evicted_days,
                "evicted_records": self.store.evicted_records,
                "queue_depth": self.queue.qsize(),
                "max_queue_depth": self.max_queue_depth,
                "read": {
                    "records": self.read_stats.records,
                    "skipped": self.read_stats.skipped,
                    "corrupted": self.read_stats.corrupted,
                    "incomplete_tail": self.read_stats.incomplete_tail,
                },
                "totals": {
                    name: self.registry.counters[name]
                    for name in sorted(self.registry.counters)
                },
                "window": delta.to_dict(),
            },
            {},
        )

    def _handle_analysis(self, query: dict) -> tuple[int, dict, dict]:
        window = None
        if "window" in query:
            try:
                window = int(query["window"][0])
                if window < 1:
                    raise ValueError
            except ValueError:
                return 400, {"error": "window must be a positive integer"}, {}
        analysis = self.store.window(window)
        breakdown = analysis.breakdown()
        return (
            200,
            {
                "window_days": window,
                "retained_days": self.store.retained_days(),
                "breakdown": {
                    "total": breakdown.total,
                    "allowed": breakdown.allowed,
                    "censored": breakdown.censored,
                    "errors": breakdown.errors,
                    "proxied": breakdown.proxied,
                    "allowed_pct": breakdown.allowed_pct,
                    "censored_pct": breakdown.censored_pct,
                },
                "top_allowed": analysis.top_allowed(10),
                "top_censored": analysis.top_censored(10),
                "day_volumes": {
                    str(day): analysis.day_volumes[day]
                    for day in sorted(analysis.day_volumes)
                },
            },
            {},
        )


_STATUS_LINES = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    413: "413 Content Too Large",
    429: "429 Too Many Requests",
}


def _encode_response(
    status: int, payload: dict, extra: dict[str, str], keep_alive: bool
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {_STATUS_LINES[status]}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    headers.extend(f"{name}: {value}" for name, value in extra.items())
    return "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body
