"""Follow a growing ELFF log file across polls.

:class:`LogTailer` is the stateful wrapper around :func:`repro.
logmodel.elff.tail_records`: it remembers the resume offset between
polls, skips polls when the file has not grown, and resets to the
start when the file shrinks (rotation / truncation).  Each poll
returns only the records that became complete since the last one — a
torn final line is left for the next poll, so the record stream across
polls is exactly the record stream of the final file.
"""

from __future__ import annotations

from pathlib import Path

from repro.logmodel.elff import ReadStats, tail_records
from repro.logmodel.record import LogRecord


class LogTailer:
    """Incremental reader over one growing ELFF file.

    The tailer tracks two sizes: the *raw* on-disk size (to cheaply
    detect growth and rotation via ``stat``) and the resume *offset*
    into the decoded stream (uncompressed bytes for ``.gz``).  Read
    bookkeeping accumulates into :attr:`stats` across polls.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.offset = 0
        self.stats = ReadStats()
        self.polls = 0
        self.rotations = 0
        self._raw_size = -1

    def poll(self) -> list[LogRecord]:
        """Read the records that became complete since the last poll.

        Returns an empty list when the file is missing (not created
        yet, or mid-rotation) or has not changed size since the last
        poll.  A shrunk file is treated as rotated: the offset resets
        and the new content is read from the top.
        """
        try:
            raw_size = self.path.stat().st_size
        except FileNotFoundError:
            return []
        if raw_size < self._raw_size:
            self.rotations += 1
            self.offset = 0
        elif raw_size == self._raw_size:
            return []
        self._raw_size = raw_size
        self.polls += 1
        records, self.offset = tail_records(
            self.path, offset=self.offset, stats=self.stats
        )
        return records
