"""Live ELFF ingestion: tail growing logs, accept lines over HTTP,
serve sliding-window analyses.

The batch engine answers "what happened in these files"; this package
answers the same questions *while the files are still growing*.  It is
a thin asyncio shell over the batch machinery — every record, whether
POSTed or tailed, is folded through the same pipeline sink contract
into per-day :class:`~repro.analysis.streaming.StreamingAnalysis`
accumulators, so live answers and batch answers agree byte-for-byte on
the same input:

* :class:`WindowStore` — per-day accumulators with sliding-window
  retention (evicting a day = dropping its accumulator; a window's
  analysis = a fresh merge of retained days);
* :class:`LogTailer` — incremental polls over a growing log via the
  torn-tail-safe :func:`~repro.logmodel.elff.tail_records`;
* :class:`IngestService` — the ``repro serve`` process: stdlib asyncio
  HTTP with bounded-queue backpressure (429 + Retry-After);
* :class:`LoadGenerator` — the ``repro loadgen`` client: shared-
  schedule rate limiting with live delta-snapshot metrics;
* :class:`WorkerStatusServer` — the ``repro run-distributed`` status
  sidecar: ``/healthz``-style progress over a shared queue directory.
"""

from repro.service.http import IngestService
from repro.service.loadgen import LoadGenerator, backoff_delay, build_payload
from repro.service.status import WorkerStatusServer, queue_status
from repro.service.tailer import LogTailer
from repro.service.window import WindowStore

__all__ = [
    "IngestService",
    "LoadGenerator",
    "LogTailer",
    "WindowStore",
    "WorkerStatusServer",
    "backoff_delay",
    "build_payload",
    "queue_status",
]
