"""Sliding-window incremental analysis state.

The batch engine reduces one :class:`~repro.analysis.streaming.
StreamingAnalysis` per shard; the live service needs the same numbers
*per day*, over a window that slides as new log-days arrive.  The
monoid merge laws make that essentially free: a :class:`WindowStore`
keeps one accumulator per log-day, evicting a day is dropping its
accumulator, and any window's analysis is a fresh merge of the
retained day accumulators — no re-scan of records, ever.

:class:`WindowStore` is itself a pipeline :class:`~repro.pipeline.
Sink` (``add``/``add_batch``/``fresh``/``merge``), so the service's
fold path is the same contract every batch sink satisfies, and with
``retention_days=None`` it obeys the full monoid laws the engine's
reduce relies on.  With retention, the weaker *eviction-restriction*
law holds instead — the windowed analysis equals a fresh batch analyze
over exactly the retained days' records — which the property tests
pin.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.streaming import StreamingAnalysis
from repro.frame.batch import RecordBatch
from repro.logmodel.record import LogRecord
from repro.pipeline.core import Sink

#: Seconds per log-day; day ids are ``epoch // DAY_SECONDS``, matching
#: :attr:`StreamingAnalysis.day_volumes` keys.
DAY_SECONDS = 86_400


class WindowStore(Sink):
    """Per-day :class:`StreamingAnalysis` accumulators with windowing.

    ``retention_days=None`` retains every day seen (a true monoid
    sink).  With ``retention_days=N`` only the *newest* N distinct
    days survive: when a record opens day N+1, the oldest retained
    day's accumulator is dropped whole — and a record older than the
    retained window is folded and immediately evicted, never
    resurrecting a closed day.  Memory is bounded by N times the
    per-day distinct-domain footprint, independent of record count.
    """

    def __init__(self, retention_days: int | None = None) -> None:
        if retention_days is not None and retention_days < 1:
            raise ValueError(
                f"retention_days must be >= 1, got {retention_days}"
            )
        self.retention_days = retention_days
        self.days: dict[int, StreamingAnalysis] = {}
        self.evicted_days = 0
        self.evicted_records = 0

    # -- folding -----------------------------------------------------------

    def add(self, record: LogRecord) -> None:
        """Fold one record into its day's accumulator."""
        day = record.epoch // DAY_SECONDS
        acc = self.days.get(day)
        if acc is None:
            acc = self.days[day] = StreamingAnalysis()
        acc.add(record)
        if (
            self.retention_days is not None
            and len(self.days) > self.retention_days
        ):
            self._evict()

    def add_batch(self, batch: RecordBatch) -> None:
        """Fold one column batch, split by day — state-identical to
        adding its records one at a time."""
        if not len(batch):
            return
        days = batch.col("epoch") // DAY_SECONDS
        distinct = np.unique(days)
        for day in distinct.tolist():
            acc = self.days.get(day)
            if acc is None:
                acc = self.days[day] = StreamingAnalysis()
            acc.add_batch(
                batch if len(distinct) == 1 else batch.take(days == day)
            )
        if (
            self.retention_days is not None
            and len(self.days) > self.retention_days
        ):
            self._evict()

    def _evict(self) -> None:
        """Drop the oldest day accumulators beyond the retention."""
        for day in sorted(self.days)[: len(self.days) - self.retention_days]:
            dropped = self.days.pop(day)
            self.evicted_days += 1
            self.evicted_records += dropped.total

    # -- the sink contract -------------------------------------------------

    def fresh(self) -> "WindowStore":
        return WindowStore(self.retention_days)

    def merge(self, other: "WindowStore") -> "WindowStore":
        """Fold another store's retained days in (day-wise accumulator
        merges), then re-apply eviction; returns self."""
        for day, acc in other.days.items():
            mine = self.days.get(day)
            if mine is None:
                self.days[day] = acc.copy()
            else:
                mine.merge(acc)
        self.evicted_days += other.evicted_days
        self.evicted_records += other.evicted_records
        if (
            self.retention_days is not None
            and len(self.days) > self.retention_days
        ):
            self._evict()
        return self

    def __len__(self) -> int:
        """Records folded in, including records since evicted."""
        return self.total + self.evicted_records

    def _state(self) -> tuple:
        return (self.retention_days, self.days)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowStore):
            return NotImplemented
        return self._state() == other._state()

    # -- the windowed view -------------------------------------------------

    @property
    def total(self) -> int:
        """Records currently retained across all days."""
        return sum(acc.total for acc in self.days.values())

    def retained_days(self) -> list[int]:
        """Retained day ids, oldest first."""
        return sorted(self.days)

    def window(self, days: int | None = None) -> StreamingAnalysis:
        """The merged analysis over the newest *days* retained days
        (all of them when ``None``) — a fresh merge of the day
        accumulators, identical to a batch analyze over exactly those
        days' records (the eviction-restriction law)."""
        retained = self.retained_days()
        if days is not None:
            if days < 1:
                raise ValueError(f"window must be >= 1 day, got {days}")
            retained = retained[-days:]
        merged = StreamingAnalysis()
        for day in retained:
            merged.merge(self.days[day])
        return merged
