"""Reproduction of "Censorship in the Wild: Analyzing Internet Filtering in
Syria" (Chaabane et al., IMC 2014).

The package simulates the censorship ecosystem the paper measured — seven
Blue Coat SG-9000 filtering proxies deployed on the Syrian backbone — and
implements the paper's complete analysis pipeline on top of the simulated
logs.

High-level entry points:

``repro.datasets.build_scenario``
    Generate the four datasets the paper analyzes (D_full, D_sample,
    D_user, D_denied) from a synthetic-traffic scenario.

``repro.analysis``
    One module per paper section; each analysis consumes a
    :class:`repro.frame.LogFrame` of log records and returns a plain
    result object that mirrors a table or figure from the paper.

``repro.reporting``
    Renders analysis results as the ASCII tables/series printed by the
    examples and benchmark harness.
"""

from repro.version import __version__

__all__ = ["__version__"]
