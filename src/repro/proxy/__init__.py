"""Blue Coat SG-9000 proxy simulation.

:class:`~repro.proxy.sg9000.SG9000` models one appliance: policy
evaluation, cache behaviour, error injection and log emission.
:class:`~repro.proxy.fleet.ProxyFleet` models the deployment the paper
studies: seven appliances behind the STE backbone with load balancing
and domain-based redirection.
"""

from repro.proxy.fleet import ProxyFleet, RoutingPolicy
from repro.proxy.sg9000 import SG9000, CategoryNaming

__all__ = ["SG9000", "CategoryNaming", "ProxyFleet", "RoutingPolicy"]
