"""The seven-proxy deployment.

The paper's Section 5.2 shows load fairly balanced across proxies,
with evidence of *domain-based redirection*: more than 95 % of
metacafe.com requests are processed by SG-48, SG-44 alone censors Tor,
and the proxies fall into similarity clusters (Table 6).  The fleet
model reproduces this: uniform balancing by default, with per-domain
routing overrides, per-proxy category naming, and day-dependent
availability (July days exist only for SG-42).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.logmodel.classify import NO_EXCEPTION
from repro.logmodel.fields import PROXY_NAMES
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry
from repro.net.url import registered_domain
from repro.policy.cache import CacheModel
from repro.policy.errors import (
    ErrorModel,
    TOR_ERROR_RATES,
    USER_SLICE_ERROR_RATES,
)
from repro.policy.syria import SyrianPolicy
from repro.proxy.sg9000 import SG9000, CategoryNaming
from repro.timeline import SG42_ONLY_DAYS, USER_SLICE_DAYS, day_span
from repro.traffic import Request

#: Proxies that log the default category as ``none`` (the paper finds
#: this configuration on SG-43 and SG-48 only).
_NONE_LABEL_PROXIES = frozenset({"SG-43", "SG-48"})

#: Default domain-based routing overrides: registered domain ->
#: list of (proxy, probability); residual probability is balanced
#: uniformly.  Calibrated to reproduce Table 6's similarity structure.
DEFAULT_ROUTING_OVERRIDES: dict[str, tuple[tuple[str, float], ...]] = {
    "metacafe.com": (("SG-48", 0.95), ("SG-45", 0.04)),
    "skype.com": (("SG-48", 0.60), ("SG-45", 0.10)),
    "trafficholder.com": (("SG-47", 0.90),),
    "conduitapps.com": (("SG-47", 0.85),),
    "hotsptshld.com": (("SG-47", 0.85),),
    "live.com": (("SG-42", 0.40),),
}


class RoutingPolicy:
    """Chooses the appliance for a request."""

    def __init__(
        self,
        overrides: dict[str, tuple[tuple[str, float], ...]] | None = None,
        proxies: Iterable[str] = PROXY_NAMES,
    ):
        self.proxies = tuple(proxies)
        self.overrides = dict(
            DEFAULT_ROUTING_OVERRIDES if overrides is None else overrides
        )
        for domain, targets in self.overrides.items():
            total = sum(share for _, share in targets)
            if total > 1.0 + 1e-9:
                raise ValueError(f"override shares for {domain} exceed 1: {total}")

    def route(
        self,
        request: Request,
        active: tuple[str, ...],
        rng: np.random.Generator,
    ) -> str:
        """Pick the proxy that handles *request*."""
        if len(active) == 1:
            return active[0]
        domain = registered_domain(request.host)
        targets = self.overrides.get(domain)
        if targets:
            draw = rng.random()
            cumulative = 0.0
            for proxy, share in targets:
                cumulative += share
                if draw < cumulative and proxy in active:
                    return proxy
        return active[int(rng.integers(len(active)))]


class ProxyFleet:
    """The deployed fleet: routing + seven configured appliances."""

    def __init__(
        self,
        policy: SyrianPolicy,
        routing: RoutingPolicy | None = None,
        cache: CacheModel | None = None,
        error_model: ErrorModel | None = None,
    ):
        self.policy = policy
        self.routing = routing or RoutingPolicy()
        cache = cache or CacheModel()
        base_errors = error_model or ErrorModel()
        component_errors = {
            "tor-onion": ErrorModel(TOR_ERROR_RATES),
            "tor-http": ErrorModel(TOR_ERROR_RATES),
        }
        self.proxies: dict[str, SG9000] = {}
        for name in PROXY_NAMES:
            naming = (
                CategoryNaming("none", "Blocked sites")
                if name in _NONE_LABEL_PROXIES
                else CategoryNaming("unavailable", "Blocked sites; unavailable")
            )
            self.proxies[name] = SG9000(
                name,
                policy.engine_for(name),
                cache=cache,
                error_model=base_errors,
                component_error_models=component_errors,
                naming=naming,
            )
        user_slice_errors = ErrorModel(USER_SLICE_ERROR_RATES)
        self._user_slice_proxies = {
            name: SG9000(
                name,
                proxy.engine,
                cache=proxy.cache,
                error_model=user_slice_errors,
                component_error_models=proxy.component_error_models,
                naming=proxy.naming,
            )
            for name, proxy in self.proxies.items()
        }
        self._sg42_spans = [day_span(day) for day in SG42_ONLY_DAYS]
        self._user_spans = [day_span(day) for day in USER_SLICE_DAYS]

    def active_proxies(self, epoch: int) -> tuple[str, ...]:
        """Proxies whose logs exist at *epoch* (July = SG-42 only)."""
        for start, end in self._sg42_spans:
            if start <= epoch < end:
                return ("SG-42",)
        return PROXY_NAMES

    def _in_user_slice(self, epoch: int) -> bool:
        return any(start <= epoch < end for start, end in self._user_spans)

    def process(self, request: Request, rng: np.random.Generator) -> LogRecord:
        """Route and filter one request."""
        active = self.active_proxies(request.epoch)
        name = self.routing.route(request, active, rng)
        if self._in_user_slice(request.epoch) and request.component not in (
            "tor-onion",
            "tor-http",
        ):
            # The July 22-23 slice shows a distinct error mix
            # (Table 3's D_user column); use the variant appliance with
            # the user-slice error model.
            record = self._user_slice_proxies[name].process(request, rng)
        else:
            record = self.proxies[name].process(request, rng)
        registry = current_registry()
        if registry is not None:
            registry.inc("fleet.requests")
            registry.inc("fleet.verdict." + record.sc_filter_result)
            if record.x_exception_id != NO_EXCEPTION:
                registry.inc("fleet.exception." + record.x_exception_id)
        return record

    def process_all(
        self, requests: Iterable[Request], rng: np.random.Generator
    ) -> list[LogRecord]:
        """Filter a request stream."""
        return [self.process(request, rng) for request in requests]
