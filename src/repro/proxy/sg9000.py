"""One SG-9000 appliance."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logmodel.fields import proxy_ip
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry
from repro.policy.cache import CacheModel
from repro.policy.engine import PolicyEngine
from repro.policy.errors import ErrorModel
from repro.policy.rules import Action, RequestView
from repro.traffic import Request


@dataclass(frozen=True, slots=True)
class CategoryNaming:
    """Per-proxy category labels.

    The paper observes two configurations: five proxies log the default
    category as ``unavailable`` and the custom one as
    ``Blocked sites; unavailable``; SG-43 and SG-48 log ``none`` and
    ``Blocked sites`` instead (Sections 4 and 5.2).
    """

    default_label: str = "unavailable"
    custom_label: str = "Blocked sites; unavailable"

    def label(self, custom_category: str | None) -> str:
        return self.custom_label if custom_category else self.default_label


# Status code per exception id (SGOS conventions).
_STATUS_BY_EXCEPTION = {
    "policy_denied": 403,
    "policy_redirect": 302,
    "tcp_error": 503,
    "internal_error": 500,
    "invalid_request": 400,
    "unsupported_protocol": 501,
    "dns_unresolved_hostname": 503,
    "dns_server_failure": 503,
    "unsupported_encoding": 415,
    "invalid_response": 502,
}

_ALLOWED_STATUSES = (200, 304, 302, 404)
_ALLOWED_STATUS_WEIGHTS = (0.82, 0.11, 0.04, 0.03)
_ALLOWED_STATUS_CUMULATIVE = np.cumsum(_ALLOWED_STATUS_WEIGHTS)


class SG9000:
    """One filtering appliance.

    ``process`` turns a :class:`~repro.traffic.Request` into the log
    record the appliance would emit: policy first, then (for allowed
    requests) error injection, then the cache layer, then log-field
    synthesis.
    """

    def __init__(
        self,
        name: str,
        engine: PolicyEngine,
        cache: CacheModel | None = None,
        error_model: ErrorModel | None = None,
        component_error_models: dict[str, ErrorModel] | None = None,
        naming: CategoryNaming | None = None,
    ):
        if not name.startswith("SG-"):
            raise ValueError(f"proxy names look like SG-42; got {name!r}")
        self.name = name
        self.s_ip = proxy_ip(int(name.split("-")[1]))
        self.engine = engine
        self.cache = cache or CacheModel()
        self.error_model = error_model or ErrorModel()
        self.component_error_models = dict(component_error_models or {})
        self.naming = naming or CategoryNaming()

    def _error_model_for(self, request: Request) -> ErrorModel:
        return self.component_error_models.get(request.component, self.error_model)

    def process(self, request: Request, rng: np.random.Generator) -> LogRecord:
        """Filter one request and emit its log record."""
        registry = current_registry()
        if registry is not None:
            registry.inc("proxy.requests." + self.name)
        view = RequestView(
            host=request.host,
            path=request.path,
            query=request.query,
            port=request.port,
            scheme=request.scheme,
            method=request.method,
            epoch=request.epoch,
            user_agent=request.user_agent,
        )
        verdict = self.engine.evaluate(view)

        exception = verdict.exception_id
        if verdict.action is Action.ALLOW:
            error = self._error_model_for(request).sample(rng)
            if error is not None:
                exception = error

        cached = False
        if self.cache.cacheable(request.method, request.content_type):
            cache_key = f"{request.host}{request.path}?{request.query}"
            cached = self.cache.lookup(cache_key, rng)
        if cached and exception != "-" and self.cache.exception_cleared(rng):
            # The paper's PROXIED inconsistency: a cached, censored
            # request whose log line carries no exception id.
            exception = "-"

        return self._emit(request, verdict.action, exception, verdict.category, cached, rng)

    def _emit(
        self,
        request: Request,
        action: Action,
        exception: str,
        custom_category: str | None,
        cached: bool,
        rng: np.random.Generator,
    ) -> LogRecord:
        if exception == "-":
            status_index = int(np.searchsorted(
                _ALLOWED_STATUS_CUMULATIVE, rng.random(), side="right"
            ))
            status = _ALLOWED_STATUSES[min(status_index, 3)]
            sc_bytes = int(rng.lognormal(8.0, 1.3))
            supplier = request.host
        else:
            status = _STATUS_BY_EXCEPTION.get(exception, 503)
            sc_bytes = int(rng.integers(0, 700))
            supplier = "-"

        if cached:
            filter_result = "PROXIED"
            s_action = "TCP_HIT"
        elif exception == "-":
            filter_result = "OBSERVED"
            s_action = "TCP_TUNNELED" if request.method == "CONNECT" else "TCP_NC_MISS"
        else:
            filter_result = "DENIED"
            if action is Action.REDIRECT and exception == "policy_redirect":
                s_action = "TCP_POLICY_REDIRECT"
            elif exception in ("policy_denied",):
                s_action = "TCP_DENIED"
            else:
                s_action = "TCP_ERR_MISS"

        return LogRecord(
            epoch=request.epoch,
            c_ip=request.c_ip,
            s_ip=self.s_ip,
            cs_host=request.host,
            cs_uri_scheme=request.scheme,
            cs_uri_port=request.port,
            cs_uri_path=request.path if request.method != "CONNECT" else "-",
            cs_uri_query=request.query if request.method != "CONNECT" else "-",
            cs_uri_ext=request.ext,
            cs_method=request.method,
            cs_user_agent=request.user_agent,
            cs_referer=request.referer,
            sc_filter_result=filter_result,
            x_exception_id=exception,
            cs_categories=self.naming.label(custom_category),
            sc_status=status,
            s_action=s_action,
            rs_content_type=request.content_type if exception == "-" else "-",
            time_taken=int(rng.lognormal(4.5, 1.0)),
            sc_bytes=sc_bytes,
            cs_bytes=int(rng.integers(200, 900)),
            s_supplier_name=supplier,
        )
