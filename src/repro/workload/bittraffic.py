"""BitTorrent announce traffic (Section 7.3 of the paper).

Clients announce to HTTP trackers; the announce URL carries the
content's info hash and the client's peer id (the field the paper uses
to count unique users).  Announces to ``tracker-proxy.furk.net`` are
censored by the ``proxy`` keyword; everything else is allowed.
"""

from __future__ import annotations

import numpy as np

from repro.bittorrent import TorrentCatalog
from repro.bittorrent.catalog import make_peer_id
from repro.net.useragent import BITTORRENT_AGENTS
from repro.traffic import Request
from repro.workload.diurnal import TrafficCalendar
from repro.workload.population import Client, ClientPopulation

#: Fraction of the population running a BitTorrent client; the paper
#: sees 38,575 peer ids over 9 days.
BT_USER_SHARE = 0.10

_EVENTS = ("started", "", "", "", "stopped", "completed")


class BitTorrentComponent:
    """Generates tracker announce requests."""

    def __init__(
        self,
        catalog: TorrentCatalog,
        population: ClientPopulation,
        calendar: TrafficCalendar,
        seed: int = 6881,
    ):
        self.catalog = catalog
        self.calendar = calendar
        rng = np.random.default_rng(seed)
        pool_size = max(5, int(len(population) * BT_USER_SHARE))
        indices = rng.choice(len(population), size=pool_size, replace=False)
        self.users: list[Client] = [population.clients[int(i)] for i in indices]
        self._peer_ids = [make_peer_id(int(i)) for i in indices]
        self._agents = [
            BITTORRENT_AGENTS[int(rng.integers(len(BITTORRENT_AGENTS)))].string
            for _ in indices
        ]

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        requests: list[Request] = []
        for i in range(count):
            user_index = int(rng.integers(len(self.users)))
            client = self.users[user_index]
            content = self.catalog.sample_content(rng)
            tracker_host, tracker_port = self.catalog.sample_tracker(rng)
            event = _EVENTS[int(rng.integers(len(_EVENTS)))]
            query = (
                f"info_hash={content.info_hash}"
                f"&peer_id={self._peer_ids[user_index]}"
                f"&port={6881 + user_index % 9}"
                f"&uploaded=0&downloaded=0&left={int(rng.integers(10**6, 10**9))}"
                "&compact=1"
            )
            if event:
                query += f"&event={event}"
            requests.append(Request(
                epoch=int(epochs[i]),
                c_ip=client.c_ip,
                user_agent=self._agents[user_index],
                host=tracker_host,
                port=tracker_port,
                path="/announce",
                query=query,
                content_type="text/plain",
                component="bittorrent",
            ))
        return requests
