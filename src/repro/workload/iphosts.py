"""Raw-IP destination traffic (Tables 11 and 12 of the paper).

A slice of the traffic addresses hosts by IPv4 address rather than by
name — CDN fetches, P2P signalling, anonymizer endpoints, streaming
servers.  The component reproduces the paper's country mix, the
Israeli-subnet structure of Table 12 (blocked blocks with many client
-visible addresses vs. the mostly-allowed 212.150.0.0/16), and the
anonymizer endpoints abroad whose addresses the policy blocks
individually (the censored NL/GB/RU addresses of Table 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.ip import format_ipv4, parse_network
from repro.traffic import Request, connect_request
from repro.workload.diurnal import TrafficCalendar
from repro.workload.population import ClientPopulation


@dataclass(frozen=True, slots=True)
class AddressPool:
    """A set of destination addresses with a traffic share."""

    name: str
    addresses: tuple[str, ...]
    share: float
    connect_share: float  # fraction of requests that are CONNECT/443
    blocked: bool  # ground truth: does the policy block this pool?


def _addresses_from(block: str, count: int, rng: np.random.Generator) -> tuple[str, ...]:
    net = parse_network(block)
    offsets = rng.choice(net.size - 2, size=min(count, net.size - 2), replace=False) + 1
    return tuple(format_ipv4(net.nth(int(o))) for o in offsets)


def build_address_pools(seed: int = 1211) -> list[AddressPool]:
    """The destination-address population.

    Shares are fractions of the IP-host component volume, calibrated
    from Table 11 (allowed+censored per country) and Table 12 (per
    -subnet request and address counts).
    """
    rng = np.random.default_rng(seed)
    pools: list[AddressPool] = []

    # --- Israel (Table 12) ------------------------------------------------
    # Wholesale-blocked subnets, with the paper's distinct-address counts.
    pools.append(AddressPool(
        "il-84.229.0.0/16", _addresses_from("84.229.0.0/16", 198, rng),
        share=0.000135, connect_share=0.3, blocked=True))
    pools.append(AddressPool(
        "il-46.120.0.0/15", _addresses_from("46.120.0.0/15", 11, rng),
        share=0.000130, connect_share=0.3, blocked=True))
    pools.append(AddressPool(
        "il-89.138.0.0/15", _addresses_from("89.138.0.0/15", 148, rng),
        share=0.000115, connect_share=0.3, blocked=True))
    pools.append(AddressPool(
        "il-212.235.64.0/19", _addresses_from("212.235.64.0/19", 5, rng),
        share=0.000112, connect_share=0.3, blocked=True))
    # Individually blocked addresses inside the otherwise-allowed /16
    # (the policy lists them in BLOCKED_IL_ADDRESSES).
    pools.append(AddressPool(
        "il-212.150-blocked",
        ("212.150.13.20", "212.150.77.45", "212.150.201.8"),
        share=0.0000444, connect_share=0.5, blocked=True))
    pools.append(AddressPool(
        "il-212.150-clean", _addresses_from("212.150.0.0/16", 12, rng),
        share=0.00060, connect_share=0.1, blocked=False))
    pools.append(AddressPool(
        "il-other", _addresses_from("79.176.0.0/13", 220, rng),
        share=0.0062, connect_share=0.05, blocked=False))

    # --- anonymizer endpoints abroad (censored rows of Table 11) ----------
    pools.append(AddressPool(
        "nl-anonymizers", _addresses_from("77.160.0.0/13", 12, rng),
        share=0.00115, connect_share=0.8, blocked=True))
    pools.append(AddressPool(
        "gb-anonymizers", _addresses_from("212.58.224.0/19", 5, rng),
        share=0.000235, connect_share=0.8, blocked=True))
    pools.append(AddressPool(
        "ru-anonymizers", _addresses_from("95.24.0.0/13", 4, rng),
        share=0.0000905, connect_share=0.8, blocked=True))
    pools.append(AddressPool(
        "kw-anonymizers", _addresses_from("168.187.0.0/16", 1, rng),
        share=0.0000015, connect_share=0.8, blocked=True))
    pools.append(AddressPool(
        "sg-anonymizers", _addresses_from("203.116.0.0/16", 1, rng),
        share=0.0000018, connect_share=0.8, blocked=True))
    pools.append(AddressPool(
        "bg-anonymizers", _addresses_from("87.120.0.0/14", 1, rng),
        share=0.0000013, connect_share=0.8, blocked=True))

    # --- clean hosting traffic ---------------------------------------------
    pools.append(AddressPool(
        "nl-hosting", _addresses_from("145.0.0.0/11", 300, rng),
        share=0.668, connect_share=0.08, blocked=False))
    pools.append(AddressPool(
        "gb-hosting", _addresses_from("81.128.0.0/12", 120, rng),
        share=0.0889, connect_share=0.08, blocked=False))
    pools.append(AddressPool(
        "ru-hosting", _addresses_from("178.64.0.0/11", 60, rng),
        share=0.01407, connect_share=0.05, blocked=False))
    pools.append(AddressPool(
        "kw-hosting", _addresses_from("168.187.0.0/16", 8, rng),
        share=0.0000732, connect_share=0.05, blocked=False))
    pools.append(AddressPool(
        "sg-hosting", _addresses_from("203.116.0.0/16", 10, rng),
        share=0.00176, connect_share=0.05, blocked=False))
    pools.append(AddressPool(
        "bg-hosting", _addresses_from("87.120.0.0/14", 10, rng),
        share=0.00176, connect_share=0.05, blocked=False))
    pools.append(AddressPool(
        "us-hosting", _addresses_from("204.0.0.0/8", 250, rng),
        share=0.179, connect_share=0.06, blocked=False))
    pools.append(AddressPool(
        "de-hosting", _addresses_from("91.32.0.0/12", 50, rng),
        share=0.0152, connect_share=0.05, blocked=False))
    pools.append(AddressPool(
        "fr-hosting", _addresses_from("90.64.0.0/12", 40, rng),
        share=0.0088, connect_share=0.05, blocked=False))

    total = sum(pool.share for pool in pools)
    return [
        AddressPool(p.name, p.addresses, p.share / total, p.connect_share, p.blocked)
        for p in pools
    ]


def blocked_endpoint_addresses(pools: list[AddressPool]) -> tuple[str, ...]:
    """Addresses the policy must block individually (non-IL pools).

    The Israeli subnets are blocked by the subnet rules; everything
    else blocked-tagged here is an individually-listed address.
    """
    addresses: list[str] = []
    for pool in pools:
        if pool.blocked and not pool.name.startswith("il-84") and not (
            pool.name.startswith(("il-46", "il-89", "il-212.235"))
        ):
            addresses.extend(pool.addresses)
    return tuple(addresses)


class IPHostsComponent:
    """Generates the raw-IP destination traffic."""

    def __init__(
        self,
        population: ClientPopulation,
        calendar: TrafficCalendar,
        pools: list[AddressPool] | None = None,
        seed: int = 1211,
    ):
        self.pools = pools if pools is not None else build_address_pools(seed)
        self.population = population
        self.calendar = calendar
        self._pool_weights = np.array([pool.share for pool in self.pools])
        # Zipf-ish weights over addresses inside each pool: a few
        # endpoints absorb most of the traffic.
        self._address_weights: list[np.ndarray] = []
        for pool in self.pools:
            ranks = np.arange(1, len(pool.addresses) + 1, dtype=float)
            weights = 1.0 / ranks**0.8
            self._address_weights.append(weights / weights.sum())

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        pool_indices = rng.choice(len(self.pools), size=count, p=self._pool_weights)
        clients = self.population.sample_many(count, rng)
        requests: list[Request] = []
        for i in range(count):
            pool = self.pools[int(pool_indices[i])]
            weights = self._address_weights[int(pool_indices[i])]
            address = pool.addresses[int(rng.choice(len(weights), p=weights))]
            client = clients[i]
            epoch = int(epochs[i])
            if rng.random() < pool.connect_share:
                requests.append(connect_request(
                    epoch, client.c_ip, client.user_agent, address, 443,
                    component="iphosts"))
            else:
                requests.append(Request(
                    epoch=epoch,
                    c_ip=client.c_ip,
                    user_agent=client.user_agent,
                    host=address,
                    path="/" if rng.random() < 0.7 else f"/data/{int(rng.integers(10**6))}",
                    component="iphosts",
                ))
        return requests
