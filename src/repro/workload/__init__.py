"""Synthetic Syrian traffic generation.

The generator stands in for the Syrian user population whose traffic
the leaked logs captured.  It is organized as independent *components*
— web browsing, raw-IP destinations, Tor, BitTorrent, Facebook page
visits, Google-cache fetches — each emitting
:class:`~repro.traffic.Request` streams whose volume, timing and URL
mix are calibrated to the paper's findings.

Entry point: :class:`~repro.workload.generator.TrafficGenerator`.
"""

from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig
from repro.workload.generator import TrafficGenerator

__all__ = ["ScenarioConfig", "DEFAULT_BOOSTS", "TrafficGenerator"]
