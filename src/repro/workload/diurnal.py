"""Diurnal traffic shape and calendar events.

Reproduces the temporal structure of Fig. 5 and Fig. 6: a morning ramp
with an afternoon/night lull, two sudden outage dips, the Friday
slowdown (handled at the day level by the config), and the Aug 3
morning surge of Instant-Messaging demand that drives the censorship
peaks the paper analyzes in Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timeline import PROTEST_DAY, day_epoch

#: Base hourly traffic weights (relative), Syrian local pattern:
#: morning ramp, mild afternoon lull, evening activity, night trough.
HOURLY_WEIGHTS: tuple[float, ...] = (
    0.40, 0.30, 0.25, 0.20, 0.25, 0.50,  # 00-05
    0.80, 1.20, 1.60, 1.80, 1.90, 1.80,  # 06-11
    1.60, 1.40, 1.20, 1.10, 1.00, 1.00,  # 12-17
    1.10, 1.20, 1.30, 1.20, 0.90, 0.60,  # 18-23
)

BINS_PER_DAY = 288  # 5-minute bins, the granularity of Fig. 5/6
BIN_SECONDS = 300


@dataclass(frozen=True, slots=True)
class DipEvent:
    """A sudden traffic drop (the outages visible in Fig. 5)."""

    day: str
    start_hour: float
    end_hour: float
    multiplier: float


@dataclass(frozen=True, slots=True)
class SurgeEvent:
    """A demand surge limited to IM-tagged sites (Section 5.1).

    ``intensity`` is the surge volume relative to the whole bin's
    base traffic — 0.012 roughly doubles the censored share, moving
    RCV from ~1 % to ~2 % as in Fig. 6.
    """

    day: str
    start_hour: float
    end_hour: float
    intensity: float


#: Default events: dips on Aug 3/4, IM surges around the Aug 3 protests
#: (early morning, the 8:00–9:30 peak, and an evening flare).
DEFAULT_DIPS: tuple[DipEvent, ...] = (
    DipEvent(PROTEST_DAY, 13.0, 13.4, 0.20),
    DipEvent("2011-08-04", 15.0, 15.5, 0.25),
)

DEFAULT_SURGES: tuple[SurgeEvent, ...] = (
    SurgeEvent(PROTEST_DAY, 4.8, 6.0, 0.006),
    SurgeEvent(PROTEST_DAY, 8.0, 9.5, 0.012),
    SurgeEvent(PROTEST_DAY, 21.8, 23.0, 0.008),
)


class TrafficCalendar:
    """Per-day 5-minute-bin intensity with events applied."""

    def __init__(
        self,
        dips: tuple[DipEvent, ...] = DEFAULT_DIPS,
        surges: tuple[SurgeEvent, ...] = DEFAULT_SURGES,
    ):
        self.dips = dips
        self.surges = surges
        base = np.repeat(np.array(HOURLY_WEIGHTS, dtype=float), BINS_PER_DAY // 24)
        self._base_bins = base / base.sum()

    def bin_weights(self, day: str) -> np.ndarray:
        """Normalized per-bin sampling weights for a day."""
        weights = self._base_bins.copy()
        for dip in self.dips:
            if dip.day != day:
                continue
            start = int(dip.start_hour * BINS_PER_DAY / 24)
            end = int(dip.end_hour * BINS_PER_DAY / 24)
            weights[start:end] *= dip.multiplier
        return weights / weights.sum()

    def sample_epochs(
        self, day: str, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample request timestamps for a day, following the curve."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        weights = self.bin_weights(day)
        per_bin = rng.multinomial(count, weights)
        base = day_epoch(day)
        epochs = np.empty(count, dtype=np.int64)
        cursor = 0
        for bin_index, bin_count in enumerate(per_bin):
            if bin_count == 0:
                continue
            start = base + bin_index * BIN_SECONDS
            epochs[cursor: cursor + bin_count] = start + rng.integers(
                0, BIN_SECONDS, size=bin_count
            )
            cursor += bin_count
        return epochs

    def surge_requests(self, day: str, day_total: int) -> list[tuple["SurgeEvent", int]]:
        """Extra IM-surge request counts for a day.

        ``day_total`` is the day's base request volume; each surge adds
        ``intensity × (window share of day) × day_total`` requests.
        """
        extras = []
        for surge in self.surges:
            if surge.day != day:
                continue
            # Scale relative to the *window's* base traffic, which the
            # diurnal curve concentrates in the morning.
            weights = self.bin_weights(day)
            start = int(surge.start_hour * BINS_PER_DAY / 24)
            end = int(surge.end_hour * BINS_PER_DAY / 24)
            window_traffic = float(weights[start:end].sum()) * day_total
            count = int(round(surge.intensity * window_traffic))
            extras.append((surge, count))
        return extras

    def sample_window_epochs(
        self, surge: SurgeEvent, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Timestamps uniformly within a surge window."""
        base = day_epoch(surge.day)
        start = base + int(surge.start_hour * 3600)
        end = base + int(surge.end_hour * 3600)
        return rng.integers(start, end, size=count).astype(np.int64)
