"""Tor traffic component (Section 7.1 of the paper).

Two traffic classes: Tor_http — directory-protocol requests to relays'
Dir ports (73 % of the paper's Tor traffic) — and Tor_onion — OR
connections carrying circuits (CONNECT to a relay's OR port).  Volume
peaks on the Aug 3 protest day (Fig. 8a).
"""

from __future__ import annotations

import numpy as np

from repro.timeline import PROTEST_DAY
from repro.tornet import TorDirectory
from repro.traffic import Request, connect_request
from repro.workload.diurnal import TrafficCalendar
from repro.workload.population import Client, ClientPopulation

#: Share of Tor requests that are directory (HTTP) signaling.
TOR_HTTP_SHARE = 0.73

#: Extra volume multiplier per day (relative to the component rate).
TOR_DAY_MULTIPLIERS: dict[str, float] = {
    PROTEST_DAY: 1.9,
    "2011-08-04": 1.3,
}

#: Fraction of the population that uses Tor at all.
TOR_USER_SHARE = 0.004


class TorComponent:
    """Generates Tor directory and OR-port traffic."""

    def __init__(
        self,
        directory: TorDirectory,
        population: ClientPopulation,
        calendar: TrafficCalendar,
        seed: int = 443,
    ):
        self.directory = directory
        self.calendar = calendar
        self._dir_relays = [r for r in directory.relays if r.dir_port != 0]
        rng = np.random.default_rng(seed)
        pool_size = max(3, int(len(population) * TOR_USER_SHARE))
        indices = rng.choice(len(population), size=pool_size, replace=False)
        self.users: list[Client] = [population.clients[int(i)] for i in indices]

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        count = int(round(count * TOR_DAY_MULTIPLIERS.get(day, 1.0)))
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        requests: list[Request] = []
        for i in range(count):
            client = self.users[int(rng.integers(len(self.users)))]
            epoch = int(epochs[i])
            if rng.random() < TOR_HTTP_SHARE and self._dir_relays:
                # Directory fetch: plain HTTP to the relay's Dir port.
                relay = self._dir_relays[int(rng.integers(len(self._dir_relays)))]
                requests.append(Request(
                    epoch=epoch,
                    c_ip=client.c_ip,
                    user_agent="-",  # the tor daemon sends no UA
                    host=relay.ip,
                    port=relay.dir_port,
                    path=self.directory.sample_directory_path(rng),
                    content_type="application/octet-stream",
                    component="tor-http",
                ))
            else:
                # Circuit traffic: CONNECT to the relay's OR port.
                relay = self.directory.sample_relay(rng)
                requests.append(connect_request(
                    epoch, client.c_ip, "-", relay.ip, relay.or_port,
                    component="tor-onion",
                ))
        return requests
