"""The top-level traffic generator.

Assembles the components over a :class:`~repro.workload.config.
ScenarioConfig` and yields the merged, time-ordered request stream per
day.  Also exposes the ground-truth artifacts the policy builder and
the analyses need: the site universe, the Tor directory, the torrent
catalog, and the blocked anonymizer endpoint addresses.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.bittorrent import TorrentCatalog
from repro.catalog.domains import SiteSpec, build_domain_universe
from repro.tornet import TorDirectory
from repro.traffic import Request
from repro.workload.bittraffic import BitTorrentComponent
from repro.workload.browsing import BrowsingComponent
from repro.workload.config import ScenarioConfig
from repro.workload.diurnal import TrafficCalendar
from repro.workload.fbpages import RedirectTargetsComponent
from repro.workload.gcache import GoogleCacheComponent
from repro.workload.iphosts import (
    IPHostsComponent,
    blocked_endpoint_addresses,
    build_address_pools,
)
from repro.workload.population import ClientPopulation, population_size_for
from repro.workload.tortraffic import TorComponent


class TrafficGenerator:
    """Generates the full multi-day request stream for a scenario."""

    def __init__(self, config: ScenarioConfig, sites: list[SiteSpec] | None = None):
        self.config = config
        self.sites = sites if sites is not None else build_domain_universe(
            tail_count=config.tail_domains,
            suspected_count=config.suspected_domains,
        )
        self.population = ClientPopulation(
            population_size_for(config.total_requests, config.user_scale),
            seed=config.seed + 1,
        )
        self.calendar = TrafficCalendar()
        self.tor_directory = TorDirectory(config.tor_relays, seed=config.seed + 2)
        self.torrent_catalog = TorrentCatalog(
            config.torrent_contents, seed=config.seed + 3
        )
        self.address_pools = build_address_pools(seed=config.seed + 4)

        self._browsing = BrowsingComponent(self.sites, self.population, self.calendar)
        self._iphosts = IPHostsComponent(
            self.population, self.calendar, pools=self.address_pools
        )
        self._tor = TorComponent(
            self.tor_directory, self.population, self.calendar,
            seed=config.seed + 5,
        )
        self._bittorrent = BitTorrentComponent(
            self.torrent_catalog, self.population, self.calendar,
            seed=config.seed + 6,
        )
        self._redirects = RedirectTargetsComponent(self.population, self.calendar)
        self._gcache = GoogleCacheComponent(
            self.sites, self.population, self.calendar
        )

    def blocked_anonymizer_addresses(self) -> tuple[str, ...]:
        """Endpoint addresses the policy must block individually."""
        return blocked_endpoint_addresses(self.address_pools)

    def generate_day(self, day: str, rng: np.random.Generator) -> list[Request]:
        """The complete request stream of one day, time-ordered."""
        weight = self.config.day_weights()[day]
        requests: list[Request] = []
        requests.extend(
            self._browsing.generate(day, self.config.browsing_requests(weight), rng)
        )
        requests.extend(
            self._iphosts.generate(
                day, self.config.component_requests("iphosts", weight), rng
            )
        )
        requests.extend(
            self._tor.generate(day, self.config.component_requests("tor", weight), rng)
        )
        requests.extend(
            self._bittorrent.generate(
                day, self.config.component_requests("bittorrent", weight), rng
            )
        )
        requests.extend(
            self._redirects.generate(
                day, self.config.component_requests("redirect-targets", weight), rng
            )
        )
        requests.extend(
            self._gcache.generate(
                day, self.config.component_requests("google-cache", weight), rng
            )
        )
        requests.sort(key=lambda request: request.epoch)
        return requests

    def generate(self) -> Iterator[tuple[str, list[Request]]]:
        """Yield ``(day, requests)`` for every configured day."""
        rng = np.random.default_rng(self.config.seed)
        for day in self.config.days:
            yield day, self.generate_day(day, rng)
