"""Workload fidelity measurement.

Quantifies how closely a generated request stream matches its
configuration: per-component volumes against the configured shares,
per-day volumes against the day multipliers, and the share of traffic
carried by the named (paper-calibrated) sites.  The calibration tests
assert on these numbers, and they are useful when tuning the catalogs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.traffic import Request
from repro.workload.config import COMPONENT_SHARES, ScenarioConfig


@dataclass(frozen=True)
class FidelityReport:
    """Measured vs expected traffic composition."""

    total_requests: int
    component_shares: dict[str, float]  # measured fractions
    expected_component_shares: dict[str, float]  # boosted config targets
    day_shares: dict[str, float]
    expected_day_shares: dict[str, float]

    def component_error(self, component: str) -> float:
        """Relative error of one component's volume."""
        expected = self.expected_component_shares.get(component, 0.0)
        measured = self.component_shares.get(component, 0.0)
        if expected == 0.0:
            return 0.0 if measured == 0.0 else float("inf")
        return abs(measured - expected) / expected

    def worst_component_error(self) -> float:
        return max(
            (self.component_error(c) for c in self.expected_component_shares),
            default=0.0,
        )


def measure_fidelity(
    config: ScenarioConfig,
    day_streams: list[tuple[str, list[Request]]],
) -> FidelityReport:
    """Compare generated streams against the configuration.

    ``day_streams`` is what ``TrafficGenerator.generate()`` yields.
    """
    component_counts: Counter[str] = Counter()
    day_counts: Counter[str] = Counter()
    total = 0
    for day, requests in day_streams:
        day_counts[day] += len(requests)
        total += len(requests)
        for request in requests:
            component = request.component
            if component.startswith("tor-"):
                component = "tor"  # tor-http/tor-onion are one budget
            component_counts[component] += 1

    expected_components = {}
    for component, share in COMPONENT_SHARES.items():
        expected_components[component] = share * config.boost(component)
    boosted_total = sum(expected_components.values())
    expected_components["browsing"] = max(0.0, 1.0 - boosted_total)

    return FidelityReport(
        total_requests=total,
        component_shares={
            component: count / total
            for component, count in component_counts.items()
        },
        expected_component_shares=expected_components,
        day_shares={day: count / total for day, count in day_counts.items()},
        expected_day_shares=config.day_weights(),
    )
