"""Redirect-target traffic: Facebook pages and redirect hosts.

Covers the two policy_redirect mechanisms the paper studies together
in Sections 5.3 and 6: visits to the watched political Facebook pages
(custom category, Table 14) and requests to the host-redirect list
dominated by ``upload.youtube.com`` (Table 7).  They share one
component so a single boost factor preserves their relative volumes.
"""

from __future__ import annotations

import numpy as np

from repro.catalog import facebook as fb
from repro.traffic import Request
from repro.workload.diurnal import TrafficCalendar
from repro.workload.population import ClientPopulation

#: Share of the component that is Facebook page visits vs redirect
#: hosts, calibrated from Tables 7 and 14 (upload.youtube.com's 12,978
#: redirects dominate the ~7,000 page visits).
PAGE_VISIT_SHARE = 0.347

#: Redirect hosts with their visit weights (within the redirect part).
REDIRECT_HOST_WEIGHTS: tuple[tuple[str, str, float], ...] = (
    # (host, path, weight)
    ("upload.youtube.com", "/my_videos_upload", 0.924),
    ("upload.youtube.com", "/", 0.061),
    ("competition.mbc.net", "/vote.php", 0.008),
    ("sharek.aljazeera.net", "/upload", 0.007),
)


class RedirectTargetsComponent:
    """Generates page visits plus redirect-host traffic."""

    def __init__(
        self,
        population: ClientPopulation,
        calendar: TrafficCalendar,
    ):
        self.population = population
        self.calendar = calendar
        self.pages = list(fb.ALL_PAGES)
        weights = np.array([page.weight for page in self.pages], dtype=float)
        self._page_weights = weights / weights.sum()
        hosts = list(fb.PAGE_HOSTS)
        self._page_hosts = [host for host, _ in hosts]
        host_weights = np.array([w for _, w in hosts], dtype=float)
        self._page_host_weights = host_weights / host_weights.sum()
        redirect_weights = np.array(
            [w for _, _, w in REDIRECT_HOST_WEIGHTS], dtype=float
        )
        self._redirect_weights = redirect_weights / redirect_weights.sum()

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        clients = self.population.sample_many(count, rng)
        requests: list[Request] = []
        for i in range(count):
            client = clients[i]
            epoch = int(epochs[i])
            if rng.random() < PAGE_VISIT_SHARE:
                requests.append(self._page_visit(epoch, client, rng))
            else:
                requests.append(self._redirect_visit(epoch, client, rng))
        return requests

    def _page_visit(self, epoch: int, client, rng: np.random.Generator) -> Request:
        page = self.pages[int(rng.choice(len(self.pages), p=self._page_weights))]
        host = self._page_hosts[
            int(rng.choice(len(self._page_hosts), p=self._page_host_weights))
        ]
        if rng.random() < page.blocked_share:
            query = fb.BLOCKED_QUERY_FORMS[
                int(rng.integers(len(fb.BLOCKED_QUERY_FORMS)))
            ]
        else:
            query = fb.ESCAPING_QUERY_FORM
        return Request(
            epoch=epoch,
            c_ip=client.c_ip,
            user_agent=client.user_agent,
            host=host,
            path=f"/{page.name}",
            query=query,
            component="redirect-targets",
        )

    def _redirect_visit(self, epoch: int, client, rng: np.random.Generator) -> Request:
        index = int(rng.choice(len(REDIRECT_HOST_WEIGHTS), p=self._redirect_weights))
        host, path, _ = REDIRECT_HOST_WEIGHTS[index]
        return Request(
            epoch=epoch,
            c_ip=client.c_ip,
            user_agent=client.user_agent,
            host=host,
            path=path,
            component="redirect-targets",
        )
