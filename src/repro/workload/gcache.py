"""Google-cache traffic (Section 7.4 of the paper).

A small number of users fetch cached copies of pages — including pages
whose origin sites are censored — through
``webcache.googleusercontent.com``.  Nearly all of these fetches are
allowed; the rare censored ones carry a blacklisted keyword in the
cache URL itself.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.domains import SiteSpec, expand_template
from repro.traffic import Request
from repro.workload.diurnal import TrafficCalendar
from repro.workload.population import ClientPopulation


class GoogleCacheComponent:
    """Generates cache fetches from the webcache site spec."""

    def __init__(
        self,
        sites: list[SiteSpec],
        population: ClientPopulation,
        calendar: TrafficCalendar,
    ):
        cache_sites = [site for site in sites if site.tagged("google-cache")]
        if not cache_sites:
            raise ValueError("universe has no google-cache site")
        self.site = cache_sites[0]
        weights = np.array([t.weight for t in self.site.templates], dtype=float)
        self._template_weights = weights / weights.sum()
        self.population = population
        self.calendar = calendar

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        clients = self.population.sample_many(count, rng)
        template_indices = rng.choice(
            len(self.site.templates), size=count, p=self._template_weights
        )
        requests: list[Request] = []
        for i in range(count):
            template = self.site.templates[int(template_indices[i])]
            path, query = expand_template(template, rng)
            requests.append(Request(
                epoch=int(epochs[i]),
                c_ip=clients[i].c_ip,
                user_agent=clients[i].user_agent,
                host=self.site.host,
                path=path,
                query=query,
                component="google-cache",
            ))
        return requests
