"""The client population.

Clients sit behind the STE backbone; the paper identifies a user as a
unique (c-ip, cs-user-agent) pair (Section 4, following Yen et al.),
counting 147,802 users over the July 22–23 slice.  The model assigns
each user a Syrian address, one user agent, and a heavy-tailed
activity weight; requests sample users proportionally to activity.

The paper's Fig. 4 correlation — censored users are far more active
than non-censored ones — *emerges* from this model: active users send
more requests and therefore hit keyword-bearing URLs (plugins, ads,
toolbars) more often; no censorship flag is assigned per user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.ip import format_ipv4, parse_network
from repro.net.useragent import BROWSERS

# Syrian access ranges clients are drawn from (synthetic allocation,
# registered to SY in the built-in GeoIP registry).
_CLIENT_POOL = parse_network("31.9.0.0/16")

# A NAT gateway serves several distinct browsers from one address;
# this share of users gets a shared address.
_NAT_SHARE = 0.12


@dataclass(frozen=True, slots=True)
class Client:
    """One (address, agent) identity."""

    c_ip: str
    user_agent: str
    activity: float


class ClientPopulation:
    """The sampled user base."""

    def __init__(self, size: int, seed: int = 31):
        if size < 1:
            raise ValueError("population must have at least one client")
        rng = np.random.default_rng(seed)
        nat_count = int(size * _NAT_SHARE)
        distinct_count = size - nat_count

        addresses: list[str] = []
        host_indices = rng.choice(
            _CLIENT_POOL.size - 2, size=distinct_count, replace=False
        ) + 1
        for index in host_indices:
            addresses.append(format_ipv4(_CLIENT_POOL.nth(int(index))))
        # NAT users share a smaller address pool (several agents per ip).
        nat_pool = addresses[: max(1, distinct_count // 20)]
        for i in range(nat_count):
            addresses.append(nat_pool[i % len(nat_pool)])

        agents = [
            BROWSERS[int(rng.integers(len(BROWSERS)))].string for _ in range(size)
        ]
        # Heavy-tailed activity: a few users generate most requests
        # (50 % of censored users send >100 requests in the paper).
        activity = rng.lognormal(mean=0.0, sigma=1.6, size=size)
        activity /= activity.sum()

        self.clients = [
            Client(c_ip=ip, user_agent=agent, activity=float(weight))
            for ip, agent, weight in zip(addresses, agents, activity)
        ]
        self._weights = activity
        # The risk pool: the small user subset that actually touches
        # keyword-bearing content (plugin-heavy browsing, toolbars,
        # IM clients).  2.5 % of users, biased towards active ones.
        pool_size = max(2, int(size * 0.025))
        self._risk_indices = np.argsort(-activity)[: pool_size * 3]
        self._risk_indices = rng.choice(
            self._risk_indices, size=pool_size, replace=False
        )
        risk_weights = activity[self._risk_indices]
        self._risk_weights = risk_weights / risk_weights.sum()

    def __len__(self) -> int:
        return len(self.clients)

    def sample(self, rng: np.random.Generator) -> Client:
        index = int(rng.choice(len(self.clients), p=self._weights))
        return self.clients[index]

    def sample_many(self, count: int, rng: np.random.Generator) -> list[Client]:
        indices = rng.choice(len(self.clients), size=count, p=self._weights)
        return [self.clients[int(i)] for i in indices]

    def sample_risk_users(self, count: int, rng: np.random.Generator) -> list[Client]:
        """Sample from the risk pool (activity-weighted)."""
        indices = rng.choice(
            self._risk_indices, size=count, p=self._risk_weights
        )
        return [self.clients[int(i)] for i in indices]

    def distinct_identities(self) -> int:
        """Number of unique (c-ip, agent) pairs — the paper's user unit."""
        return len({(c.c_ip, c.user_agent) for c in self.clients})


def population_size_for(total_requests: int, user_scale: float = 1.0) -> int:
    """Derive a population size from the request volume.

    The paper sees ~43 requests per user on the D_user slice; we keep
    the same order of magnitude, bounded for tiny test scenarios.
    """
    return max(50, int(total_requests / 45 * user_scale))
