"""The web-browsing traffic component.

Covers ~98.5 % of the volume: the population browsing the site
universe.  Site choice follows the calibrated popularity weights, URL
choice follows each site's template mix, HTTPS arises from per-site
CONNECT shares, and the Aug 3 IM surges are generated as an extra
stream over the IM-tagged sites (Section 5.1 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.catalog.domains import SiteSpec, expand_template
from repro.net.useragent import ALL_AGENTS
from repro.traffic import Request, connect_request
from repro.workload.diurnal import SurgeEvent, TrafficCalendar
from repro.workload.population import ClientPopulation

_AGENT_BY_FAMILY = {agent.family: agent.string for agent in ALL_AGENTS}

#: Relative weights of IM-tagged hosts inside a demand surge: Skype
#: dominates (Table 5 shows it at 29 % of censored traffic during the
#: 8-10 am peak), with the MSN gateway second.
_SURGE_HOST_WEIGHTS: dict[str, float] = {
    "www.skype.com": 0.30,
    "ui.skype.com": 0.18,
    "download.skype.com": 0.07,
    "messenger.live.com": 0.30,
    "ceipmsn.com": 0.10,
    "jumblo.com": 0.05,
}


class BrowsingComponent:
    """Samples browsing requests from the site universe."""

    def __init__(
        self,
        sites: list[SiteSpec],
        population: ClientPopulation,
        calendar: TrafficCalendar,
    ):
        # Google-cache and redirect-host traffic have their own
        # components; everything else in the universe is browsable.
        self.sites = [
            site
            for site in sites
            if not site.tagged("google-cache") and not site.tagged("redirect-host")
        ]
        weights = np.array([site.weight for site in self.sites], dtype=float)
        if weights.sum() <= 0:
            raise ValueError("site universe has no weight")
        self._site_weights = weights / weights.sum()
        self._template_weights: list[np.ndarray] = []
        for site in self.sites:
            tw = np.array([t.weight for t in site.templates], dtype=float)
            self._template_weights.append(tw / tw.sum())
        # Sites whose audience is inherently niche (blocked domains,
        # circumvention services): their visitors come from the risk
        # pool, concentrating censorship on few, active users (Fig. 4).
        risky_tags = {"suspected", "blocked-host", "il", "keyword-host",
                      "anonymizer"}
        self._risky_site = np.array(
            [bool(risky_tags & set(site.tags)) for site in self.sites]
        )
        self.population = population
        self.calendar = calendar
        self._surge_sites = self._build_surge_pool()

    def _build_surge_pool(self) -> tuple[list[int], np.ndarray]:
        indices: list[int] = []
        weights: list[float] = []
        for i, site in enumerate(self.sites):
            if site.host in _SURGE_HOST_WEIGHTS:
                indices.append(i)
                weights.append(_SURGE_HOST_WEIGHTS[site.host])
        if not indices:
            return [], np.empty(0)
        array = np.array(weights, dtype=float)
        return indices, array / array.sum()

    def generate(self, day: str, count: int, rng: np.random.Generator) -> list[Request]:
        """Base browsing requests for one day."""
        if count == 0:
            return []
        epochs = self.calendar.sample_epochs(day, count, rng)
        site_indices = rng.choice(
            len(self.sites), size=count, p=self._site_weights
        )
        requests = self._materialize(site_indices, epochs, rng)
        requests.extend(self._generate_surges(day, count, rng))
        return requests

    def _generate_surges(
        self, day: str, day_total: int, rng: np.random.Generator
    ) -> list[Request]:
        surge_indices, surge_weights = self._surge_sites
        if not surge_indices:
            return []
        requests: list[Request] = []
        for surge, count in self.calendar.surge_requests(day, day_total):
            if count == 0:
                continue
            epochs = self.calendar.sample_window_epochs(surge, count, rng)
            chosen = rng.choice(len(surge_indices), size=count, p=surge_weights)
            site_indices = np.array([surge_indices[i] for i in chosen])
            requests.extend(self._materialize(site_indices, epochs, rng))
        return requests

    def _materialize(
        self,
        site_indices: np.ndarray,
        epochs: np.ndarray,
        rng: np.random.Generator,
    ) -> list[Request]:
        count = len(site_indices)
        clients = self.population.sample_many(count, rng)
        # Vectorize template choice by grouping requests per site: one
        # weighted draw per site instead of one per request.
        template_indices = np.zeros(count, dtype=np.int64)
        order = np.argsort(site_indices, kind="stable")
        sorted_sites = site_indices[order]
        boundaries = np.flatnonzero(np.diff(sorted_sites)) + 1
        for block in np.split(order, boundaries):
            site_index = int(site_indices[block[0]])
            weights = self._template_weights[site_index]
            template_indices[block] = rng.choice(
                len(weights), size=len(block), p=weights
            )
        requests: list[Request] = []
        risk_share = 0.85  # of risky-template requests go to the pool
        # Page-view clustering: an allowed page fans out into asset
        # requests from the same client moments later (the paper's
        # request-level logging inflation); a censored page never
        # loads its assets, so risky sites do not cluster.
        last_page_view: dict[int, tuple[object, int]] = {}
        cluster_share = 0.6
        for i in range(count):
            site_index = int(site_indices[i])
            site = self.sites[site_index]
            template = site.templates[int(template_indices[i])]
            client = clients[i]
            risky = template.risky or self._risky_site[site_index]
            if risky and rng.random() < risk_share:
                client = self.population.sample_risk_users(1, rng)[0]
            epoch = int(epochs[i])
            if not risky:
                if template.content_type == "text/html":
                    last_page_view[site_index] = (client, epoch)
                else:
                    view = last_page_view.get(site_index)
                    if view is not None and rng.random() < cluster_share:
                        client = view[0]
                        epoch = view[1] + int(rng.integers(0, 5))
            agent = (
                _AGENT_BY_FAMILY.get(template.agent, client.user_agent)
                if template.agent
                else client.user_agent
            )
            if site.https_share and rng.random() < site.https_share:
                requests.append(
                    connect_request(epoch, client.c_ip, agent, site.host, 443,
                                    component="browsing")
                )
                continue
            path, query = expand_template(template, rng)
            requests.append(Request(
                epoch=epoch,
                c_ip=client.c_ip,
                user_agent=agent,
                host=site.host,
                path=path,
                query=query,
                method=template.method,
                content_type=template.content_type,
                component="browsing",
            ))
        return requests
