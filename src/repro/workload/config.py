"""Scenario configuration.

A :class:`ScenarioConfig` pins down one simulated deployment: the total
request volume, the days covered, per-component volume shares, and the
*boost* factors that oversample rare components at small scales.

The paper's shares are tiny for some components (Tor is 0.013 % of
751 M requests); a laptop-scale run with true shares would generate too
few Tor/BitTorrent/page-visit requests to reproduce the corresponding
figures.  Boosts scale a component's volume up while leaving its
*internal* proportions untouched; analyses that report within-component
shares are unaffected, and EXPERIMENTS.md records where a boost was
applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.timeline import LOG_DAYS, USER_SLICE_DAYS

#: Per-component share of total request volume, calibrated to the paper
#: (browsing absorbs the remainder).
COMPONENT_SHARES: dict[str, float] = {
    "iphosts": 0.0110,  # requests whose cs-host is an IPv4 address
    "tor": 0.000126,  # 95 K of 751 M
    "bittorrent": 0.00045,  # 338 K of 751 M
    "redirect-targets": 0.0000266,  # Tables 7 + 14 volume
    "google-cache": 0.0000065,  # 4,860 of 751 M
}

#: Default boosts make every analysis statistically meaningful at the
#: default bench scale (~400 K requests) without distorting headline
#: proportions (they move total non-browsing share by < 0.6 %).
DEFAULT_BOOSTS: dict[str, float] = {
    "iphosts": 4.0,
    "tor": 60.0,
    "bittorrent": 6.0,
    "redirect-targets": 12.0,
    "google-cache": 120.0,
}

#: Default boost of the July (user-slice) days in bench scenarios:
#: raises D_user's volume so the Fig. 4 per-user statistics have
#: signal at laptop scale.
DEFAULT_USER_DAY_BOOST = 12.0

#: Relative volume of each log day (August protest-week shape plus the
#: July days, which exist only for proxy SG-42 and are far smaller).
DAY_MULTIPLIERS: dict[str, float] = {
    "2011-07-22": 0.028,
    "2011-07-23": 0.026,
    "2011-07-31": 0.027,
    "2011-08-01": 1.00,
    "2011-08-02": 1.02,
    "2011-08-03": 1.06,
    "2011-08-04": 0.86,
    "2011-08-05": 0.58,  # Friday: weekly-protest slowdown (Fig. 5)
    "2011-08-06": 0.92,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulated deployment."""

    total_requests: int = 400_000
    days: tuple[str, ...] = LOG_DAYS
    seed: int = 20110804
    #: Which registered censorship-regime profile filters the traffic
    #: (see :mod:`repro.regimes`).  The default reproduces the paper's
    #: Syrian deployment.
    regime: str = "syria"
    boosts: dict[str, float] = field(default_factory=dict)
    tail_domains: int = 1200
    suspected_domains: int = 84
    tor_relays: int = 1111
    torrent_contents: int = 1200
    user_scale: float = 1.0  # multiplies the derived population size
    user_day_boost: float = 1.0  # volume multiplier for the July days

    def boost(self, component: str) -> float:
        return self.boosts.get(component, 1.0)

    def with_boosts(self, **boosts: float) -> "ScenarioConfig":
        merged = dict(self.boosts)
        merged.update(boosts)
        return replace(self, boosts=merged)

    def component_requests(self, component: str, day_weight: float) -> int:
        """Request count for a component on a day with *day_weight*
        (the day's share of total volume)."""
        share = COMPONENT_SHARES[component] * self.boost(component)
        return int(round(self.total_requests * day_weight * share))

    def browsing_requests(self, day_weight: float) -> int:
        """Browsing absorbs whatever the special components leave."""
        boosted = sum(
            COMPONENT_SHARES[c] * self.boost(c) for c in COMPONENT_SHARES
        )
        share = max(0.0, 1.0 - boosted)
        return int(round(self.total_requests * day_weight * share))

    def day_weights(self) -> dict[str, float]:
        """Normalized per-day volume shares."""
        weights = {}
        for day in self.days:
            weight = DAY_MULTIPLIERS.get(day, 1.0)
            if day in USER_SLICE_DAYS:
                weight *= self.user_day_boost
            weights[day] = weight
        total = sum(weights.values())
        return {day: weight / total for day, weight in weights.items()}


def small_config(total_requests: int = 40_000, seed: int = 7) -> ScenarioConfig:
    """A test-sized scenario with boosted rare components."""
    boosts = dict(DEFAULT_BOOSTS)
    # Tests need Table 14's page visits to be visible at tiny scale.
    boosts["redirect-targets"] = 60.0
    return ScenarioConfig(
        total_requests=total_requests,
        seed=seed,
        boosts=boosts,
        tail_domains=300,
        suspected_domains=84,
        tor_relays=200,
        torrent_contents=300,
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
