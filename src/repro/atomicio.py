"""Crash-safe file publication: tmp + ``os.replace`` + fsync.

Every durable artifact in the system — ELFF logs, checkpoint
artifacts, the run journal, metrics and markdown reports — goes
through this module, so an interrupted process never leaves a
truncated file at a final path.  The pattern is the classic one:

1. write the full content to ``<name>.tmp`` in the destination
   directory (same filesystem, so the rename is atomic);
2. flush and ``fsync`` the tmp file so the bytes are on disk, not in
   the page cache, before the name becomes visible;
3. ``os.replace`` the tmp over the final name — readers see either
   the old file or the complete new one, never a prefix.

:class:`AtomicTextFile` wraps an incrementally-written text handle
(plain or gzip) with the same contract: the final path appears only on
a successful :meth:`close`, and an exception inside the ``with`` block
discards the tmp file instead of publishing it.
"""

from __future__ import annotations

import os
from pathlib import Path


def _fsync_path(path: Path) -> None:
    """Force *path*'s bytes to stable storage (best effort on
    filesystems that do not support fsync)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def tmp_path_for(path: Path | str, *, unique: bool = False) -> Path:
    """The sibling tmp name a write stages through.

    The default ``<name>.tmp`` is deterministic (handy for tests and
    crash-leftover cleanup); ``unique=True`` suffixes the writer's pid
    so two *processes* staging the same final path never interleave
    writes into one tmp file — required by the distributed dispatcher,
    where a reclaimed shard may briefly be written by two workers.
    """
    path = Path(path)
    suffix = f".{os.getpid()}.tmp" if unique else ".tmp"
    return path.with_name(path.name + suffix)


def atomic_write_bytes(
    path: Path | str, data: bytes, *, unique_tmp: bool = False
) -> Path:
    """Write *data* to *path* atomically; returns the final path.

    ``unique_tmp=True`` stages through a pid-unique tmp name, making
    the write safe against a concurrent writer of the same final path
    (last ``os.replace`` wins, both leave complete bytes).
    """
    path = Path(path)
    staging = tmp_path_for(path, unique=unique_tmp)
    with open(staging, "wb") as handle:
        handle.write(data)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass
    os.replace(staging, path)
    return path


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write *text* (UTF-8) to *path* atomically; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"))


class AtomicTextFile:
    """A text writer that publishes its file only on successful close.

    *opener* opens the staging path for writing (``open(p, "w")`` for
    plain text, a deterministic-gzip writer for ``.gz`` logs); writes
    stream to ``<name>.tmp``, and :meth:`close` fsyncs and renames the
    tmp over the final name.  Used as a context manager, an exception
    inside the block calls :meth:`discard` instead — the final path is
    never touched, and the tmp file is removed.
    """

    def __init__(self, path: Path | str, opener=None):
        self.path = Path(path)
        self._staging = tmp_path_for(self.path)
        self._handle = (opener or (lambda p: open(p, "w", newline="")))(
            self._staging
        )
        self._settled = False

    def write(self, text: str) -> int:
        return self._handle.write(text)

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        """Finish the write and publish the file at its final path."""
        if self._settled:
            return
        self._settled = True
        self._handle.close()
        _fsync_path(self._staging)
        os.replace(self._staging, self.path)

    def discard(self) -> None:
        """Abandon the write: close and remove the tmp, leaving the
        final path exactly as it was."""
        if self._settled:
            return
        self._settled = True
        try:
            self._handle.close()
        finally:
            self._staging.unlink(missing_ok=True)

    def __enter__(self) -> "AtomicTextFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.discard()
        else:
            self.close()
