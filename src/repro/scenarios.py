"""Named what-if scenarios.

The canonical scenario reproduces the Summer-2011 policy the paper
measured.  The paper's remarks section notes how the ecosystem evolved
(Tor relays and bridges blocked from December 2012; heavier equipment
purchased) and argues that understanding the policy helps circumvention
design.  These named scenarios make such what-ifs runnable: each
returns a :class:`~repro.datasets.ScenarioDatasets` built under a
modified policy, comparable against the baseline with the ordinary
analysis pipeline.

A transform is regime-agnostic: it receives whatever policy object
``config.regime``'s registered profile builds (see
:mod:`repro.regimes`) plus the traffic generator, and returns the
policy to deploy.  The shipped transforms target the default Syrian
policy's fields via :func:`dataclasses.replace`, so they also apply
unchanged to any policy type carrying the same field names.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace
from typing import Any

import numpy as np

from repro.catalog.categories import Category
from repro.categorizer import TrustedSourceCategorizer
from repro.datasets import ScenarioDatasets
from repro.datasets.builder import (
    assemble_datasets_from_frame,
    simulate_scenario_frame,
)
from repro.policy.engine import PolicyEngine
from repro.policy.extensions import CategoryRule, TimeOfDayRule
from repro.policy.rules import TorBlockSchedule, TorOnionRule
from repro.regimes import get_regime
from repro.timeline import day_epoch
from repro.workload import ScenarioConfig, TrafficGenerator

#: A policy hook: (deployed policy, traffic generator) -> the policy
#: to run.  The policy type is the regime's own — transforms written
#: for one regime should check for or document the fields they touch.
PolicyTransform = Callable[[Any, TrafficGenerator], Any]


def build_custom_scenario(
    config: ScenarioConfig,
    transform: PolicyTransform | None = None,
    sample_fraction: float = 0.04,
) -> ScenarioDatasets:
    """Like :func:`repro.datasets.build_scenario`, with a policy hook.

    *transform* receives the policy built by ``config.regime``'s
    profile (the canonical Syrian policy by default) plus the traffic
    generator (for ground-truth artifacts like the Tor directory) and
    returns the policy to deploy.
    """
    profile = get_regime(config.regime)
    generator = profile.build_workload(config)
    policy = profile.build_policy(generator)
    if transform is not None:
        policy = transform(policy, generator)
    fleet = profile.build_fleet(policy)

    rng = np.random.default_rng(config.seed + 1000)
    full, records_by_day = simulate_scenario_frame(generator, fleet, rng)
    return assemble_datasets_from_frame(
        full, records_by_day, config, generator, policy, rng,
        sample_fraction,
    )


# ---------------------------------------------------------------------------
# Policy transforms
# ---------------------------------------------------------------------------

def tor_blackout(policy: Any, generator: TrafficGenerator) -> Any:
    """The December-2012 state: every proxy blocks every Tor OR
    connection, all the time (the paper's remark about relays and
    bridges being blocked)."""
    start = day_epoch("2011-07-22")
    end = day_epoch("2011-08-07")
    schedule = TorBlockSchedule([(start, end, 1.0)])
    rule = TorOnionRule(generator.tor_directory.or_endpoints(), schedule)
    return replace(
        policy,
        base_engine=policy.base_engine.with_rules([rule]),
        proxy_engines={
            name: engine.with_rules([rule])
            for name, engine in policy.proxy_engines.items()
        },
        tor_schedule=schedule,
    )


def streaming_curfew(
    start_hour: int = 18,
    end_hour: int = 23,
) -> PolicyTransform:
    """A category × time-of-day policy: streaming media blocked during
    the evening protest-mobilization hours — the kind of fine-grained
    control the paper notes DPI-capable appliances support."""

    def transform(policy: Any, generator: TrafficGenerator) -> Any:
        categorizer = TrustedSourceCategorizer(generator.sites)
        rule = TimeOfDayRule(
            CategoryRule([Category.STREAMING_MEDIA], categorizer.categorize),
            start_hour,
            end_hour,
        )
        return replace(
            policy,
            base_engine=policy.base_engine.with_rules([rule]),
            proxy_engines={
                name: engine.with_rules([rule])
                for name, engine in policy.proxy_engines.items()
            },
        )

    return transform


def no_keyword_filtering(policy: Any, generator: TrafficGenerator) -> Any:
    """Remove the keyword engine entirely — the collateral-damage
    counterfactual behind the paper's Section 8 discussion."""
    from repro.policy.rules import KeywordRule

    def strip(engine: PolicyEngine) -> PolicyEngine:
        rules = [r for r in engine.rules if not isinstance(r, KeywordRule)]
        return PolicyEngine(rules, name=engine.name)

    return replace(
        policy,
        base_engine=strip(policy.base_engine),
        proxy_engines={
            name: strip(engine)
            for name, engine in policy.proxy_engines.items()
        },
        keywords=(),
    )
