"""Named what-if scenarios.

The canonical scenario reproduces the Summer-2011 policy the paper
measured.  The paper's remarks section notes how the ecosystem evolved
(Tor relays and bridges blocked from December 2012; heavier equipment
purchased) and argues that understanding the policy helps circumvention
design.  These named scenarios make such what-ifs runnable: each
returns a :class:`~repro.datasets.ScenarioDatasets` built under a
modified policy, comparable against the baseline with the ordinary
analysis pipeline.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.catalog.categories import Category
from repro.categorizer import TrustedSourceCategorizer
from repro.datasets import ScenarioDatasets
from repro.datasets.builder import (
    assemble_datasets_from_frame,
    simulate_scenario_frame,
)
from repro.policy.engine import PolicyEngine
from repro.policy.extensions import CategoryRule, TimeOfDayRule
from repro.policy.rules import TorBlockSchedule, TorOnionRule
from repro.policy.syria import SyrianPolicy, build_syrian_policy
from repro.proxy import ProxyFleet
from repro.timeline import day_epoch
from repro.workload import ScenarioConfig, TrafficGenerator

PolicyTransform = Callable[[SyrianPolicy, TrafficGenerator], SyrianPolicy]


def build_custom_scenario(
    config: ScenarioConfig,
    transform: PolicyTransform | None = None,
    sample_fraction: float = 0.04,
) -> ScenarioDatasets:
    """Like :func:`repro.datasets.build_scenario`, with a policy hook.

    *transform* receives the canonical Syrian policy plus the traffic
    generator (for ground-truth artifacts like the Tor directory) and
    returns the policy to deploy.
    """
    generator = TrafficGenerator(config)
    policy = build_syrian_policy(
        generator.sites,
        tor_directory=generator.tor_directory,
        extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
    )
    if transform is not None:
        policy = transform(policy, generator)
    fleet = ProxyFleet(policy)

    rng = np.random.default_rng(config.seed + 1000)
    full, records_by_day = simulate_scenario_frame(generator, fleet, rng)
    return assemble_datasets_from_frame(
        full, records_by_day, config, generator, policy, rng,
        sample_fraction,
    )


# ---------------------------------------------------------------------------
# Policy transforms
# ---------------------------------------------------------------------------

def tor_blackout(policy: SyrianPolicy, generator: TrafficGenerator) -> SyrianPolicy:
    """The December-2012 state: every proxy blocks every Tor OR
    connection, all the time (the paper's remark about relays and
    bridges being blocked)."""
    start = day_epoch("2011-07-22")
    end = day_epoch("2011-08-07")
    schedule = TorBlockSchedule([(start, end, 1.0)])
    rule = TorOnionRule(generator.tor_directory.or_endpoints(), schedule)
    engines = {
        name: engine.with_rules([rule])
        for name, engine in policy.proxy_engines.items()
    }
    return SyrianPolicy(
        base_engine=policy.base_engine.with_rules([rule]),
        proxy_engines=engines,
        blocked_domains=policy.blocked_domains,
        blocked_hosts=policy.blocked_hosts,
        keywords=policy.keywords,
        tor_schedule=schedule,
        blocked_subnets=policy.blocked_subnets,
        blocked_addresses=policy.blocked_addresses,
    )


def streaming_curfew(
    start_hour: int = 18,
    end_hour: int = 23,
) -> PolicyTransform:
    """A category × time-of-day policy: streaming media blocked during
    the evening protest-mobilization hours — the kind of fine-grained
    control the paper notes DPI-capable appliances support."""

    def transform(policy: SyrianPolicy, generator: TrafficGenerator) -> SyrianPolicy:
        categorizer = TrustedSourceCategorizer(generator.sites)
        rule = TimeOfDayRule(
            CategoryRule([Category.STREAMING_MEDIA], categorizer.categorize),
            start_hour,
            end_hour,
        )
        engines = {
            name: engine.with_rules([rule])
            for name, engine in policy.proxy_engines.items()
        }
        return SyrianPolicy(
            base_engine=policy.base_engine.with_rules([rule]),
            proxy_engines=engines,
            blocked_domains=policy.blocked_domains,
            blocked_hosts=policy.blocked_hosts,
            keywords=policy.keywords,
            tor_schedule=policy.tor_schedule,
            blocked_subnets=policy.blocked_subnets,
            blocked_addresses=policy.blocked_addresses,
        )

    return transform


def no_keyword_filtering(policy: SyrianPolicy, generator: TrafficGenerator) -> SyrianPolicy:
    """Remove the keyword engine entirely — the collateral-damage
    counterfactual behind the paper's Section 8 discussion."""
    from repro.policy.rules import KeywordRule

    def strip(engine: PolicyEngine) -> PolicyEngine:
        rules = [r for r in engine.rules if not isinstance(r, KeywordRule)]
        return PolicyEngine(rules, name=engine.name)

    return SyrianPolicy(
        base_engine=strip(policy.base_engine),
        proxy_engines={
            name: strip(engine) for name, engine in policy.proxy_engines.items()
        },
        blocked_domains=policy.blocked_domains,
        blocked_hosts=policy.blocked_hosts,
        keywords=(),
        tor_schedule=policy.tor_schedule,
        blocked_subnets=policy.blocked_subnets,
        blocked_addresses=policy.blocked_addresses,
    )
