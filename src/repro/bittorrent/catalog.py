"""Torrent content catalog and tracker inventory."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.words import QUERY_WORDS

#: Tracker hosts clients announce to.  ``tracker-proxy.furk.net``
#: reproduces the paper's observation that announces to it are always
#: censored (the hostname carries the ``proxy`` keyword).
TRACKERS: tuple[tuple[str, int], ...] = (
    ("tracker.openbittorrent.com", 80),
    ("tracker.publicbt.com", 80),
    ("denis.stalker.h3q.com", 6969),
    ("tracker.torrentbay.to", 6969),
    ("exodus.desync.com", 6969),
    ("tracker-proxy.furk.net", 80),
)

_TRACKER_WEIGHTS = (0.35, 0.28, 0.14, 0.12, 0.10, 0.01)

#: Content kinds and their catalog shares.  The paper finds mostly
#: media, plus anti-censorship tools (UltraSurf, HideMyAss, Auto Hide
#: IP, anonymous browsers) and IM installers (Skype/MSN/Yahoo) that
#: cannot be downloaded directly because their websites are censored.
_KIND_SHARES: tuple[tuple[str, float], ...] = (
    ("media", 0.924),
    ("anticensor", 0.030),
    ("im-software", 0.030),
    ("software", 0.016),
)

_ANTICENSOR_TITLES = (
    "UltraSurf {version} portable",
    "HideMyAss VPN client",
    "Auto Hide IP {version} + crack",
    "Anonymous Browser Toolkit {version}",
)

_IM_TITLES = (
    "Skype {version} offline installer",
    "MSN Messenger 2011 setup",
    "Yahoo Messenger {version} full",
)

_SOFTWARE_TITLES = (
    "Office suite {version} activated",
    "Antivirus {version} with key",
    "Photo editor {version} portable",
)


@dataclass(frozen=True, slots=True)
class TorrentContent:
    """One shared content item."""

    info_hash: str  # 40-char hex digest of the 20-byte hash
    title: str
    kind: str


class TorrentCatalog:
    """Deterministic torrent population with Zipf popularity."""

    def __init__(self, content_count: int = 1200, seed: int = 6881):
        rng = np.random.default_rng(seed)
        kinds: list[str] = []
        for kind, share in _KIND_SHARES:
            kinds.extend([kind] * max(1, int(round(share * content_count))))
        kinds = kinds[:content_count]
        while len(kinds) < content_count:
            kinds.append("media")
        rng.shuffle(kinds)  # type: ignore[arg-type]
        # Pin a few high-popularity ranks to the tool categories: the
        # paper finds UltraSurf and IM installers among the most-shared
        # content (their websites being censored drives demand).
        if content_count >= 8:
            kinds[1] = "anticensor"
            kinds[3] = "im-software"
            kinds[6] = "anticensor"
        self.contents: list[TorrentContent] = []
        for i, kind in enumerate(kinds):
            info_hash = format(int(rng.integers(16**15)), "015x") + format(i, "025x")
            self.contents.append(
                TorrentContent(info_hash[:40], self._title(kind, i, rng), kind)
            )
        ranks = np.arange(1, content_count + 1, dtype=float)
        weights = 1.0 / ranks**0.9
        self._weights = weights / weights.sum()

    @staticmethod
    def _title(kind: str, index: int, rng: np.random.Generator) -> str:
        version = f"{int(rng.integers(1, 12))}.{int(rng.integers(0, 10))}"
        if kind == "anticensor":
            template = _ANTICENSOR_TITLES[index % len(_ANTICENSOR_TITLES)]
        elif kind == "im-software":
            template = _IM_TITLES[index % len(_IM_TITLES)]
        elif kind == "software":
            template = _SOFTWARE_TITLES[index % len(_SOFTWARE_TITLES)]
        else:
            word_a = QUERY_WORDS[index % len(QUERY_WORDS)]
            word_b = QUERY_WORDS[(index * 7 + 3) % len(QUERY_WORDS)]
            template = f"{word_a} {word_b} {{version}} DVDRip"
        return template.format(version=version)

    def __len__(self) -> int:
        return len(self.contents)

    def sample_content(self, rng: np.random.Generator) -> TorrentContent:
        """Popularity-weighted content choice."""
        index = int(rng.choice(len(self.contents), p=self._weights))
        return self.contents[index]

    def sample_tracker(self, rng: np.random.Generator) -> tuple[str, int]:
        """Weighted tracker choice."""
        index = int(rng.choice(len(TRACKERS), p=_TRACKER_WEIGHTS))
        return TRACKERS[index]

    def by_hash(self) -> dict[str, TorrentContent]:
        """Index the catalog by info hash."""
        return {content.info_hash: content for content in self.contents}


def make_peer_id(user_index: int) -> str:
    """A 20-byte peer id in uTorrent convention (urlencoded form).

    The paper counts unique users by the announce ``peer_id`` field.
    """
    return f"-UT2210-{user_index:012d}"
