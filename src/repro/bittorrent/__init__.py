"""BitTorrent substrate (Section 7.3 of the paper).

Models the pieces the paper's peer-to-peer analysis needs: tracker
hosts with HTTP announce endpoints, a torrent-content catalog (info
hashes, peer ids, titles), and a title-resolution database standing in
for the paper's torrentz.eu / torrentproject.com crawl (which resolved
77.4 % of the observed info hashes).
"""

from repro.bittorrent.catalog import TorrentCatalog, TorrentContent, TRACKERS
from repro.bittorrent.titledb import TitleDatabase

__all__ = ["TorrentCatalog", "TorrentContent", "TRACKERS", "TitleDatabase"]
