"""Title-resolution database (stand-in for the torrentz.eu crawl).

The paper resolves info hashes seen in announce requests to torrent
titles by crawling public torrent indexes, succeeding for 77.4 % of
the hashes.  The stand-in indexes a catalog subset at the same rate,
deterministically.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable

from repro.bittorrent.catalog import TorrentCatalog, TorrentContent

DEFAULT_RESOLVE_RATE = 0.774


class TitleDatabase:
    """info_hash → title lookup with a calibrated miss rate."""

    def __init__(
        self,
        catalog: TorrentCatalog,
        resolve_rate: float = DEFAULT_RESOLVE_RATE,
    ):
        if not 0.0 <= resolve_rate <= 1.0:
            raise ValueError(f"bad resolve rate: {resolve_rate}")
        self.resolve_rate = resolve_rate
        self._index: dict[str, TorrentContent] = {}
        for content in catalog.contents:
            # Deterministic per-hash inclusion at the target rate.
            draw = (zlib.crc32(content.info_hash.encode()) & 0xFFFF) / 0x10000
            if draw < resolve_rate:
                self._index[content.info_hash] = content

    def __len__(self) -> int:
        return len(self._index)

    def resolve(self, info_hash: str) -> str | None:
        """The title, or None when the crawl never indexed this hash."""
        content = self._index.get(info_hash)
        return content.title if content else None

    def resolve_many(
        self, hashes: Iterable[str]
    ) -> tuple[dict[str, str], list[str]]:
        """Resolve a batch; returns (resolved map, unresolved list)."""
        resolved: dict[str, str] = {}
        unresolved: list[str] = []
        for info_hash in hashes:
            title = self.resolve(info_hash)
            if title is None:
                unresolved.append(info_hash)
            else:
                resolved[info_hash] = title
        return resolved, unresolved
