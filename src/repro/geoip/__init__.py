"""Synthetic IPv4 geolocation substrate.

The paper geolocates destination IP addresses with the Maxmind GeoIP
country database (Table 11) and uses a published list of Israeli
subnets (Table 12).  Neither resource is available offline, so this
package provides a synthetic registry: country-level CIDR allocations
(including the exact Israeli subnets the paper reports) compiled into
an interval database with vectorized longest-prefix lookup.
"""

from repro.geoip.builtin import ISRAELI_SUBNETS, builtin_registry
from repro.geoip.database import GeoIPDatabase

__all__ = ["GeoIPDatabase", "builtin_registry", "ISRAELI_SUBNETS"]
