"""Interval database mapping IPv4 addresses to country codes."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.net.ip import IPv4Network, parse_ipv4

UNKNOWN_COUNTRY = "??"


class GeoIPDatabase:
    """Country lookup over non-overlapping CIDR allocations.

    Built once from ``(network, country)`` pairs; lookups run in
    O(log n) per address, or vectorized over numpy arrays of integer
    addresses via :meth:`lookup_many`.
    """

    def __init__(self, allocations: Iterable[tuple[IPv4Network, str]]):
        entries = sorted(allocations, key=lambda item: item[0].network)
        self._starts = np.array([net.first for net, _ in entries], dtype=np.int64)
        self._ends = np.array([net.last for net, _ in entries], dtype=np.int64)
        self._countries = np.array([country for _, country in entries], dtype=object)
        self._networks = [net for net, _ in entries]
        for i in range(1, len(entries)):
            if self._starts[i] <= self._ends[i - 1]:
                raise ValueError(
                    "overlapping allocations: "
                    f"{self._networks[i - 1]} and {self._networks[i]}"
                )

    def __len__(self) -> int:
        return len(self._networks)

    @property
    def countries(self) -> set[str]:
        """Every country with at least one allocation."""
        return set(self._countries.tolist())

    def networks_of(self, country: str) -> list[IPv4Network]:
        """All allocations registered to *country*."""
        return [
            net
            for net, owner in zip(self._networks, self._countries)
            if owner == country
        ]

    def lookup(self, address: int | str) -> str:
        """Country code of one address (``"??"`` when unallocated)."""
        if isinstance(address, str):
            address = parse_ipv4(address)
        index = int(np.searchsorted(self._starts, address, side="right")) - 1
        if index < 0 or address > self._ends[index]:
            return UNKNOWN_COUNTRY
        return str(self._countries[index])

    def lookup_many(self, addresses: np.ndarray | Sequence[int]) -> np.ndarray:
        """Vectorized lookup of integer addresses.

        Returns an object array of country codes aligned with the
        input; unallocated addresses map to ``"??"``.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        indices = np.searchsorted(self._starts, addrs, side="right") - 1
        clipped = np.clip(indices, 0, max(len(self._networks) - 1, 0))
        if len(self._networks) == 0:
            return np.full(len(addrs), UNKNOWN_COUNTRY, dtype=object)
        valid = (indices >= 0) & (addrs <= self._ends[clipped])
        result = np.full(len(addrs), UNKNOWN_COUNTRY, dtype=object)
        result[valid] = self._countries[clipped[valid]]
        return result
