"""Built-in synthetic registry of country allocations.

The Israeli subnets are the exact blocks the paper reports in
Table 12; the remaining allocations are synthetic blocks for every
country appearing in Table 11 plus common hosting countries, chosen
from address space that does not collide with the Israeli blocks or
with the proxy/ client ranges the simulator uses.
"""

from __future__ import annotations

from repro.geoip.database import GeoIPDatabase
from repro.net.ip import IPv4Network, parse_network

# Table 12 of the paper: the top censored Israeli subnets.
ISRAELI_SUBNETS: tuple[IPv4Network, ...] = (
    parse_network("84.229.0.0/16"),
    parse_network("46.120.0.0/15"),
    parse_network("89.138.0.0/15"),
    parse_network("212.235.64.0/19"),
    parse_network("212.150.0.0/16"),
)

# Synthetic allocations for countries the analyses need.  Country codes
# are ISO 3166-1 alpha-2; Table 11 reports Israel, Kuwait, Russia, UK,
# Netherlands, Singapore and Bulgaria, and we add the usual hosting
# countries so that the D_IPv4 population is realistic.
_SYNTHETIC_ALLOCATIONS: tuple[tuple[str, str], ...] = (
    ("IL", "84.229.0.0/16"),
    ("IL", "46.120.0.0/15"),
    ("IL", "89.138.0.0/15"),
    ("IL", "212.235.64.0/19"),
    ("IL", "212.150.0.0/16"),
    ("IL", "79.176.0.0/13"),
    ("IL", "109.64.0.0/13"),
    ("KW", "168.187.0.0/16"),
    ("RU", "95.24.0.0/13"),
    ("RU", "178.64.0.0/11"),
    ("GB", "81.128.0.0/12"),
    ("GB", "212.58.224.0/19"),
    ("NL", "145.0.0.0/11"),
    ("NL", "77.160.0.0/13"),
    ("SG", "203.116.0.0/16"),
    ("BG", "87.120.0.0/14"),
    ("US", "8.0.0.0/8"),
    ("US", "64.0.0.0/10"),
    ("US", "204.0.0.0/8"),
    ("DE", "91.0.0.0/10"),
    ("FR", "90.0.0.0/9"),
    ("SY", "82.137.192.0/18"),
    ("SY", "31.9.0.0/16"),
    ("SA", "188.48.0.0/13"),
    ("EG", "41.32.0.0/12"),
    ("TR", "78.160.0.0/11"),
    ("JO", "80.90.160.0/19"),
    ("LB", "178.135.0.0/16"),
    ("CN", "58.16.0.0/13"),
    ("JP", "126.0.0.0/8"),
    ("UA", "93.72.0.0/13"),
    ("SE", "78.64.0.0/12"),
)


def builtin_registry() -> GeoIPDatabase:
    """Compile the built-in registry into a lookup database."""
    return GeoIPDatabase(
        (parse_network(block), country) for country, block in _SYNTHETIC_ALLOCATIONS
    )


COUNTRY_NAMES: dict[str, str] = {
    "IL": "Israel",
    "KW": "Kuwait",
    "RU": "Russian Federation",
    "GB": "United Kingdom",
    "NL": "Netherlands",
    "SG": "Singapore",
    "BG": "Bulgaria",
    "US": "United States",
    "DE": "Germany",
    "FR": "France",
    "SY": "Syria",
    "SA": "Saudi Arabia",
    "EG": "Egypt",
    "TR": "Turkey",
    "JO": "Jordan",
    "LB": "Lebanon",
    "CN": "China",
    "JP": "Japan",
    "UA": "Ukraine",
    "SE": "Sweden",
    "??": "Unknown",
}
