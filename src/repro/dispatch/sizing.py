"""Adaptive chunk sizing: how many leases a worker claims per cycle.

A lease is a promise to finish work before a deadline, so the right
claim size is a function of measured shard throughput: claim so much
that the chunk completes in a comfortable fraction of the TTL, and no
more — over-claiming is exactly what turns one slow worker into a
stalled run (its surplus shards sit leased-but-idle until expiry).

The estimator is an exponential moving average of observed per-shard
wall seconds (the same measurement the per-shard
:class:`~repro.metrics.ShardMetrics` rows record), deliberately simple
and deterministic: no wall-clock reads of its own, no randomness —
feed it the same observations and it sizes the same chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AdaptiveChunker:
    """EMA-driven chunk sizing against a wall-time budget.

    ``target_seconds`` is the work a chunk should amount to (the
    dispatcher uses half the lease TTL, leaving the other half as
    renewal slack).  Until the first observation arrives the chunker
    claims one shard at a time — the probe that seeds the estimate.
    """

    target_seconds: float
    min_chunk: int = 1
    max_chunk: int = 8
    alpha: float = 0.4
    _mean_seconds: float | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.target_seconds <= 0:
            raise ValueError(
                f"target_seconds must be > 0, got {self.target_seconds}"
            )
        if not 1 <= self.min_chunk <= self.max_chunk:
            raise ValueError(
                f"need 1 <= min_chunk <= max_chunk, got "
                f"{self.min_chunk}..{self.max_chunk}"
            )

    @property
    def mean_seconds(self) -> float | None:
        """The current per-shard wall-time estimate (None = unseeded)."""
        return self._mean_seconds

    def observe(self, wall_seconds: float) -> None:
        """Fold one completed shard's wall time into the estimate."""
        wall_seconds = max(0.0, wall_seconds)
        if self._mean_seconds is None:
            self._mean_seconds = wall_seconds
        else:
            self._mean_seconds += self.alpha * (
                wall_seconds - self._mean_seconds
            )

    def chunk_size(self) -> int:
        """How many shards to lease in the next claim cycle."""
        if not self._mean_seconds:  # unseeded, or shards too fast to time
            return self.min_chunk
        fitting = int(self.target_seconds / self._mean_seconds)
        return max(self.min_chunk, min(self.max_chunk, fitting))
