"""The dispatch coordinator: seed the queue, watch the ledger, merge.

``repro run-distributed`` drives this module.  The coordinator is the
only process that takes the run ledger's ``LOCK`` — it owns the run's
identity (manifest fingerprint, shard plan) for the whole campaign,
while workers only ever append to the shared journal and the lease
queue.  Its loop is deliberately thin:

1. open the ledger (:class:`~repro.runstate.RunCheckpoint`) — fresh or
   ``--resume`` — and seed ``queue/QUEUE.json`` with the job spec;
2. optionally spawn N local ``repro work`` subprocesses (``--spawn``;
   0 means workers are started elsewhere, e.g. other boxes sharing the
   directory);
3. poll the journal until every planned shard is recorded, reclaiming
   expired leases as a backstop for workers that died holding one;
4. if every spawned worker exited with shards still pending, finish
   the remainder inline (the coordinator is always a capable worker, so
   a local run can never stall on worker churn);
5. verify every artifact's checksum, fold the stored per-shard
   registries and the queue's lease counters into the metrics
   registry, and merge results in shard-plan order.

Step 5 is where byte-identity comes from: the merge consumes verified
artifacts in the same label order ``run_sharded`` returns results, so
the written output is identical to ``--workers N`` on one box — no
matter how many workers ran, died, or ran a shard twice.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.dispatch.jobs import SimulateJob
from repro.dispatch.queue import (
    DispatchError,
    WorkQueue,
    lease_ttl_from_env,
)
from repro.metrics import MetricsRegistry, ShardMetrics
from repro.runstate import JOURNAL_NAME, RunCheckpoint, read_journal


@dataclass
class DistributedRun:
    """What a completed distributed run hands back to the CLI."""

    output: Any
    labels: list[str]
    resumed: int
    spawned: int
    counters: dict[str, int] = field(default_factory=dict)
    worker_exits: list[int] = field(default_factory=list)
    inline_shards: int = 0


def spawn_worker(
    directory: Path | str,
    worker_id: str,
    *,
    extra_env: dict[str, str] | None = None,
) -> subprocess.Popen:
    """Start one ``repro work`` subprocess on *directory*.

    The child inherits this interpreter and environment, with the
    repro package root prepended to ``PYTHONPATH`` so the spawn works
    from a source checkout without installation.  Worker stdout is
    discarded (the coordinator owns the console); stderr is inherited
    so a dying worker's traceback lands in the coordinator's log.
    """
    package_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{existing}" if existing
        else str(package_root)
    )
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "work", str(directory),
            "--worker-id", worker_id,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
    )


def run_distributed(
    job,
    directory: Path | str,
    *,
    spawn: int = 2,
    ttl: float | None = None,
    resume: bool = False,
    metrics: MetricsRegistry | None = None,
    poll_interval: float = 0.2,
    wait_timeout: float | None = None,
) -> DistributedRun:
    """Execute *job* over *directory* with leased workers and merge.

    *spawn* local workers are started (0 = rely on externally started
    ``repro work`` processes); *ttl* is the lease time-to-live
    (default: ``REPRO_LEASE_TTL`` or 30 s); *wait_timeout* bounds the
    whole wait for completion — mainly a guard for ``--spawn 0`` runs
    whose external workers never appear.
    """
    directory = Path(directory)
    if spawn < 0:
        raise ValueError(f"spawn must be >= 0, got {spawn}")
    if ttl is None:
        ttl = lease_ttl_from_env()
    labels = job.labels()
    checkpoint = RunCheckpoint(directory, job.fingerprint(), resume=resume)
    resumed = checkpoint.begin(labels)
    queue = WorkQueue(directory, worker_id=f"coordinator:{os.getpid()}")
    procs: list[subprocess.Popen] = []
    inline_shards = 0
    try:
        queue.seed(job.to_spec(), ttl=ttl, resume=resume)
        procs = [
            spawn_worker(directory, f"spawn-{index}:{os.getpid()}")
            for index in range(spawn)
        ]
        journal_path = directory / JOURNAL_NAME
        started = time.time()
        while True:
            done = set(read_journal(journal_path))
            pending = [label for label in labels if label not in done]
            if not pending:
                break
            for label in pending:
                queue.reclaim_expired(label)
            if procs and all(p.poll() is not None for p in procs):
                # Every spawned worker is gone with work remaining —
                # churn ate the whole fleet.  The coordinator finishes
                # the job itself rather than waiting for nobody.
                from repro.dispatch.worker import run_worker

                summary = run_worker(
                    directory,
                    worker_id=f"coordinator-inline:{os.getpid()}",
                    poll_interval=poll_interval,
                )
                inline_shards += summary.executed
                continue
            if (
                wait_timeout is not None
                and time.time() - started >= wait_timeout
            ):
                raise DispatchError(
                    f"distributed run incomplete after {wait_timeout:g}s: "
                    f"{len(pending)} shard(s) pending "
                    f"({', '.join(pending[:5])}{'…' if len(pending) > 5 else ''})"
                )
            time.sleep(poll_interval)

        verified = checkpoint.load_completed(labels)
        damaged = [label for label in labels if label not in verified]
        if damaged:
            raise DispatchError(
                "journal claims completion but these artifacts failed "
                f"verification: {', '.join(damaged)} — run "
                f"'repro verify-run {directory}' for details"
            )
        counters = queue.event_counters()
        if metrics is not None:
            _fold_metrics(metrics, verified, labels, len(resumed), counters)
        output = job.merge([verified[label].result for label in labels])
        return DistributedRun(
            output=output,
            labels=labels,
            resumed=len(resumed),
            spawned=spawn,
            counters=counters,
            worker_exits=[p.wait() for p in procs],
            inline_shards=inline_shards,
        )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        checkpoint.close()


def _fold_metrics(
    metrics: MetricsRegistry,
    verified: dict,
    labels: list[str],
    resumed_count: int,
    counters: dict[str, int],
) -> None:
    """Aggregate distributed shard metrics exactly like a single-box
    instrumented run: stored worker registries merge in shard order,
    one :class:`ShardMetrics` row per shard, plus the lease counters
    derived from the queue's event journal."""
    for label in labels:
        artifact = verified[label]
        if isinstance(artifact.registry, MetricsRegistry):
            metrics.merge(artifact.registry)
        metrics.add_shard(ShardMetrics(
            shard_id=label,
            records=artifact.records,
            wall_seconds=artifact.wall_seconds,
            worker_pid=0,
        ))
    if resumed_count:
        metrics.inc("engine.shards.resumed", resumed_count)
    for name, value in sorted(counters.items()):
        if value:
            metrics.inc(name, value)


def simulate_job_for(
    config,
    out_dir: Path | str,
    *,
    per_proxy: bool = False,
    per_day: bool = False,
    compress: bool = False,
    batch_size: int | None = None,
) -> SimulateJob:
    """Convenience constructor the CLI and tests share."""
    return SimulateJob(
        config=config,
        out_dir=str(out_dir),
        per_proxy=per_proxy,
        per_day=per_day,
        compress=compress,
        batch_size=batch_size,
    )
