"""The dispatch worker: claim, heartbeat, execute, record, release.

``repro work DIR`` runs this loop.  A worker is deliberately dumb and
stateless — everything it knows comes from the shared directory:

1. wait for the coordinator's ``queue/QUEUE.json`` and rebuild the job
   (config, shard plan, task) from it — every worker derives the same
   ordered shard labels and payloads;
2. claim a chunk of unfinished shards (``O_EXCL`` lease files; chunk
   size adapts to measured shard throughput via
   :class:`~repro.dispatch.sizing.AdaptiveChunker`);
3. renew the held leases from a background heartbeat thread while the
   shards execute under the engine's retry policy and fault plan;
4. record each finished shard into the run ledger exactly as a
   single-box checkpointed run would (atomic checksummed artifact,
   then an fsync'd journal line), then release the lease;
5. exit once every planned shard is journaled.

Step 4 before step 5 is the crash-safety argument: a worker that dies
*after* recording has merely leaked a lease (reclaimed by TTL, and the
next claimant sees the shard journaled and skips it); a worker that
dies *before* recording loses nothing but time — the lease expires and
the shard re-runs elsewhere.  Since every shard replays a
deterministic stream, a shard that runs twice writes identical
artifact bytes, and the journal's last-entry-wins read keeps the merge
single-valued.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dispatch.jobs import job_from_spec
from repro.dispatch.queue import (
    DispatchError,
    LeaseLost,
    WorkQueue,
    heartbeat_interval_from_env,
)
from repro.dispatch.sizing import AdaptiveChunker
from repro.engine.pool import (
    RetryPolicy,
    ShardError,
    _Instrumented,
    _run_attempt,
    _shard_records,
)
from repro.faults import fault_point, plan_from_env, use_fault_plan
from repro.metrics import MetricsRegistry, ShardMetrics
from repro.runstate import JOURNAL_NAME, RunCheckpoint, read_journal


@dataclass
class WorkerSummary:
    """What one worker did, for logs and the ``work`` CLI."""

    worker_id: str
    executed: int = 0
    requeued: int = 0
    lost: int = 0
    records: int = 0
    wall_seconds: float = 0.0
    shards: list[str] = field(default_factory=list)


class _Heartbeat:
    """Background renewal of the leases a worker currently holds.

    The worker registers each claimed lease and withdraws it just
    before release; the thread renews everything registered every
    *interval* seconds.  A renewal that discovers the lease was
    reclaimed (this worker was presumed dead) drops it and counts a
    loss — the shard may run twice, which determinism makes harmless.
    """

    def __init__(self, queue: WorkQueue, interval: float):
        self.queue = queue
        self.interval = interval
        self.lost: list[str] = []
        self._leases: dict = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                held = list(self._leases.items())
            for shard_id, lease in held:
                try:
                    renewed = self.queue.renew(lease)
                except LeaseLost:
                    with self._lock:
                        self._leases.pop(shard_id, None)
                    self.lost.append(shard_id)
                except OSError:
                    continue  # transient fs trouble; retry next beat
                else:
                    with self._lock:
                        if shard_id in self._leases:
                            self._leases[shard_id] = renewed

    def hold(self, lease) -> None:
        with self._lock:
            self._leases[lease.shard_id] = lease

    def drop(self, shard_id: str):
        """Withdraw a lease from renewal; returns its freshest copy
        (the heartbeat may have renewed it since the claim)."""
        with self._lock:
            return self._leases.pop(shard_id, None)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(
    directory: Path | str,
    *,
    worker_id: str | None = None,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    fault_plan=None,
    poll_interval: float = 0.2,
    startup_timeout: float | None = None,
    heartbeat_interval: float | None = None,
    max_idle: float | None = None,
) -> WorkerSummary:
    """Work the queue at *directory* until every planned shard is done.

    *startup_timeout* bounds the wait for a coordinator to seed the
    queue; *max_idle* bounds how long the worker idles while other
    workers hold every remaining lease (``None`` trusts lease expiry
    for liveness and waits indefinitely).  A shard that fails its whole
    retry budget is released back to the queue (a ``requeue`` event)
    and the worker exits with :class:`~repro.engine.pool.ShardError` —
    strict semantics, matching the single-box default.
    """
    directory = Path(directory)
    queue = WorkQueue(directory, worker_id)
    manifest = queue.wait_for_manifest(timeout=startup_timeout)
    job = job_from_spec(manifest["job"])
    ttl = queue.ttl()
    if heartbeat_interval is None:
        heartbeat_interval = heartbeat_interval_from_env(
            max(ttl / 3.0, 0.05)
        )
    if retry is None:
        retry = RetryPolicy.from_env()
    if fault_plan is None:
        fault_plan = plan_from_env()

    labels = job.labels()
    payloads = job.payloads()
    task = _Instrumented(job.task())
    # A lock-less RunCheckpoint: record() only appends to the shared
    # journal and writes pid-unique artifacts, so workers share the
    # ledger without touching the coordinator's LOCK.
    ledger = RunCheckpoint(directory, job.fingerprint())
    chunker = AdaptiveChunker(target_seconds=max(ttl / 2.0, 0.01))
    summary = WorkerSummary(worker_id=queue.worker_id)
    journal_path = directory / JOURNAL_NAME
    idle_since: float | None = None

    def publish(state: str, holding: list[str]) -> None:
        queue.write_worker_status({
            "state": state,
            "executed": summary.executed,
            "requeued": summary.requeued,
            "lost": summary.lost,
            "records": summary.records,
            "holding": holding,
            "heartbeat_interval": heartbeat_interval,
        })

    while True:
        done = set(read_journal(journal_path))
        remaining = [label for label in labels if label not in done]
        if not remaining:
            break
        leases = queue.claim_chunk(remaining, chunker.chunk_size())
        if not leases:
            now = time.time()
            idle_since = idle_since or now
            if max_idle is not None and now - idle_since >= max_idle:
                raise DispatchError(
                    f"worker {queue.worker_id} idled {max_idle:g}s with "
                    f"{len(remaining)} shard(s) still leased elsewhere"
                )
            publish("idle", [])
            time.sleep(poll_interval)
            continue
        idle_since = None
        publish("running", [lease.shard_id for lease in leases])
        with _Heartbeat(queue, heartbeat_interval) as heartbeat:
            for lease in leases:
                heartbeat.hold(lease)
                run = _execute_shard(
                    queue, lease, task, payloads[lease.shard_id],
                    retry, fault_plan, heartbeat, summary, metrics,
                )
                ledger.record(
                    lease.shard_id, run.result,
                    records=_shard_records(run),
                    wall_seconds=run.wall_seconds,
                    registry=run.registry,
                )
                current = heartbeat.drop(lease.shard_id) or lease
                queue.release(current, completed=True)
                chunker.observe(run.wall_seconds)
                summary.executed += 1
                summary.records += _shard_records(run)
                summary.wall_seconds += run.wall_seconds
                summary.shards.append(lease.shard_id)
                if metrics is not None:
                    metrics.merge(run.registry)
                    metrics.add_shard(ShardMetrics(
                        shard_id=lease.shard_id,
                        records=_shard_records(run),
                        wall_seconds=run.wall_seconds,
                        worker_pid=run.worker_pid,
                    ))
                    metrics.inc("dispatch.shards.executed")
            summary.lost += len(heartbeat.lost)
    publish("done", [])
    return summary


def _execute_shard(
    queue, lease, task, payload, retry, fault_plan, heartbeat, summary,
    metrics,
):
    """One leased shard through the engine's retry loop.

    The ``worker.kill`` fault site fires first, under the *lease*
    attempt — the chaos harness's hook for killing a worker that has
    just claimed a shard, which is precisely the state a reclaim must
    recover from.  Execution attempts then run under
    ``lease.attempt + local_attempt``, so retry gating stays monotone
    across reclaims exactly as it is across single-box retries.
    """
    if fault_plan is not None:
        with use_fault_plan(
            fault_plan, shard_id=lease.shard_id, attempt=lease.attempt
        ):
            fault_point("worker.kill")
    attempt = 0
    while True:
        try:
            return _run_attempt(
                task, payload, lease.shard_id,
                lease.attempt + attempt, fault_plan,
            )
        except Exception as error:
            if attempt < retry.max_retries:
                if metrics is not None:
                    metrics.inc("engine.shard_retries")
                time.sleep(retry.backoff_seconds(attempt))
                attempt += 1
                continue
            current = heartbeat.drop(lease.shard_id) or lease
            queue.release(current, completed=False)
            summary.requeued += 1
            raise ShardError(lease.shard_id, error) from error
