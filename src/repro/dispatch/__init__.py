"""Distributed shard execution: lease queue, workers, coordinator.

Promotes the crash-safe run ledger (:mod:`repro.runstate`) into a
multi-process coordination substrate: a coordinator seeds a job into a
shared directory, N independent ``repro work`` processes lease shards
via atomic ``O_EXCL`` lease files, renew heartbeats while executing,
and record completions into the shared journal; expired leases are
reclaimed so a SIGKILLed or wedged worker's shard re-runs elsewhere.
Results merge in shard-plan order, so output is byte-identical to a
single-box ``--workers N`` run at every worker count and under churn.

Environment knobs: ``REPRO_LEASE_TTL`` (lease time-to-live, seconds)
and ``REPRO_HEARTBEAT_INTERVAL`` (renewal cadence; default TTL/3).
"""

from repro.dispatch.coordinator import (
    DistributedRun,
    run_distributed,
    simulate_job_for,
    spawn_worker,
)
from repro.dispatch.jobs import (
    AnalyzeJob,
    SimulateJob,
    config_from_spec,
    job_from_spec,
)
from repro.dispatch.queue import (
    DEFAULT_LEASE_TTL,
    EVENT_COUNTERS,
    QUEUE_SCHEMA,
    DispatchError,
    Lease,
    LeaseLost,
    QueueMismatch,
    WorkQueue,
    heartbeat_interval_from_env,
    lease_ttl_from_env,
)
from repro.dispatch.sizing import AdaptiveChunker
from repro.dispatch.worker import WorkerSummary, run_worker

__all__ = [
    "AdaptiveChunker",
    "AnalyzeJob",
    "DEFAULT_LEASE_TTL",
    "DispatchError",
    "DistributedRun",
    "EVENT_COUNTERS",
    "Lease",
    "LeaseLost",
    "QUEUE_SCHEMA",
    "QueueMismatch",
    "SimulateJob",
    "WorkQueue",
    "WorkerSummary",
    "config_from_spec",
    "heartbeat_interval_from_env",
    "job_from_spec",
    "lease_ttl_from_env",
    "run_distributed",
    "run_worker",
    "simulate_job_for",
    "spawn_worker",
]
