"""Job specs: what a distributed run executes, serialized for workers.

A :class:`JobSpec` is the queue's unit of agreement between the
coordinator and every worker: the same JSON dict that the coordinator
seeds into ``queue/QUEUE.json`` is what a worker reconstructs its
shard plan from, so both sides derive the *identical* ordered shard
labels, payloads, and task callable — that determinism is half of the
byte-identity guarantee (the other half is the sinks' merge laws).

Two kinds exist, mirroring the engine's two shard shapes:

* ``simulate`` — one shard per log-day; the task is
  :func:`repro.engine.simulate.simulate_sink_shard` and the merged
  sinks write an ELFF directory exactly like ``repro simulate``;
* ``analyze`` — one shard per log file; the task is
  :func:`repro.engine.analyze.analyze_shard` and the merge folds
  the per-file accumulators in input order.

A spec also owns the run *fingerprint* — deliberately identical to
the one the single-box CLI writes, so a ledger produced by
``run-distributed`` verifies and resumes under ``repro simulate
--resume`` and vice versa.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from repro.dispatch.queue import DispatchError
from repro.runstate import config_digest, run_fingerprint
from repro.workload.config import ScenarioConfig


@dataclass(frozen=True)
class SimulateJob:
    """A distributed ``simulate``: every log-day as one leased shard."""

    config: ScenarioConfig
    out_dir: str
    per_proxy: bool = False
    per_day: bool = False
    compress: bool = False
    batch_size: int | None = None

    kind = "simulate"

    def fingerprint(self) -> dict:
        # Identical facets to the simulate CLI so the two ledgers are
        # interchangeable (distributed seed, serial resume, and back).
        return run_fingerprint(
            "simulate",
            config=config_digest(self.config),
            regime=self.config.regime,
            per_proxy=self.per_proxy,
            per_day=self.per_day,
            compress=self.compress,
        )

    def labels(self) -> list[str]:
        from repro.engine.shards import plan_shards

        return [shard.shard_id for shard in plan_shards(self.config).shards]

    def payloads(self) -> dict[str, Any]:
        from repro.engine.shards import plan_shards
        from repro.pipeline import GroupedElffSink

        prototype = GroupedElffSink(
            per_proxy=self.per_proxy,
            per_day=self.per_day,
            compress=self.compress,
        )
        return {
            shard.shard_id: (self.config, shard.day, shard.seed, prototype)
            for shard in plan_shards(self.config).shards
        }

    def task(self):
        from repro.engine.simulate import simulate_sink_shard

        if self.batch_size is None:
            return simulate_sink_shard
        return partial(simulate_sink_shard, batch_size=self.batch_size)

    def merge(self, results: list) -> list[tuple[Path, int]]:
        """Fold the per-day sinks in day order and write the ELFF
        directory — the same reduce ``simulate_to_logs`` performs, so
        the bytes match a single-box run at any worker count."""
        from repro.pipeline import GroupedElffSink

        merged = GroupedElffSink(
            per_proxy=self.per_proxy,
            per_day=self.per_day,
            compress=self.compress,
        )
        for part in results:
            merged.merge(part)
        return merged.write_dir(Path(self.out_dir))

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "config": dataclasses.asdict(self.config),
            "out_dir": self.out_dir,
            "per_proxy": self.per_proxy,
            "per_day": self.per_day,
            "compress": self.compress,
            "batch_size": self.batch_size,
        }


@dataclass(frozen=True)
class AnalyzeJob:
    """A distributed streaming ``analyze``: one shard per log file."""

    logs: tuple[str, ...]
    regime: str = "syria"
    batch_size: int | None = None

    kind = "analyze"

    def fingerprint(self) -> dict:
        paths = [Path(log) for log in self.logs]
        return run_fingerprint(
            "analyze-streaming",
            logs=[str(path) for path in paths],
            sizes=[path.stat().st_size for path in paths],
            regime=self.regime,
        )

    def labels(self) -> list[str]:
        return [f"log:{Path(log).name}" for log in self.logs]

    def payloads(self) -> dict[str, Any]:
        return dict(zip(self.labels(), [str(log) for log in self.logs]))

    def task(self):
        from repro.engine.analyze import analyze_shard

        if self.batch_size is None:
            return analyze_shard
        return partial(analyze_shard, batch_size=self.batch_size)

    def merge(self, results: list):
        """Fold (analysis, stats) pairs in input order — the reduce
        :func:`repro.engine.analyze.analyze_logs` performs."""
        from repro.analysis.streaming import StreamingAnalysis
        from repro.logmodel.elff import ReadStats

        analysis = StreamingAnalysis()
        stats = ReadStats()
        for part_analysis, part_stats in results:
            analysis += part_analysis
            stats += part_stats
        return analysis, stats

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "logs": list(self.logs),
            "regime": self.regime,
            "batch_size": self.batch_size,
        }


def config_from_spec(data: dict) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from its JSON form (tuples
    come back from JSON as lists and must be re-frozen)."""
    fields = {field.name for field in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - fields
    if unknown:
        raise DispatchError(
            f"job spec carries unknown config fields {sorted(unknown)} — "
            "was it written by a newer build?"
        )
    kwargs = dict(data)
    if "days" in kwargs:
        kwargs["days"] = tuple(kwargs["days"])
    if "boosts" in kwargs:
        kwargs["boosts"] = {
            str(k): float(v) for k, v in kwargs["boosts"].items()
        }
    return ScenarioConfig(**kwargs)


def job_from_spec(spec: dict) -> "SimulateJob | AnalyzeJob":
    """Reconstruct the job a queue manifest describes."""
    kind = spec.get("kind")
    if kind == "simulate":
        return SimulateJob(
            config=config_from_spec(spec["config"]),
            out_dir=str(spec["out_dir"]),
            per_proxy=bool(spec.get("per_proxy", False)),
            per_day=bool(spec.get("per_day", False)),
            compress=bool(spec.get("compress", False)),
            batch_size=spec.get("batch_size"),
        )
    if kind == "analyze":
        return AnalyzeJob(
            logs=tuple(str(log) for log in spec.get("logs", ())),
            regime=str(spec.get("regime", "syria")),
            batch_size=spec.get("batch_size"),
        )
    raise DispatchError(
        f"unknown job kind {kind!r} in queue manifest — "
        "this build dispatches 'simulate' and 'analyze'"
    )
