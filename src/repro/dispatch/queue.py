"""The lease queue: atomic shard leases over a shared ledger directory.

``repro.runstate`` already gives a run a durable identity (manifest),
a crash-safe completion record (journal + checksummed artifacts), and
a single-writer lock.  This module adds the one thing N *independent
processes* need to share that ledger safely: a claim protocol.  The
queue lives inside the checkpoint directory::

    <dir>/queue/QUEUE.json           the job spec + lease TTL (atomic)
    <dir>/queue/leases/<slug>.lease  one live lease per in-flight shard
    <dir>/queue/events.jsonl         append-only fsync'd lease history
    <dir>/queue/workers/<slug>.json  per-worker status (atomic)

Every coordination step reduces to a filesystem primitive POSIX makes
atomic, so there is no daemon and no socket between workers:

* **claim** — ``open(lease, O_CREAT | O_EXCL)``: exactly one winner,
  no matter how many workers race for the shard.
* **renew** — rewrite the lease via a pid-unique tmp + ``os.replace``
  with a pushed-out deadline: readers always see a whole lease.
* **reclaim** — an expired lease is renamed aside to a pid-unique tomb
  before the shard is re-claimed; ``os.rename`` succeeds for exactly
  one contender, so a dead worker's shard is re-leased exactly once.
* **events** — every grant/renew/expire/reclaim/requeue/complete
  appends one fsync'd JSON line via
  :func:`repro.runstate.append_journal_entry` (single ``O_APPEND``
  write — whole lines, any number of writers), which is where the
  ``dispatch.*`` metrics counters come from.

Completion itself is *not* the queue's job: a worker records a
finished shard into the run ledger's ``journal.jsonl``/``artifacts/``
exactly like a single-box checkpointed run, so ``repro verify-run``
and ``--resume`` work unchanged on a distributed directory, and the
merged output is byte-identical to a serial run.

Known benign races (documented, not defended): a worker that renews or
releases *after* its lease already expired can clobber a successor's
lease.  The window is one poll interval after an expiry that already
implies the worker missed every heartbeat; the consequence is one
shard running twice, and since shards are deterministic and the
journal is last-entry-wins, the output bytes are unaffected.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.runstate import append_journal_entry

#: Version tag of the queue layout; a manifest with a different tag is
#: refused rather than misread.
QUEUE_SCHEMA = "repro.dispatch/1"

QUEUE_DIR = "queue"
QUEUE_MANIFEST_NAME = "QUEUE.json"
LEASE_DIR = "leases"
EVENTS_NAME = "events.jsonl"
WORKER_DIR = "workers"

#: How long a lease lives without a heartbeat renewal.
DEFAULT_LEASE_TTL = 30.0

#: Lease events and the metrics counters they aggregate into.
EVENT_COUNTERS = {
    "grant": "dispatch.lease.granted",
    "renew": "dispatch.lease.renewed",
    "expire": "dispatch.lease.expired",
    "reclaim": "dispatch.lease.reclaimed",
    "requeue": "dispatch.shards.requeued",
    "complete": "dispatch.shards.completed",
    "lost": "dispatch.lease.lost",
}


class DispatchError(RuntimeError):
    """Base class for distributed-dispatch failures."""


class QueueMismatch(DispatchError):
    """The queue directory was seeded for a different job."""


class LeaseLost(DispatchError):
    """A lease this worker thought it held belongs to someone else —
    the worker was presumed dead and its shard reclaimed."""


def _env_seconds(name: str) -> float | None:
    """Parse an optional seconds knob; errors name the variable."""
    text = os.environ.get(name)
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive number of seconds, got {text!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"{name} must be a positive number of seconds, got {text!r}"
        )
    return value


def lease_ttl_from_env(default: float = DEFAULT_LEASE_TTL) -> float:
    """The lease TTL, honouring ``REPRO_LEASE_TTL``."""
    return _env_seconds("REPRO_LEASE_TTL") or default


def heartbeat_interval_from_env(default: float) -> float:
    """The renewal cadence, honouring ``REPRO_HEARTBEAT_INTERVAL``."""
    return _env_seconds("REPRO_HEARTBEAT_INTERVAL") or default


def _slug(text: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_")
    return cleaned or "x"


@dataclass(frozen=True)
class Lease:
    """One shard's claim: who holds it, until when, which attempt.

    ``attempt`` counts grants of this shard (0 on the first claim,
    +1 per reclaim/requeue) — it is the number fault rules gate on, so
    a ``worker.kill`` fault fires on the first claimant and spares the
    reclaiming one, exactly like a re-scheduled shard landing on a
    healthy node.
    """

    shard_id: str
    worker: str
    deadline: float
    attempt: int = 0
    granted_at: float = 0.0

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.deadline

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "worker": self.worker,
            "deadline": self.deadline,
            "attempt": self.attempt,
            "granted_at": self.granted_at,
        }


class WorkQueue:
    """Filesystem lease queue over one checkpoint directory.

    Construct one per process with that process's *worker_id* (defaults
    to ``<host>:<pid>``, which is unique among live workers).  All
    methods are safe to call concurrently from any number of processes
    on the same directory; none of them require the run ledger's
    ``LOCK`` (that stays with the coordinator).
    """

    def __init__(self, directory: Path | str, worker_id: str | None = None):
        self.directory = Path(directory)
        if worker_id is None:
            import socket

            worker_id = f"{socket.gethostname()}:{os.getpid()}"
        self.worker_id = worker_id
        self._manifest: dict | None = None

    # -- paths -------------------------------------------------------------

    @property
    def queue_dir(self) -> Path:
        return self.directory / QUEUE_DIR

    @property
    def manifest_path(self) -> Path:
        return self.queue_dir / QUEUE_MANIFEST_NAME

    @property
    def lease_dir(self) -> Path:
        return self.queue_dir / LEASE_DIR

    @property
    def events_path(self) -> Path:
        return self.queue_dir / EVENTS_NAME

    @property
    def worker_dir(self) -> Path:
        return self.queue_dir / WORKER_DIR

    def lease_path(self, shard_id: str) -> Path:
        import hashlib

        token = hashlib.sha256(shard_id.encode("utf-8")).hexdigest()[:8]
        return self.lease_dir / f"{_slug(shard_id)}-{token}.lease"

    # -- the queue manifest ------------------------------------------------

    def seed(self, job: dict, *, ttl: float, resume: bool = False) -> None:
        """Publish the job spec and lease TTL (coordinator side).

        A fresh seed writes ``QUEUE.json`` atomically; a resume
        verifies the existing manifest describes the *same* job, so a
        worker can never execute shards of run A against the spec of
        run B.
        """
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.lease_dir.mkdir(exist_ok=True)
        self.worker_dir.mkdir(exist_ok=True)
        manifest = {"schema": QUEUE_SCHEMA, "lease_ttl": ttl, "job": job}
        if self.manifest_path.exists():
            if not resume:
                raise DispatchError(
                    f"{self.manifest_path} already exists; pass --resume "
                    "to continue the queued run or choose a fresh directory"
                )
            existing = self.manifest()
            if existing.get("job") != json.loads(json.dumps(job)):
                raise QueueMismatch(
                    f"{self.directory} was queued for a different job; "
                    "refusing to re-seed it"
                )
            self._manifest = None
            return
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2) + "\n"
        )
        self._manifest = None

    def manifest(self) -> dict:
        """The queue manifest (cached after the first successful read)."""
        if self._manifest is None:
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise DispatchError(
                    f"unreadable queue manifest {self.manifest_path}: {error}"
                ) from error
            if manifest.get("schema") != QUEUE_SCHEMA:
                raise QueueMismatch(
                    f"{self.manifest_path} uses queue schema "
                    f"{manifest.get('schema')!r}, this build speaks "
                    f"{QUEUE_SCHEMA!r}"
                )
            self._manifest = manifest
        return self._manifest

    def wait_for_manifest(
        self, timeout: float | None = None, poll: float = 0.1
    ) -> dict:
        """Block until the coordinator has seeded the queue."""
        start = time.time()
        while True:
            if self.manifest_path.exists():
                return self.manifest()
            if timeout is not None and time.time() - start >= timeout:
                raise DispatchError(
                    f"no queue manifest appeared in {self.directory} "
                    f"within {timeout:g}s — is the coordinator running?"
                )
            time.sleep(poll)

    def ttl(self) -> float:
        value = self.manifest().get("lease_ttl")
        return float(value) if value else DEFAULT_LEASE_TTL

    # -- leases ------------------------------------------------------------

    def read_lease(self, shard_id: str) -> Lease | None:
        """The current lease on *shard_id*, live or expired, or None.

        An unparseable lease file (a claimant killed between the
        ``O_EXCL`` create and the write) is reported as an anonymous
        lease expiring one TTL after the file's mtime, so it ages out
        and gets reclaimed instead of wedging the shard forever.
        """
        path = self.lease_path(shard_id)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(text)
            return Lease(
                shard_id=str(data["shard_id"]),
                worker=str(data["worker"]),
                deadline=float(data["deadline"]),
                attempt=int(data.get("attempt", 0)),
                granted_at=float(data.get("granted_at", 0.0)),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                return None
            return Lease(
                shard_id=shard_id,
                worker="?",
                deadline=mtime + self.ttl(),
                granted_at=mtime,
            )

    def try_claim(self, shard_id: str, attempt: int = 0) -> Lease | None:
        """Claim *shard_id* for this worker; None if someone else holds
        it.  ``O_CREAT | O_EXCL`` picks exactly one winner."""
        now = time.time()
        lease = Lease(
            shard_id=shard_id,
            worker=self.worker_id,
            deadline=now + self.ttl(),
            attempt=attempt,
            granted_at=now,
        )
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(shard_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        try:
            os.write(fd, json.dumps(lease.to_dict()).encode("utf-8"))
            try:
                os.fsync(fd)
            except OSError:
                pass
        finally:
            os.close(fd)
        self._event("grant", shard_id, attempt=attempt)
        return lease

    def renew(self, lease: Lease) -> Lease:
        """Push the lease deadline out one TTL (the heartbeat).

        Raises :class:`LeaseLost` when the on-disk lease is no longer
        this worker's — the shard was reclaimed while we were away.
        """
        current = self.read_lease(lease.shard_id)
        if current is None or current.worker != self.worker_id:
            self._event("lost", lease.shard_id, attempt=lease.attempt)
            raise LeaseLost(
                f"lease on {lease.shard_id!r} now held by "
                f"{current.worker if current else 'nobody'} "
                f"(was {self.worker_id})"
            )
        renewed = replace(lease, deadline=time.time() + self.ttl())
        path = self.lease_path(lease.shard_id)
        atomic_write_bytes(
            path,
            json.dumps(renewed.to_dict()).encode("utf-8"),
            unique_tmp=True,
        )
        self._event("renew", lease.shard_id, attempt=lease.attempt)
        return renewed

    def release(self, lease: Lease, *, completed: bool = True) -> bool:
        """Drop a held lease after the shard settled.

        ``completed=True`` means the shard's result is already in the
        run ledger (a ``complete`` event); ``completed=False`` returns
        the shard to the pool for another worker (a ``requeue`` event —
        the retry-exhausted path).  Returns False when the lease was
        already reclaimed from us (nothing to release).
        """
        current = self.read_lease(lease.shard_id)
        if current is None or current.worker != self.worker_id:
            self._event("lost", lease.shard_id, attempt=lease.attempt)
            return False
        self.lease_path(lease.shard_id).unlink(missing_ok=True)
        self._event(
            "complete" if completed else "requeue",
            lease.shard_id,
            attempt=lease.attempt,
        )
        return True

    def reclaim_expired(self, shard_id: str, now: float | None = None) -> bool:
        """Tear down an expired lease so the shard can be re-claimed.

        The tomb-rename makes this race-free: when several processes
        spot the same expired lease, ``os.rename`` hands the tomb to
        exactly one of them (the rest see ENOENT), so the expiry and
        reclaim events are emitted exactly once per incarnation.
        """
        lease = self.read_lease(shard_id)
        if lease is None or not lease.expired(now):
            return False
        path = self.lease_path(shard_id)
        tomb = path.with_name(f"{path.name}.tomb-{os.getpid()}")
        try:
            os.rename(path, tomb)
        except FileNotFoundError:
            return False
        tomb.unlink(missing_ok=True)
        self._event("expire", shard_id, attempt=lease.attempt)
        self._event("reclaim", shard_id, attempt=lease.attempt)
        return True

    def claim_chunk(self, shard_ids, limit: int) -> list[Lease]:
        """Claim up to *limit* shards from *shard_ids*, reclaiming any
        expired leases met along the way.

        The grant attempt is derived from the event history (one past
        grant ⇒ attempt 1, …), so it survives any interleaving of
        claimants — whoever wins the ``O_EXCL`` create after a reclaim
        runs the shard with the incremented attempt.
        """
        granted: list[Lease] = []
        if limit <= 0:
            return granted
        attempts = self.grant_attempts()
        now = time.time()
        for shard_id in shard_ids:
            existing = self.read_lease(shard_id)
            if existing is not None:
                if not existing.expired(now):
                    continue
                if not self.reclaim_expired(shard_id, now):
                    continue
            next_attempt = attempts.get(shard_id)
            next_attempt = 0 if next_attempt is None else next_attempt + 1
            lease = self.try_claim(shard_id, attempt=next_attempt)
            if lease is not None:
                granted.append(lease)
                if len(granted) >= limit:
                    break
        return granted

    # -- the event journal -------------------------------------------------

    def _event(self, kind: str, shard_id: str, *, attempt: int) -> None:
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        append_journal_entry(self.events_path, {
            "event": kind,
            "shard_id": shard_id,
            "worker": self.worker_id,
            "attempt": attempt,
            "at": time.time(),
        })

    def read_events(self) -> list[dict]:
        """Every well-formed event line, in append order."""
        try:
            text = self.events_path.read_text(encoding="utf-8")
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "event" in event:
                events.append(event)
        return events

    def grant_attempts(self) -> dict[str, int]:
        """The latest granted attempt per shard (from the event log)."""
        latest: dict[str, int] = {}
        for event in self.read_events():
            if event.get("event") != "grant":
                continue
            shard_id = event.get("shard_id")
            if isinstance(shard_id, str):
                latest[shard_id] = int(event.get("attempt", 0))
        return latest

    def event_counters(self) -> dict[str, int]:
        """Aggregate the event log into ``dispatch.*`` counter values."""
        counters = {name: 0 for name in EVENT_COUNTERS.values()}
        for event in self.read_events():
            name = EVENT_COUNTERS.get(event.get("event"))
            if name is not None:
                counters[name] += 1
        return counters

    # -- worker status (the /healthz-style surface) ------------------------

    def write_worker_status(self, state: dict) -> None:
        """Publish this worker's status atomically (safe against a
        concurrent status server read and against other workers)."""
        self.worker_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "worker": self.worker_id,
            "updated_at": time.time(),
            **state,
        }
        atomic_write_bytes(
            self.worker_dir / f"{_slug(self.worker_id)}.json",
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            unique_tmp=True,
        )

    def read_worker_statuses(self) -> list[dict]:
        """Every worker's latest published status, sorted by worker id."""
        statuses = []
        try:
            paths = sorted(self.worker_dir.glob("*.json"))
        except OSError:
            return statuses
        for path in paths:
            try:
                status = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(status, dict):
                statuses.append(status)
        return statuses
