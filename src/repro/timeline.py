"""The leak's timeline (Section 3.1 of the paper).

The logs cover two periods: July 22, 23 and 31, 2011 (proxy SG-42
only) and August 1–6, 2011 (all seven proxies).  Client addresses are
hashed — rather than zeroed — for July 22–23, enabling the D_user
analysis.
"""

from __future__ import annotations

import datetime as dt

_EPOCH = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc)


def day_epoch(date: str) -> int:
    """Epoch seconds at 00:00 UTC of *date* (``YYYY-MM-DD``)."""
    stamp = dt.datetime.strptime(date, "%Y-%m-%d").replace(tzinfo=dt.timezone.utc)
    return int((stamp - _EPOCH).total_seconds())


def epoch_day(epoch: int) -> str:
    """Inverse of :func:`day_epoch` (date of the timestamp)."""
    return (_EPOCH + dt.timedelta(seconds=int(epoch))).strftime("%Y-%m-%d")


def hour_of_day(epoch: int) -> int:
    return (int(epoch) % 86400) // 3600


SECONDS_PER_DAY = 86400

#: Days for which only proxy SG-42 logs exist.
SG42_ONLY_DAYS: tuple[str, ...] = ("2011-07-22", "2011-07-23", "2011-07-31")

#: Days covered by all seven proxies.
ALL_PROXY_DAYS: tuple[str, ...] = (
    "2011-08-01",
    "2011-08-02",
    "2011-08-03",
    "2011-08-04",
    "2011-08-05",
    "2011-08-06",
)

#: The full 9-day coverage, in order.
LOG_DAYS: tuple[str, ...] = SG42_ONLY_DAYS + ALL_PROXY_DAYS

#: Days whose client IPs were hashed (not zeroed) in the release.
USER_SLICE_DAYS: tuple[str, ...] = ("2011-07-22", "2011-07-23")

#: The protest day the paper zooms into (Fig. 6, Table 5).
PROTEST_DAY = "2011-08-03"

#: The Friday with the weekly-protest slowdown (Fig. 5).
FRIDAY_SLOWDOWN_DAY = "2011-08-05"


def day_span(date: str) -> tuple[int, int]:
    """Epoch range [start, end) of a date."""
    start = day_epoch(date)
    return start, start + SECONDS_PER_DAY
