"""Blue Coat SG-9000 access-log model.

This package defines the log schema the leaked Syrian logs used
(Section 3 of the paper): the 26 ELFF fields, a record type, the
request-classification rules of Section 3.3, the CSV/ELFF wire format,
and the Telecomix-style anonymization applied before release.
"""

from repro.logmodel.classify import (
    CENSOR_EXCEPTIONS,
    ERROR_EXCEPTIONS,
    NO_EXCEPTION,
    TrafficClass,
    classify,
    classify_exception,
)
from repro.logmodel.fields import FIELDS, FilterResult
from repro.logmodel.record import LogRecord

__all__ = [
    "FIELDS",
    "FilterResult",
    "LogRecord",
    "TrafficClass",
    "classify",
    "classify_exception",
    "NO_EXCEPTION",
    "CENSOR_EXCEPTIONS",
    "ERROR_EXCEPTIONS",
]
