"""Telecomix-style anonymization of client addresses.

Before the 2011 release, Telecomix suppressed user identifiers: for
most of the leak, ``c-ip`` was replaced with zeros; for a small slice
(July 22–23) it was replaced with a *hash* of the address, which is
what makes the paper's D_user analysis possible (Section 3.3).

We reproduce both treatments.  The hash is keyed so that synthetic
client addresses cannot be recovered by brute force over the IPv4
space, mirroring good release practice.
"""

from __future__ import annotations

import hashlib
import hmac

ZEROED_CLIENT_IP = "0.0.0.0"

_DEFAULT_KEY = b"telecomix-release-2011"


def zero_client_ip(_c_ip: str) -> str:
    """The treatment applied to most of the leak: drop the address."""
    return ZEROED_CLIENT_IP


def hash_client_ip(c_ip: str, key: bytes = _DEFAULT_KEY, digest_chars: int = 16) -> str:
    """The treatment applied to the July 22–23 slice: keyed hash.

    Deterministic for a given key, so one client maps to one stable
    pseudonym across the slice — the property the D_user analysis needs.
    """
    mac = hmac.new(key, c_ip.encode("ascii"), hashlib.sha256)
    return mac.hexdigest()[:digest_chars]


def is_anonymized(c_ip: str) -> bool:
    """True when *c_ip* is a release pseudonym rather than an address."""
    return c_ip == ZEROED_CLIENT_IP or (len(c_ip) >= 8 and "." not in c_ip)
