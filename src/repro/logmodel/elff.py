"""Reading and writing the leaked log format.

The Telecomix release is CSV with W3C/ELFF-style directive lines
(``#Software``, ``#Version``, ``#Date``, ``#Fields``).  This module
round-trips :class:`~repro.logmodel.record.LogRecord` objects through
that format, streaming in both directions so multi-gigabyte files never
have to fit in memory.

Paths ending in ``.gz`` are read and written through gzip
transparently.  Written gzip streams are deterministic (no embedded
filename, mtime pinned to zero), so compressed output stays
byte-identical across runs, directories, and worker counts.
"""

from __future__ import annotations

import csv
import gzip
import io
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.atomicio import AtomicTextFile
from repro.faults import fault_point
from repro.logmodel.fields import FIELDS
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry

_DIRECTIVE_PREFIX = "#"

DEFAULT_SOFTWARE = "SGOS 5.3.3.8"


def elff_header(software: str = DEFAULT_SOFTWARE) -> str:
    """The directive preamble every ELFF log file starts with."""
    return (
        f"#Software: {software}\n"
        "#Version: 1.0\n"
        f"#Fields: {' '.join(FIELDS)}\n"
    )


def is_gzip_path(path: Path | str) -> bool:
    """Whether *path* names a gzip-compressed log (``.gz`` suffix)."""
    return str(path).endswith(".gz")


class _GzipTextWriter:
    """Text writer over a deterministic gzip stream.

    ``gzip.open`` embeds the file's basename and mtime in the header;
    this writer pins both (no name, mtime 0) so compressed logs are
    byte-identical whenever the uncompressed bytes are.  Closing closes
    the whole layer stack, including the raw file.
    """

    def __init__(self, path: Path | str):
        self._raw = open(path, "wb")
        self._gzip = gzip.GzipFile(
            filename="", mode="wb", fileobj=self._raw, mtime=0
        )
        self._text = io.TextIOWrapper(
            self._gzip, encoding="utf-8", newline=""
        )

    def write(self, text: str) -> int:
        return self._text.write(text)

    def flush(self) -> None:
        self._text.flush()

    def close(self) -> None:
        self._text.close()  # flushes and closes the gzip layer
        if not self._raw.closed:
            self._raw.close()

    def __enter__(self) -> "_GzipTextWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_log_writer(path: Path | str):
    """Open *path* for crash-safe ELFF text writing (gzip-transparent).

    Writes stream to a ``<name>.tmp`` sibling and only an explicit,
    successful close publishes the final path (fsync + ``os.replace``)
    — a process dying mid-write leaves no truncated log behind, which
    is what lets checkpoint/resume trust any log file that exists.
    """
    if is_gzip_path(path):
        return AtomicTextFile(path, opener=_GzipTextWriter)
    return AtomicTextFile(path)


def open_log_reader(path: Path | str):
    """Open *path* for ELFF text reading (gzip-transparent)."""
    if is_gzip_path(path):
        fault_point("gzip.open")
        return gzip.open(path, "rt", encoding="utf-8", newline="")
    return open(path, newline="")


def write_log(
    records: Iterable[LogRecord],
    destination: Path | io.TextIOBase,
    software: str = DEFAULT_SOFTWARE,
) -> int:
    """Write *records* as an ELFF/CSV log file.

    Returns the number of records written.  *destination* may be a path
    (``.gz`` compresses transparently) or an open text file.
    """
    if isinstance(destination, (str, Path)):
        with open_log_writer(destination) as handle:
            return write_log(records, handle, software=software)
    destination.write(elff_header(software))
    writer = csv.writer(destination)
    count = 0
    for record in records:
        writer.writerow(record.to_row())
        count += 1
    return count


class LogFormatError(ValueError):
    """Raised on malformed log files."""


@dataclass
class ReadStats:
    """Bookkeeping for lenient reads: what was kept, what was dropped.

    ``skipped`` counts malformed-but-parseable rows; ``corrupted``
    counts streams that died mid-read (truncated gzip, bad CRC,
    garbage that broke the CSV layer) — one per file, since a corrupt
    stream ends the file.
    """

    records: int = 0
    skipped: int = 0
    first_error: str | None = None
    corrupted: int = 0

    def merge(self, other: "ReadStats") -> "ReadStats":
        """Fold another reader's bookkeeping in (sharded reads merge
        one ReadStats per file); returns self."""
        self.records += other.records
        self.skipped += other.skipped
        self.corrupted += other.corrupted
        if self.first_error is None:
            self.first_error = other.first_error
        return self

    def __iadd__(self, other: "ReadStats") -> "ReadStats":
        if not isinstance(other, ReadStats):
            return NotImplemented
        return self.merge(other)


#: Exceptions that mean the byte stream itself died mid-read, as
#: opposed to a well-formed stream carrying a malformed row: truncated
#: gzip members (EOFError), deflate garbage (zlib.error), CRC/header
#: failures (BadGzipFile), binary noise hitting the CSV tokenizer or
#: the UTF-8 decoder.
_STREAM_CORRUPTION = (
    EOFError,
    zlib.error,
    gzip.BadGzipFile,
    csv.Error,
    UnicodeDecodeError,
)


def _stream_offset(handle) -> int | None:
    """Best-effort byte offset of *handle*'s underlying file.

    For gzip text readers this is the *compressed* offset (TextIOWrapper
    → GzipFile → raw file); for plain files the buffered byte position.
    """
    buffer = getattr(handle, "buffer", None)
    fileobj = getattr(buffer, "fileobj", None)
    for candidate in (fileobj, buffer, handle):
        if candidate is None:
            continue
        try:
            return candidate.tell()
        except (OSError, ValueError):
            continue
    return None


def _settle_corruption(
    path: Path,
    handle,
    error: BaseException,
    lenient: bool,
    stats: ReadStats | None,
) -> None:
    """A log stream died mid-read: raise (strict) or count (lenient)."""
    offset = _stream_offset(handle)
    where = "unknown offset" if offset is None else f"byte {offset}"
    registry = current_registry()
    if registry is not None:
        registry.inc("elff.read.corrupted")
    if not lenient:
        raise LogFormatError(
            f"{path}: corrupted log stream at {where}: {error}"
        ) from error
    if stats is not None:
        stats.corrupted += 1
        if stats.first_error is None:
            stats.first_error = f"{path}: {error}"


def read_log(
    source: Path | io.TextIOBase,
    lenient: bool = False,
    stats: ReadStats | None = None,
) -> Iterator[LogRecord]:
    """Stream records from an ELFF/CSV log file.

    Directive lines are validated; a ``#Fields`` directive that does not
    match the 26-field schema raises :class:`LogFormatError`, since the
    analyses depend on the exact schema.

    With ``lenient=True`` malformed data rows are skipped instead of
    raising — the Telecomix files contain truncated and garbled lines —
    and, when a :class:`ReadStats` is passed, counted there.

    Path reads additionally survive *corrupted streams* — truncated
    gzip members, CRC failures, deflate garbage, byte noise that breaks
    the CSV or text-decoding layer.  In strict mode these raise
    :class:`LogFormatError` naming the file and the byte offset
    reached; in lenient mode the records read so far are kept, the
    corruption is counted into ``stats.corrupted``, and the stream
    ends — exactly how the paper's pipeline had to treat log files the
    proxies never finished writing.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        fault_point("elff.read")
        with open_log_reader(path) as handle:
            try:
                yield from read_log(handle, lenient=lenient, stats=stats)
            except _STREAM_CORRUPTION as error:
                _settle_corruption(path, handle, error, lenient, stats)
        return
    reader = csv.reader(source)
    registry = current_registry()
    kept = skipped = 0
    try:
        for row in reader:
            if not row:
                continue
            if row[0].startswith(_DIRECTIVE_PREFIX):
                directive = ",".join(row)
                if directive.startswith("#Fields:"):
                    declared = directive[len("#Fields:"):].strip().split()
                    if tuple(declared) != FIELDS:
                        raise LogFormatError(
                            "log file declares an unexpected field set: "
                            f"{declared[:3]}..."
                        )
                continue
            try:
                record = LogRecord.from_row(row)
            except (ValueError, IndexError) as error:
                if not lenient:
                    raise LogFormatError(f"malformed row: {error}") from error
                skipped += 1
                if stats is not None:
                    stats.skipped += 1
                    if stats.first_error is None:
                        stats.first_error = str(error)
                continue
            kept += 1
            if stats is not None:
                stats.records += 1
            yield record
    finally:
        # Flushed on exhaustion *and* early close, so partially
        # consumed streams still report what they actually read.
        if registry is not None and (kept or skipped):
            registry.inc("elff.read.records", kept)
            registry.inc("elff.read.skipped", skipped)


def read_log_rows(source: Path | io.TextIOBase) -> Iterator[list[str]]:
    """Stream raw CSV rows (no parsing into records).

    Used by the columnar loader, which converts straight to arrays and
    does not need per-row ``LogRecord`` objects.
    """
    if isinstance(source, (str, Path)):
        with open_log_reader(source) as handle:
            yield from read_log_rows(handle)
        return
    for row in csv.reader(source):
        if not row or row[0].startswith(_DIRECTIVE_PREFIX):
            continue
        if len(row) != len(FIELDS):
            raise LogFormatError(f"expected {len(FIELDS)} columns, got {len(row)}")
        yield row
