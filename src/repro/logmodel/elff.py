"""Reading and writing the leaked log format.

The Telecomix release is CSV with W3C/ELFF-style directive lines
(``#Software``, ``#Version``, ``#Date``, ``#Fields``).  This module
round-trips :class:`~repro.logmodel.record.LogRecord` objects through
that format, streaming in both directions so multi-gigabyte files never
have to fit in memory.

Paths ending in ``.gz`` are read and written through gzip
transparently.  Written gzip streams are deterministic (no embedded
filename, mtime pinned to zero), so compressed output stays
byte-identical across runs, directories, and worker counts.
"""

from __future__ import annotations

import csv
import gzip
import io
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.atomicio import AtomicTextFile
from repro.faults import fault_point
from repro.frame.batch import BATCH_COLUMNS, RecordBatch
from repro.logmodel.fields import FIELDS
from repro.logmodel.record import LogRecord, date_time_to_epoch
from repro.metrics import current_registry

_DIRECTIVE_PREFIX = "#"

DEFAULT_SOFTWARE = "SGOS 5.3.3.8"


def elff_header(software: str = DEFAULT_SOFTWARE) -> str:
    """The directive preamble every ELFF log file starts with."""
    return (
        f"#Software: {software}\n"
        "#Version: 1.0\n"
        f"#Fields: {' '.join(FIELDS)}\n"
    )


def is_gzip_path(path: Path | str) -> bool:
    """Whether *path* names a gzip-compressed log (``.gz`` suffix)."""
    return str(path).endswith(".gz")


class _GzipTextWriter:
    """Text writer over a deterministic gzip stream.

    ``gzip.open`` embeds the file's basename and mtime in the header;
    this writer pins both (no name, mtime 0) so compressed logs are
    byte-identical whenever the uncompressed bytes are.  Closing closes
    the whole layer stack, including the raw file.
    """

    def __init__(self, path: Path | str):
        self._raw = open(path, "wb")
        self._gzip = gzip.GzipFile(
            filename="", mode="wb", fileobj=self._raw, mtime=0
        )
        self._text = io.TextIOWrapper(
            self._gzip, encoding="utf-8", newline=""
        )

    def write(self, text: str) -> int:
        return self._text.write(text)

    def flush(self) -> None:
        self._text.flush()

    def close(self) -> None:
        self._text.close()  # flushes and closes the gzip layer
        if not self._raw.closed:
            self._raw.close()

    def __enter__(self) -> "_GzipTextWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_log_writer(path: Path | str):
    """Open *path* for crash-safe ELFF text writing (gzip-transparent).

    Writes stream to a ``<name>.tmp`` sibling and only an explicit,
    successful close publishes the final path (fsync + ``os.replace``)
    — a process dying mid-write leaves no truncated log behind, which
    is what lets checkpoint/resume trust any log file that exists.
    """
    if is_gzip_path(path):
        return AtomicTextFile(path, opener=_GzipTextWriter)
    return AtomicTextFile(path)


def open_log_reader(path: Path | str):
    """Open *path* for ELFF text reading (gzip-transparent)."""
    if is_gzip_path(path):
        fault_point("gzip.open")
        return gzip.open(path, "rt", encoding="utf-8", newline="")
    return open(path, newline="")


def write_log(
    records: Iterable[LogRecord],
    destination: Path | io.TextIOBase,
    software: str = DEFAULT_SOFTWARE,
) -> int:
    """Write *records* as an ELFF/CSV log file.

    Returns the number of records written.  *destination* may be a path
    (``.gz`` compresses transparently) or an open text file.
    """
    if isinstance(destination, (str, Path)):
        with open_log_writer(destination) as handle:
            return write_log(records, handle, software=software)
    destination.write(elff_header(software))
    writer = csv.writer(destination)
    count = 0
    for record in records:
        writer.writerow(record.to_row())
        count += 1
    return count


class LogFormatError(ValueError):
    """Raised on malformed log files."""


@dataclass
class ReadStats:
    """Bookkeeping for lenient reads: what was kept, what was dropped.

    ``skipped`` counts malformed-but-parseable rows; ``corrupted``
    counts streams that died mid-read (truncated gzip, bad CRC,
    garbage that broke the CSV layer) — one per file, since a corrupt
    stream ends the file.  ``incomplete_tail`` counts files whose final
    line had no terminator yet — a writer caught mid-flush — and
    ``incomplete_tail_offset`` is the byte offset where that line
    starts (uncompressed offset for ``.gz``): the line is left
    *unread*, not skipped, so a tailer can resume exactly there once
    the writer finishes it and the last record is never dropped.
    """

    records: int = 0
    skipped: int = 0
    first_error: str | None = None
    corrupted: int = 0
    incomplete_tail: int = 0
    incomplete_tail_offset: int | None = None

    def merge(self, other: "ReadStats") -> "ReadStats":
        """Fold another reader's bookkeeping in (sharded reads merge
        one ReadStats per file); returns self."""
        self.records += other.records
        self.skipped += other.skipped
        self.corrupted += other.corrupted
        self.incomplete_tail += other.incomplete_tail
        if self.incomplete_tail_offset is None:
            self.incomplete_tail_offset = other.incomplete_tail_offset
        if self.first_error is None:
            self.first_error = other.first_error
        return self

    def __iadd__(self, other: "ReadStats") -> "ReadStats":
        if not isinstance(other, ReadStats):
            return NotImplemented
        return self.merge(other)


#: Exceptions that mean the byte stream itself died mid-read, as
#: opposed to a well-formed stream carrying a malformed row: truncated
#: gzip members (EOFError), deflate garbage (zlib.error), CRC/header
#: failures (BadGzipFile), binary noise hitting the CSV tokenizer or
#: the UTF-8 decoder.
_STREAM_CORRUPTION = (
    EOFError,
    zlib.error,
    gzip.BadGzipFile,
    csv.Error,
    UnicodeDecodeError,
)


def _stream_offset(handle) -> int | None:
    """Best-effort byte offset of *handle*'s underlying file.

    For gzip text readers this is the *compressed* offset (TextIOWrapper
    → GzipFile → raw file); for plain files the buffered byte position.
    """
    buffer = getattr(handle, "buffer", None)
    fileobj = getattr(buffer, "fileobj", None)
    for candidate in (fileobj, buffer, handle):
        if candidate is None:
            continue
        try:
            return candidate.tell()
        except (OSError, ValueError):
            continue
    return None


def _settle_corruption(
    path: Path,
    handle,
    error: BaseException,
    lenient: bool,
    stats: ReadStats | None,
) -> None:
    """A log stream died mid-read: raise (strict) or count (lenient)."""
    offset = _stream_offset(handle)
    where = "unknown offset" if offset is None else f"byte {offset}"
    registry = current_registry()
    if registry is not None:
        registry.inc("elff.read.corrupted")
    if not lenient:
        raise LogFormatError(
            f"{path}: corrupted log stream at {where}: {error}"
        ) from error
    if stats is not None:
        stats.corrupted += 1
        if stats.first_error is None:
            stats.first_error = f"{path}: {error}"


class _TailSentry:
    """Line filter that withholds an unterminated final line.

    Wraps a text handle's line iteration and yields only lines that
    end in a terminator.  ``readline`` returns a line without one
    exactly once, at end of file — a writer caught mid-flush — so the
    sentry parks that line in :attr:`torn` instead of yielding it, and
    :meth:`resume_offset` reports the byte offset where the line
    starts, which is where a tailer must resume reading.

    With ``count_bytes=True`` the offset is maintained as a running
    sum over the encoded lines actually yielded — exact even when the
    stream dies mid-read, which is what the tail poller needs.  The
    default derives it from the underlying binary layer's position at
    clean end-of-stream instead, costing nothing per line on the batch
    analyze hot path.
    """

    def __init__(self, handle, *, count_bytes: bool = False,
                 base_offset: int = 0):
        self._handle = handle
        self._count_bytes = count_bytes
        self._encoding = getattr(handle, "encoding", None) or "utf-8"
        self.consumed = base_offset
        self.torn: str | None = None

    def __iter__(self) -> Iterator[str]:
        for line in self._handle:
            # With newline="" every line keeps its terminator; only the
            # physically-last line of the stream can lack one.
            if line.endswith(("\n", "\r")):
                if self._count_bytes:
                    self.consumed += len(line.encode(self._encoding))
                yield line
            else:
                self.torn = line

    def resume_offset(self) -> int | None:
        """Byte offset a tailer should continue from: the start of the
        torn line when one was withheld, end-of-stream otherwise.  For
        gzip handles the offset is in the *uncompressed* stream."""
        if self._count_bytes:
            return self.consumed
        buffer = getattr(self._handle, "buffer", None)
        if buffer is None:
            return None
        try:
            end = buffer.tell()
        except (OSError, ValueError):
            return None
        if self.torn is None:
            return end
        return end - len(self.torn.encode(self._encoding))


def _settle_incomplete_tail(
    sentry: _TailSentry, stats: ReadStats | None
) -> None:
    """A lenient path read ended on a torn line: count it, leave it."""
    registry = current_registry()
    if registry is not None:
        registry.inc("elff.read.incomplete_tail")
    if stats is not None:
        stats.incomplete_tail += 1
        stats.incomplete_tail_offset = sentry.resume_offset()


def _check_directive(row: list[str]) -> None:
    """Validate a ``#``-directive row (shared by both readers).

    A ``#Fields`` directive that does not match the 26-field schema
    raises :class:`LogFormatError`; every other directive is noise.
    """
    directive = ",".join(row)
    if directive.startswith("#Fields:"):
        declared = directive[len("#Fields:"):].strip().split()
        if tuple(declared) != FIELDS:
            raise LogFormatError(
                "log file declares an unexpected field set: "
                f"{declared[:3]}..."
            )


def read_log(
    source: Path | io.TextIOBase,
    lenient: bool = False,
    stats: ReadStats | None = None,
) -> Iterator[LogRecord]:
    """Stream records from an ELFF/CSV log file.

    Directive lines are validated; a ``#Fields`` directive that does not
    match the 26-field schema raises :class:`LogFormatError`, since the
    analyses depend on the exact schema.

    With ``lenient=True`` malformed data rows are skipped instead of
    raising — the Telecomix files contain truncated and garbled lines —
    and, when a :class:`ReadStats` is passed, counted there.

    Path reads additionally survive *corrupted streams* — truncated
    gzip members, CRC failures, deflate garbage, byte noise that breaks
    the CSV or text-decoding layer.  In strict mode these raise
    :class:`LogFormatError` naming the file and the byte offset
    reached; in lenient mode the records read so far are kept, the
    corruption is counted into ``stats.corrupted``, and the stream
    ends — exactly how the paper's pipeline had to treat log files the
    proxies never finished writing.

    Lenient path reads also distinguish an *incomplete trailing line*
    (no terminator at EOF — a writer mid-flush) from malformed data:
    the line is left unread, counted into ``stats.incomplete_tail``,
    and its starting byte offset reported as
    ``stats.incomplete_tail_offset`` so a tailer can resume exactly
    there — see :func:`tail_records`.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        fault_point("elff.read")
        with open_log_reader(path) as handle:
            sentry = _TailSentry(handle) if lenient else None
            lines = iter(sentry) if sentry is not None else handle
            try:
                yield from read_log(lines, lenient=lenient, stats=stats)
            except _STREAM_CORRUPTION as error:
                _settle_corruption(path, handle, error, lenient, stats)
            if sentry is not None and sentry.torn is not None:
                _settle_incomplete_tail(sentry, stats)
        return
    reader = csv.reader(source)
    registry = current_registry()
    kept = skipped = 0
    try:
        for row in reader:
            if not row:
                continue
            if row[0].startswith(_DIRECTIVE_PREFIX):
                _check_directive(row)
                continue
            try:
                record = LogRecord.from_row(row)
            except (ValueError, IndexError) as error:
                if not lenient:
                    raise LogFormatError(f"malformed row: {error}") from error
                skipped += 1
                if stats is not None:
                    stats.skipped += 1
                    if stats.first_error is None:
                        stats.first_error = str(error)
                continue
            kept += 1
            if stats is not None:
                stats.records += 1
            yield record
    finally:
        # Flushed on exhaustion *and* early close, so partially
        # consumed streams still report what they actually read.
        if registry is not None and (kept or skipped):
            registry.inc("elff.read.records", kept)
            registry.inc("elff.read.skipped", skipped)


#: Record attributes whose wire cells parse with ``int()``.
_NUMERIC_ATTRS = ("time_taken", "sc_status", "cs_uri_port", "sc_bytes",
                  "cs_bytes")

#: Position of every wire field in a 26-column row.
_FIELD_INDEX = {name: index for index, name in enumerate(FIELDS)}


def read_log_batches(
    source: Path | io.TextIOBase,
    batch_size: int,
    *,
    lenient: bool = False,
    stats: ReadStats | None = None,
) -> Iterator[RecordBatch]:
    """Stream an ELFF/CSV log as :class:`RecordBatch` columns.

    The batched counterpart of :func:`read_log`: whole chunks of lines
    are split straight into column arrays — the epoch derives from the
    distinct date strings plus a vectorized time-of-day parse, numeric
    columns convert wholesale — instead of building one
    :class:`LogRecord` per line.  Any *suspect* row (wrong column
    count, a cell the vectorized parse cannot prove well-formed) is
    re-parsed through ``LogRecord.from_row``, so malformed rows raise
    or skip-and-count with exactly the scalar reader's errors and
    :class:`ReadStats` bookkeeping.  The record stream recovered from
    the yielded batches is identical to :func:`read_log`'s, which the
    differential suite pins.

    Semantics mirror :func:`read_log`: ``lenient`` skips malformed
    rows, path reads survive corrupted streams (records batched before
    the corruption point are still yielded), and the same metrics
    counters and fault sites (``elff.read``, ``gzip.open``) fire.  The
    one intended difference: in strict mode a malformed row aborts the
    read before its chunk-mates are yielded, rather than after the
    rows preceding it — strict errors abort the whole read either way.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if isinstance(source, (str, Path)):
        path = Path(source)
        fault_point("elff.read")
        with open_log_reader(path) as handle:
            sentry = _TailSentry(handle) if lenient else None
            lines = iter(sentry) if sentry is not None else handle
            yield from _read_batches(lines, batch_size, lenient, stats,
                                     path, offset_handle=handle)
            if sentry is not None and sentry.torn is not None:
                _settle_incomplete_tail(sentry, stats)
        return
    yield from _read_batches(source, batch_size, lenient, stats, None)


def _read_batches(
    handle,
    batch_size: int,
    lenient: bool,
    stats: ReadStats | None,
    path: Path | None,
    offset_handle=None,
) -> Iterator[RecordBatch]:
    """The chunking loop behind :func:`read_log_batches`.

    Lines with no quoting in play split with a plain ``str.split(',')``
    — about twice as fast as the csv tokenizer.  A line carrying one
    quoted field (the common shape: a user-agent with embedded commas)
    goes through :func:`_split_quoted_line`, which handles exactly the
    cases it can prove equivalent to csv semantics.  Everything else —
    multiple quoted fields, quoted fields spanning physical lines,
    stray quotes, NULs, bare carriage returns — is handed to
    :func:`_referee_rows`, which gathers exactly the continuation
    lines the csv tokenizer would pull and lets a real ``csv.reader``
    rule on the region, so malformed input raises the same
    ``csv.Error`` and one physical line may yield several rows (or a
    row span several lines) exactly as in the scalar reader.
    """
    registry = current_registry()
    kept_total = skipped_total = 0
    corruption: BaseException | None = None
    rows: list[list[str]] = []
    try:
        try:
            for line in handle:
                if '"' in line or "\x00" in line:
                    parsed = (
                        None
                        if "\x00" in line
                        else _split_quoted_line(line.rstrip("\r\n"))
                    )
                    emitted = (
                        (parsed,)
                        if parsed is not None
                        else _referee_rows(line, handle)
                    )
                else:
                    stripped = line.rstrip("\r\n")
                    if not stripped:
                        continue
                    if stripped[0] == "#":
                        _check_directive(stripped.split(","))
                        continue
                    if "\r" in stripped:
                        # An interior CR (a StringIO source; file
                        # handles pre-split these) may terminate a row
                        # mid-line for the csv tokenizer: let it rule.
                        emitted = _referee_rows(line, handle)
                    else:
                        rows.append(stripped.split(","))
                        if len(rows) >= batch_size:
                            batch, kept, skipped = _rows_to_batch(
                                rows, lenient, stats
                            )
                            kept_total += kept
                            skipped_total += skipped
                            rows = []
                            if len(batch):
                                yield batch
                        continue
                for row in emitted:
                    if not row:
                        continue
                    if row[0].startswith(_DIRECTIVE_PREFIX):
                        _check_directive(row)
                        continue
                    rows.append(row)
                    if len(rows) >= batch_size:
                        batch, kept, skipped = _rows_to_batch(
                            rows, lenient, stats
                        )
                        kept_total += kept
                        skipped_total += skipped
                        rows = []
                        if len(batch):
                            yield batch
        except _STREAM_CORRUPTION as error:
            if path is None:
                raise
            corruption = error
        if rows:
            batch, kept, skipped = _rows_to_batch(rows, lenient, stats)
            kept_total += kept
            skipped_total += skipped
            if len(batch):
                yield batch
        if corruption is not None:
            _settle_corruption(
                path, offset_handle if offset_handle is not None else handle,
                corruption, lenient, stats,
            )
    finally:
        # Flushed on exhaustion *and* early close, matching read_log.
        if registry is not None and (kept_total or skipped_total):
            registry.inc("elff.read.records", kept_total)
            registry.inc("elff.read.skipped", skipped_total)


def _split_quoted_line(stripped: str) -> list[str] | None:
    """Split a physical line containing exactly one quoted field.

    Returns the row when the line provably parses the way the csv
    module would — one field that starts with ``"`` at a field
    boundary, ends with ``"`` before a delimiter (or end of line), and
    contains no quotes other than doubled ``\"\"`` escapes — or
    ``None`` for anything it cannot prove (several quoted fields,
    unterminated quotes, junk after the closing quote), which the
    caller hands to a real ``csv.reader``.  About 3x faster than
    spinning up a csv reader per line, and quoted lines are ~a quarter
    of real traffic: user-agent strings carry commas.
    """
    first = stripped.find('"')
    last = stripped.rfind('"')
    if last == first:
        return None  # a lone quote: opener without closer, or vice versa
    if first > 0 and stripped[first - 1] != ",":
        return None  # not at a field start: csv treats it as a literal
    cleaned = stripped[first + 1:last].replace('""', "\x00")
    if '"' in cleaned:
        return None  # stray quotes: several fields, or malformed
    tail = stripped[last + 1:]
    if tail and tail[0] != ",":
        return None  # junk between the closing quote and the delimiter
    row = stripped[: first - 1].split(",") if first else []
    row.append(cleaned.replace("\x00", '"'))
    if tail:
        row.extend(tail[1:].split(","))
    return row


def _referee_rows(line: str, handle) -> Iterator[list[str]]:
    """All rows the csv tokenizer derives from *line*, letting csv rule.

    A physical line the fast paths cannot prove safe may map to
    anything: one row, several rows (a bare ``\\r`` acts as a row
    terminator inside a ``StringIO`` source), or the *start* of a row
    whose quoted field spans further physical lines.  :func:`_quote_open`
    tracks the tokenizer's quoting state, so continuation lines are
    pulled from the live *handle* exactly while a quoted field is open
    — never further — and the gathered region is then drained through
    a real ``csv.reader``, preserving scalar row-splitting, quoting
    and error semantics.  A generator so that rows parsed before a
    mid-region ``csv.Error`` still reach the caller, as they would
    from the scalar reader's stream tokenizer.
    """
    region = [line]
    open_field = _quote_open(line, False)
    while open_field:
        more = next(handle, None)
        if more is None:
            break
        region.append(more)
        open_field = _quote_open(more, open_field)
    yield from csv.reader(region)


def _quote_open(text: str, open_field: bool) -> bool:
    """Whether a quoted field is still open after scanning *text*.

    Mirrors the csv tokenizer's quoting rules for the default dialect:
    a quote opens a field only at a field start, ``\"\"`` inside a
    quoted field is an escaped quote, and quotes anywhere else are
    literal characters.
    """
    at_field_start = not open_field
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if open_field:
            if char == '"':
                if i + 1 < n and text[i + 1] == '"':
                    i += 2  # escaped quote, field stays open
                    continue
                open_field = False
        elif char == ",":
            at_field_start = True
        else:
            if char == '"' and at_field_start:
                open_field = True
            at_field_start = False
        i += 1
    return open_field


def _rows_to_batch(
    rows: list[list[str]],
    lenient: bool,
    stats: ReadStats | None,
) -> tuple[RecordBatch, int, int]:
    """Convert one chunk of data rows into a batch.

    Returns ``(batch, kept, skipped)``.  The vectorized path handles
    every row it can *prove* parses like ``LogRecord.from_row``; rows
    it cannot (wrong width, non-integer numeric cell, a date or time
    outside the canonical zero-padded in-range form) fall back to
    ``from_row`` itself, in stream order, so values, error messages,
    and skip decisions are identical to the scalar reader — including
    oddities the fast path refuses but ``strptime`` accepts.
    """
    total = len(rows)
    if not total:
        return RecordBatch.empty(), 0, 0
    width = len(FIELDS)
    suspects = {index for index, row in enumerate(rows) if len(row) != width}

    if len(suspects) < total:
        if suspects:
            candidate_index: list[int] | range = [
                index for index in range(total) if index not in suspects
            ]
            grid = np.array(
                [rows[index] for index in candidate_index], dtype=object
            )
        else:
            candidate_index = range(total)
            grid = np.array(rows, dtype=object)

        bad_positions: set[int] = set()
        numeric: dict[str, np.ndarray] = {}
        for attr in _NUMERIC_ATTRS:
            column = grid[:, _FIELD_INDEX[attr.replace("_", "-")]]
            try:
                numeric[attr] = column.astype(np.int64)
            except (ValueError, TypeError, OverflowError):
                values, bad = _salvage_ints(column)
                numeric[attr] = np.asarray(values, dtype=np.int64)
                bad_positions.update(bad)

        dates = grid[:, _FIELD_INDEX["date"]].tolist()
        distinct_dates = set(dates)
        day_base: dict[str, int] = {}
        for date in distinct_dates:
            try:
                day_base[date] = date_time_to_epoch(date, "00:00:00")
            except ValueError:
                bad_positions.update(
                    position for position, cell in enumerate(dates)
                    if cell == date
                )
        seconds, time_ok = _parse_times(grid[:, _FIELD_INDEX["time"]])
        bad_positions.update(np.nonzero(~time_ok)[0].tolist())
        if len(distinct_dates) == 1 and day_base:
            # One log-day per chunk is the overwhelmingly common case.
            epochs = seconds + next(iter(day_base.values()))
        else:
            epochs = np.fromiter(
                (day_base.get(date, 0) for date in dates),
                dtype=np.int64, count=len(dates),
            ) + seconds
        suspects.update(candidate_index[position] for position in bad_positions)
    else:
        candidate_index, bad_positions = [], set()
        grid = np.empty((0, width), dtype=object)
        numeric = {
            attr: np.empty(0, dtype=np.int64) for attr in _NUMERIC_ATTRS
        }
        epochs = np.empty(0, dtype=np.int64)

    # Resolve every suspect through the scalar parser, in stream order.
    fixed: dict[int, LogRecord] = {}
    dropped: set[int] = set()
    for index in sorted(suspects):
        try:
            fixed[index] = LogRecord.from_row(rows[index])
        except (ValueError, IndexError) as error:
            if not lenient:
                raise LogFormatError(f"malformed row: {error}") from error
            dropped.add(index)
            if stats is not None:
                stats.skipped += 1
                if stats.first_error is None:
                    stats.first_error = str(error)

    kept = total - len(dropped)
    if stats is not None:
        stats.records += kept
    if not kept:
        return RecordBatch.empty(), 0, len(dropped)

    if not fixed and not bad_positions:
        # Fast common path: every kept row came through vectorized.
        # Object columns stay views into the row grid — downstream
        # consumers never mutate batch columns in place.
        columns: dict[str, np.ndarray] = {"epoch": epochs}
        for attr, dtype in BATCH_COLUMNS.items():
            if attr == "epoch":
                continue
            if dtype == "int64":
                columns[attr] = numeric[attr]
            else:
                columns[attr] = grid[:, _FIELD_INDEX[attr.replace("_", "-")]]
        return RecordBatch(columns), kept, len(dropped)

    # Interleave vectorized rows with scalar-fixed rows in stream order.
    vector_positions = np.asarray(
        [
            position for position in range(len(candidate_index))
            if position not in bad_positions
        ],
        dtype=np.intp,
    )
    kept_index = [index for index in range(total) if index not in dropped]
    slot_of = {index: slot for slot, index in enumerate(kept_index)}
    vector_slots = np.asarray(
        [slot_of[candidate_index[position]] for position in vector_positions],
        dtype=np.intp,
    )
    fixed_order = sorted(fixed)
    fixed_slots = np.asarray(
        [slot_of[index] for index in fixed_order], dtype=np.intp
    )
    fixed_records = [fixed[index] for index in fixed_order]
    columns = {}
    for attr, dtype in BATCH_COLUMNS.items():
        out = np.empty(kept, dtype=dtype)
        if attr == "epoch":
            out[vector_slots] = epochs[vector_positions]
        elif dtype == "int64":
            out[vector_slots] = numeric[attr][vector_positions]
        else:
            column = grid[:, _FIELD_INDEX[attr.replace("_", "-")]]
            out[vector_slots] = column[vector_positions]
        out[fixed_slots] = [
            getattr(record, attr) for record in fixed_records
        ]
        columns[attr] = out
    return RecordBatch(columns), kept, len(dropped)


def _salvage_ints(column: np.ndarray) -> tuple[list[int], list[int]]:
    """Per-cell retry after a wholesale ``int()`` conversion failed:
    returns the values (0 placeholders at failures) and the failing
    positions."""
    values: list[int] = []
    bad: list[int] = []
    for position, cell in enumerate(column):
        try:
            values.append(int(cell))
        except ValueError:
            values.append(0)
            bad.append(position)
    return values, bad


def _parse_times(times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``HH:MM:SS`` → seconds-of-day.

    Returns ``(seconds, ok)``; rows where ``ok`` is False (anything
    but the canonical zero-padded in-range form) carry garbage seconds
    and must go through the scalar parser instead.
    """
    arr = np.asarray(times, dtype="<U16")
    count = len(arr)
    ok = np.char.str_len(arr) == 8
    codes = arr.astype("<U8").view(np.uint32).reshape(count, 8)
    digits = codes.astype(np.int64) - ord("0")
    digit_ok = (
        ((digits >= 0) & (digits <= 9))[:, (0, 1, 3, 4, 6, 7)].all(axis=1)
    )
    colon_ok = (codes[:, (2, 5)] == ord(":")).all(axis=1)
    hours = digits[:, 0] * 10 + digits[:, 1]
    minutes = digits[:, 3] * 10 + digits[:, 4]
    seconds = digits[:, 6] * 10 + digits[:, 7]
    ok &= (
        digit_ok & colon_ok & (hours < 24) & (minutes < 60) & (seconds < 60)
    )
    return hours * 3600 + minutes * 60 + seconds, ok


def tail_records(
    path: Path | str,
    *,
    offset: int = 0,
    stats: ReadStats | None = None,
) -> tuple[list[LogRecord], int]:
    """One tail-safe poll over a growing ELFF log (gzip-transparent).

    Parses the complete records found at or after byte *offset* (for
    ``.gz`` paths an offset into the *uncompressed* stream, reached by
    re-inflating the prefix) and returns ``(records, next_offset)``,
    where *next_offset* is the position the next poll should resume
    from.  Reads are lenient and line-framed:

    * a torn final line — a writer caught mid-flush, no terminator
      yet — is left unread, counted into ``stats.incomplete_tail``,
      and *next_offset* points at its first byte, so no record is ever
      dropped or double-read across polls;
    * a stream that dies mid-read (a ``.gz`` member still being
      written, byte noise) is settled like :func:`read_log` lenient
      mode — the records on complete lines before the failure are
      returned, the corruption counted — and *next_offset* advances
      exactly past the lines that parsed.

    The one framing assumption is one record per physical line (quoted
    fields must not span lines), which holds for every SG-9000 field.
    """
    path = Path(path)
    if stats is None:
        stats = ReadStats()
    records: list[LogRecord] = []
    fault_point("elff.read")
    with open_log_reader(path) as handle:
        sentry = _TailSentry(handle, count_bytes=True, base_offset=offset)
        try:
            # Seek the binary layer before the text layer reads
            # anything (for .gz this re-inflates the prefix, and can
            # itself hit the truncation of a member still being
            # written — settled below like any mid-read death).
            buffer = getattr(handle, "buffer", None)
            if offset and buffer is not None:
                buffer.seek(offset)
            for record in read_log(iter(sentry), lenient=True, stats=stats):
                records.append(record)
        except _STREAM_CORRUPTION as error:
            _settle_corruption(path, handle, error, True, stats)
        if sentry.torn is not None:
            _settle_incomplete_tail(sentry, stats)
    return records, sentry.consumed


def read_log_rows(source: Path | io.TextIOBase) -> Iterator[list[str]]:
    """Stream raw CSV rows (no parsing into records).

    Used by the columnar loader, which converts straight to arrays and
    does not need per-row ``LogRecord`` objects.
    """
    if isinstance(source, (str, Path)):
        with open_log_reader(source) as handle:
            yield from read_log_rows(handle)
        return
    for row in csv.reader(source):
        if not row or row[0].startswith(_DIRECTIVE_PREFIX):
            continue
        if len(row) != len(FIELDS):
            raise LogFormatError(f"expected {len(FIELDS)} columns, got {len(row)}")
        yield row
