"""The in-memory log record type.

A :class:`LogRecord` carries one line of an SG-9000 access log.  The
simulator produces records, :mod:`repro.logmodel.elff` round-trips them
through the leaked CSV format, and :mod:`repro.frame` loads batches of
them into columnar form for analysis.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

from repro.logmodel.classify import NO_EXCEPTION, TrafficClass, classify
from repro.logmodel.fields import FIELDS

_EPOCH = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc)


def epoch_to_date_time(epoch: int) -> tuple[str, str]:
    """Split an epoch timestamp into the log's (date, time) strings."""
    stamp = _EPOCH + dt.timedelta(seconds=int(epoch))
    return stamp.strftime("%Y-%m-%d"), stamp.strftime("%H:%M:%S")


def date_time_to_epoch(date: str, time: str) -> int:
    """Inverse of :func:`epoch_to_date_time`."""
    stamp = dt.datetime.strptime(f"{date} {time}", "%Y-%m-%d %H:%M:%S")
    return int((stamp.replace(tzinfo=dt.timezone.utc) - _EPOCH).total_seconds())


@dataclass(slots=True)
class LogRecord:
    """One access-log line.

    Timestamps are held as integer epoch seconds (``epoch``); the
    ``date``/``time`` strings of the wire format are derived on
    serialization.  All other attributes map 1:1 to schema fields, with
    dashes in attribute names replaced by underscores.
    """

    epoch: int
    c_ip: str
    s_ip: str
    cs_host: str
    cs_uri_scheme: str = "http"
    cs_uri_port: int = 80
    cs_uri_path: str = "/"
    cs_uri_query: str = ""
    cs_uri_ext: str = ""
    cs_method: str = "GET"
    cs_user_agent: str = "-"
    cs_referer: str = "-"
    sc_filter_result: str = "OBSERVED"
    x_exception_id: str = NO_EXCEPTION
    cs_categories: str = "unavailable"
    sc_status: int = 200
    s_action: str = "TCP_NC_MISS"
    rs_content_type: str = "text/html"
    time_taken: int = 100
    sc_bytes: int = 0
    cs_bytes: int = 0
    cs_username: str = "-"
    cs_auth_group: str = "-"
    x_virus_id: str = "-"
    s_supplier_name: str = "-"

    @property
    def traffic_class(self) -> TrafficClass:
        """The paper's headline classification of this request."""
        return classify(self.sc_filter_result, self.x_exception_id)

    def matchable_text(self) -> str:
        """Text scanned by the keyword-filtering engine (Section 5.4)."""
        return f"{self.cs_host}{self.cs_uri_path}?{self.cs_uri_query}"

    def to_row(self) -> list[str]:
        """Serialize to the 26-column CSV row, in schema order."""
        date, time = epoch_to_date_time(self.epoch)
        values = {
            "date": date,
            "time": time,
            "time-taken": str(self.time_taken),
            "c-ip": self.c_ip,
            "cs-username": self.cs_username,
            "cs-auth-group": self.cs_auth_group,
            "x-exception-id": self.x_exception_id,
            "sc-filter-result": self.sc_filter_result,
            "cs-categories": self.cs_categories,
            "cs-referer": self.cs_referer,
            "sc-status": str(self.sc_status),
            "s-action": self.s_action,
            "cs-method": self.cs_method,
            "rs-content-type": self.rs_content_type,
            "cs-uri-scheme": self.cs_uri_scheme,
            "cs-host": self.cs_host,
            "cs-uri-port": str(self.cs_uri_port),
            "cs-uri-path": self.cs_uri_path,
            "cs-uri-query": self.cs_uri_query,
            "cs-uri-ext": self.cs_uri_ext,
            "cs-user-agent": self.cs_user_agent,
            "s-ip": self.s_ip,
            "sc-bytes": str(self.sc_bytes),
            "cs-bytes": str(self.cs_bytes),
            "x-virus-id": self.x_virus_id,
            "s-supplier-name": self.s_supplier_name,
        }
        return [values[name] for name in FIELDS]

    @classmethod
    def from_row(cls, row: list[str]) -> "LogRecord":
        """Parse a 26-column CSV row (inverse of :meth:`to_row`)."""
        if len(row) != len(FIELDS):
            raise ValueError(f"expected {len(FIELDS)} columns, got {len(row)}")
        values = dict(zip(FIELDS, row))
        return cls(
            epoch=date_time_to_epoch(values["date"], values["time"]),
            time_taken=int(values["time-taken"]),
            c_ip=values["c-ip"],
            cs_username=values["cs-username"],
            cs_auth_group=values["cs-auth-group"],
            x_exception_id=values["x-exception-id"],
            sc_filter_result=values["sc-filter-result"],
            cs_categories=values["cs-categories"],
            cs_referer=values["cs-referer"],
            sc_status=int(values["sc-status"]),
            s_action=values["s-action"],
            cs_method=values["cs-method"],
            rs_content_type=values["rs-content-type"],
            cs_uri_scheme=values["cs-uri-scheme"],
            cs_host=values["cs-host"],
            cs_uri_port=int(values["cs-uri-port"]),
            cs_uri_path=values["cs-uri-path"],
            cs_uri_query=values["cs-uri-query"],
            cs_uri_ext=values["cs-uri-ext"],
            cs_user_agent=values["cs-user-agent"],
            s_ip=values["s-ip"],
            sc_bytes=int(values["sc-bytes"]),
            cs_bytes=int(values["cs-bytes"]),
            x_virus_id=values["x-virus-id"],
            s_supplier_name=values["s-supplier-name"],
        )
