"""The 26-field ELFF schema of the leaked SG-9000 logs.

The leaked files are comma-separated with a W3C-style ``#Fields``
directive.  Field names follow Blue Coat's ELFF conventions; the subset
that the paper's analysis relies on is documented in its Table 2.
"""

from __future__ import annotations

from enum import Enum

# Order matters: it is the column order of the leaked CSV files.
FIELDS: tuple[str, ...] = (
    "date",  # GMT date, YYYY-MM-DD
    "time",  # GMT time, HH:MM:SS
    "time-taken",  # milliseconds spent processing the request
    "c-ip",  # client IP (zeroed or hashed by Telecomix before release)
    "cs-username",  # authenticated user name ('-' throughout the leak)
    "cs-auth-group",  # authentication group ('-' throughout the leak)
    "x-exception-id",  # exception raised, '-' when none
    "sc-filter-result",  # OBSERVED / PROXIED / DENIED
    "cs-categories",  # URL categories assigned by the content filter
    "cs-referer",  # Referer request header
    "sc-status",  # HTTP status code returned to the client
    "s-action",  # what the appliance did (TCP_NC_MISS, TCP_DENIED, ...)
    "cs-method",  # HTTP method (GET/POST/CONNECT/...)
    "rs-content-type",  # Content-Type of the origin response
    "cs-uri-scheme",  # scheme of the requested URL
    "cs-host",  # hostname or IP address of the requested URL
    "cs-uri-port",  # port of the requested URL
    "cs-uri-path",  # path of the requested URL
    "cs-uri-query",  # query of the requested URL
    "cs-uri-ext",  # extension of the requested URL
    "cs-user-agent",  # User-Agent request header
    "s-ip",  # IP address of the proxy that processed the request
    "sc-bytes",  # bytes sent to the client
    "cs-bytes",  # bytes received from the client
    "x-virus-id",  # virus scanner verdict ('-' throughout the leak)
    "s-supplier-name",  # upstream host the proxy contacted
)

assert len(FIELDS) == 26, "the leaked schema has exactly 26 fields"


class FilterResult(str, Enum):
    """Value set of ``sc-filter-result`` (Section 3.2 of the paper)."""

    OBSERVED = "OBSERVED"  # request served after contacting the origin
    PROXIED = "PROXIED"  # outcome determined by the proxy cache
    DENIED = "DENIED"  # request not served (exception raised)

    def __str__(self) -> str:  # log files carry the bare token
        return self.value


class SAction(str, Enum):
    """Common ``s-action`` tokens emitted by SGOS."""

    TCP_NC_MISS = "TCP_NC_MISS"  # fetched from origin, not cached
    TCP_HIT = "TCP_HIT"  # served from cache
    TCP_MISS = "TCP_MISS"  # cache miss, fetched and cached
    TCP_DENIED = "TCP_DENIED"  # denied by policy
    TCP_POLICY_REDIRECT = "TCP_POLICY_REDIRECT"  # redirected by policy
    TCP_ERR_MISS = "TCP_ERR_MISS"  # errored while fetching
    TCP_TUNNELED = "TCP_TUNNELED"  # CONNECT tunnel

    def __str__(self) -> str:
        return self.value


# IP range of the seven proxies; the paper names each proxy SG-<suffix>.
PROXY_IP_PREFIX = "82.137.200."
PROXY_SUFFIXES: tuple[int, ...] = (42, 43, 44, 45, 46, 47, 48)
PROXY_NAMES: tuple[str, ...] = tuple(f"SG-{suffix}" for suffix in PROXY_SUFFIXES)


def proxy_ip(suffix: int) -> str:
    """The ``s-ip`` of proxy SG-*suffix*."""
    if suffix not in PROXY_SUFFIXES:
        raise ValueError(f"unknown proxy suffix: {suffix}")
    return f"{PROXY_IP_PREFIX}{suffix}"


def proxy_name_from_ip(s_ip: str) -> str:
    """Map an ``s-ip`` value back to the paper's SG-NN name."""
    if not s_ip.startswith(PROXY_IP_PREFIX):
        raise ValueError(f"not a proxy address: {s_ip}")
    suffix = int(s_ip[len(PROXY_IP_PREFIX):])
    if suffix not in PROXY_SUFFIXES:
        raise ValueError(f"not a proxy address: {s_ip}")
    return f"SG-{suffix}"
