"""Release-privacy audit.

The paper's ethics section (3.4) describes the safeguards around the
leaked data; the release itself was only possible because Telecomix
suppressed client identifiers first.  This module audits a log release
the way a careful publisher would: scan every record for raw client
addresses, verify pseudonym consistency, and report what a re-release
would leak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.logmodel.anonymize import ZEROED_CLIENT_IP
from repro.logmodel.elff import read_log
from repro.net.ip import is_ipv4

#: Address blocks that are infrastructure, not clients: the proxies
#: themselves may legitimately appear in other fields.
_PROXY_PREFIX = "82.137.200."


@dataclass
class AuditFindings:
    """What the audit saw."""

    records: int = 0
    zeroed: int = 0
    hashed: int = 0
    raw_client_addresses: int = 0
    #: distinct raw addresses found (capped) — the actual leak surface.
    leaked_addresses: set[str] = field(default_factory=set)
    #: pseudonyms observed (for consistency statistics).
    pseudonyms: set[str] = field(default_factory=set)

    @property
    def safe(self) -> bool:
        """True when no raw client address survived anonymization."""
        return self.raw_client_addresses == 0

    def summary(self) -> str:
        """One-line human-readable verdict."""
        state = "SAFE" if self.safe else "UNSAFE"
        return (
            f"{state}: {self.records} records — {self.zeroed} zeroed, "
            f"{self.hashed} pseudonymized, {self.raw_client_addresses} raw "
            f"client addresses ({len(self.leaked_addresses)} distinct)"
        )


def audit_record_cip(c_ip: str, findings: AuditFindings, max_leaks: int = 50) -> None:
    """Classify one ``c-ip`` value into the findings."""
    findings.records += 1
    if c_ip == ZEROED_CLIENT_IP:
        findings.zeroed += 1
    elif is_ipv4(c_ip):
        findings.raw_client_addresses += 1
        if len(findings.leaked_addresses) < max_leaks:
            findings.leaked_addresses.add(c_ip)
    else:
        findings.hashed += 1
        findings.pseudonyms.add(c_ip)


def audit_release(*paths: Path, lenient: bool = True) -> AuditFindings:
    """Audit ELFF log files for client-address leaks."""
    findings = AuditFindings()
    for path in paths:
        for record in read_log(path, lenient=lenient):
            audit_record_cip(record.c_ip, findings)
    return findings


def audit_frame(frame) -> AuditFindings:
    """Audit an in-memory :class:`~repro.frame.LogFrame`."""
    findings = AuditFindings()
    for c_ip in frame.col("c_ip"):
        audit_record_cip(str(c_ip), findings)
    return findings
