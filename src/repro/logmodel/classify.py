"""Request classification (Section 3.3 of the paper).

The paper classifies every logged request from two fields:

* ``sc-filter-result`` — OBSERVED / PROXIED / DENIED;
* ``x-exception-id`` — '-' when no exception was raised.

Classification rules:

* **Allowed** — ``x-exception-id == '-'``;
* **Denied** — any exception; further split into
  **Censored** (``policy_denied`` / ``policy_redirect``) and
  **Error** (every other exception);
* **Proxied** — ``sc-filter-result == PROXIED``; the paper treats these
  like the rest of the traffic (classified by exception id) but reports
  them separately where relevant, which :func:`classify` supports via
  ``proxied_separate``.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

NO_EXCEPTION = "-"

#: Exception ids that mean "denied by censorship policy".  The first
#: two are the Blue Coat vocabulary the paper observes in Syria; the
#: rest are the verdict signatures of the other registered regime
#: profiles (:mod:`repro.regimes`): Pakistan's injected DNS answers
#: and HTTP block pages, Turkmenistan's DPI RST teardowns.  Adding an
#: id here threads it through every mask, breakdown, and streaming
#: accumulator without touching them.
CENSOR_EXCEPTIONS = frozenset(
    {
        "policy_denied",
        "policy_redirect",
        "dns_injected_nxdomain",
        "http_blockpage",
        "dpi_rst_teardown",
    }
)

# Exception ids that indicate a network/protocol failure rather than a
# policy decision, with the paper's Table 3 vocabulary.
ERROR_EXCEPTIONS = frozenset(
    {
        "tcp_error",
        "internal_error",
        "invalid_request",
        "unsupported_protocol",
        "dns_unresolved_hostname",
        "dns_server_failure",
        "unsupported_encoding",
        "invalid_response",
    }
)

KNOWN_EXCEPTIONS = CENSOR_EXCEPTIONS | ERROR_EXCEPTIONS | {NO_EXCEPTION}


class TrafficClass(str, Enum):
    """Classes of traffic used throughout the paper."""

    ALLOWED = "allowed"
    CENSORED = "censored"
    ERROR = "error"
    PROXIED = "proxied"

    def __str__(self) -> str:
        return self.value


def classify_exception(exception_id: str) -> TrafficClass:
    """Classify from the exception id alone (PROXIED treated inline)."""
    if exception_id == NO_EXCEPTION:
        return TrafficClass.ALLOWED
    if exception_id in CENSOR_EXCEPTIONS:
        return TrafficClass.CENSORED
    return TrafficClass.ERROR


def classify(
    filter_result: str,
    exception_id: str,
    proxied_separate: bool = False,
) -> TrafficClass:
    """Classify a request.

    With ``proxied_separate=True``, PROXIED requests are reported as
    their own class (used by Tables 8, 10, 13, 15, where the paper
    tabulates Censored / Allowed / Proxied side by side); otherwise
    they are folded into the exception-id classification, matching the
    paper's headline statistics.
    """
    if proxied_separate and filter_result == "PROXIED":
        return TrafficClass.PROXIED
    return classify_exception(exception_id)


def censor_mask(exception_ids: np.ndarray) -> np.ndarray:
    """Boolean mask of rows denied by censorship policy
    (vectorized :func:`is_censored`)."""
    exception_ids = np.asarray(exception_ids, dtype=object)
    mask = np.zeros(len(exception_ids), dtype=bool)
    for exception in CENSOR_EXCEPTIONS:
        mask |= exception_ids == exception
    return mask


def classify_batch(
    filter_results: np.ndarray,
    exception_ids: np.ndarray,
    proxied_separate: bool = False,
) -> np.ndarray:
    """Vectorized :func:`classify` over whole columns.

    Takes the ``sc-filter-result`` and ``x-exception-id`` columns as
    object arrays and returns an object array of :class:`TrafficClass`
    values, row for row identical to calling :func:`classify` on each
    pair.
    """
    filter_results = np.asarray(filter_results, dtype=object)
    exception_ids = np.asarray(exception_ids, dtype=object)
    if len(filter_results) != len(exception_ids):
        raise ValueError(
            f"column lengths differ: {len(filter_results)} filter "
            f"results, {len(exception_ids)} exception ids"
        )
    classes = np.full(len(exception_ids), TrafficClass.ERROR, dtype=object)
    classes[exception_ids == NO_EXCEPTION] = TrafficClass.ALLOWED
    classes[censor_mask(exception_ids)] = TrafficClass.CENSORED
    if proxied_separate:
        classes[filter_results == "PROXIED"] = TrafficClass.PROXIED
    return classes


def is_denied(exception_id: str) -> bool:
    """True when the request was not served (censored or errored)."""
    return exception_id != NO_EXCEPTION


def is_censored(exception_id: str) -> bool:
    """True when the request was denied by censorship policy."""
    return exception_id in CENSOR_EXCEPTIONS
