"""Request classification (Section 3.3 of the paper).

The paper classifies every logged request from two fields:

* ``sc-filter-result`` — OBSERVED / PROXIED / DENIED;
* ``x-exception-id`` — '-' when no exception was raised.

Classification rules:

* **Allowed** — ``x-exception-id == '-'``;
* **Denied** — any exception; further split into
  **Censored** (``policy_denied`` / ``policy_redirect``) and
  **Error** (every other exception);
* **Proxied** — ``sc-filter-result == PROXIED``; the paper treats these
  like the rest of the traffic (classified by exception id) but reports
  them separately where relevant, which :func:`classify` supports via
  ``proxied_separate``.
"""

from __future__ import annotations

from enum import Enum

NO_EXCEPTION = "-"

CENSOR_EXCEPTIONS = frozenset({"policy_denied", "policy_redirect"})

# Exception ids that indicate a network/protocol failure rather than a
# policy decision, with the paper's Table 3 vocabulary.
ERROR_EXCEPTIONS = frozenset(
    {
        "tcp_error",
        "internal_error",
        "invalid_request",
        "unsupported_protocol",
        "dns_unresolved_hostname",
        "dns_server_failure",
        "unsupported_encoding",
        "invalid_response",
    }
)

KNOWN_EXCEPTIONS = CENSOR_EXCEPTIONS | ERROR_EXCEPTIONS | {NO_EXCEPTION}


class TrafficClass(str, Enum):
    """Classes of traffic used throughout the paper."""

    ALLOWED = "allowed"
    CENSORED = "censored"
    ERROR = "error"
    PROXIED = "proxied"

    def __str__(self) -> str:
        return self.value


def classify_exception(exception_id: str) -> TrafficClass:
    """Classify from the exception id alone (PROXIED treated inline)."""
    if exception_id == NO_EXCEPTION:
        return TrafficClass.ALLOWED
    if exception_id in CENSOR_EXCEPTIONS:
        return TrafficClass.CENSORED
    return TrafficClass.ERROR


def classify(
    filter_result: str,
    exception_id: str,
    proxied_separate: bool = False,
) -> TrafficClass:
    """Classify a request.

    With ``proxied_separate=True``, PROXIED requests are reported as
    their own class (used by Tables 8, 10, 13, 15, where the paper
    tabulates Censored / Allowed / Proxied side by side); otherwise
    they are folded into the exception-id classification, matching the
    paper's headline statistics.
    """
    if proxied_separate and filter_result == "PROXIED":
        return TrafficClass.PROXIED
    return classify_exception(exception_id)


def is_denied(exception_id: str) -> bool:
    """True when the request was not served (censored or errored)."""
    return exception_id != NO_EXCEPTION


def is_censored(exception_id: str) -> bool:
    """True when the request was denied by censorship policy."""
    return exception_id in CENSOR_EXCEPTIONS
