"""Mergeable record sinks: lists, counters, analyses, frames, ELFF.

Every sink here satisfies the monoid laws the engine's reduce needs
(``fresh`` identity, associative ``merge``, merge-equals-single-pass),
so any of them — or any :class:`TeeSink` fan-out of them — can be the
reduce side of ``run_sharded``.  Buffered sinks are picklable, which is
how a worker ships its shard's accumulated state back to the parent.
"""

from __future__ import annotations

import csv
import io
import sys
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.analysis.streaming import StreamingAnalysis
from repro.frame.batch import RecordBatch
from repro.frame.io import (
    FRAME_COLUMNS,
    append_record,
    buffers_to_frame,
    new_record_buffers,
)
from repro.frame.logframe import LogFrame
from repro.logmodel.elff import DEFAULT_SOFTWARE, elff_header, open_log_writer
from repro.logmodel.record import LogRecord
from repro.pipeline.core import Sink
from repro.timeline import epoch_day


class CountSink(Sink):
    """The trivial sink: counts items and keeps nothing else."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, item) -> None:
        self.count += 1

    def add_batch(self, batch: RecordBatch) -> None:
        self.count += len(batch)

    def fresh(self) -> "CountSink":
        return CountSink()

    def merge(self, other: "CountSink") -> "CountSink":
        self.count += other.count
        return self

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountSink):
            return NotImplemented
        return self.count == other.count


class RecordListSink(Sink):
    """Materialize the stream as a list (the legacy consumers' shape)."""

    def __init__(self) -> None:
        self.records: list[LogRecord] = []

    def add(self, record: LogRecord) -> None:
        self.records.append(record)

    def add_batch(self, batch: RecordBatch) -> None:
        self.records.extend(batch.iter_records())

    def consume(self, stream: Iterable) -> "RecordListSink":
        self.records.extend(stream)
        return self

    def fresh(self) -> "RecordListSink":
        return RecordListSink()

    def merge(self, other: "RecordListSink") -> "RecordListSink":
        self.records.extend(other.records)
        return self

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordListSink):
            return NotImplemented
        return self.records == other.records


class StreamingAnalysisSink(Sink):
    """Fold the stream into a :class:`StreamingAnalysis` accumulator."""

    def __init__(self, analysis: StreamingAnalysis | None = None) -> None:
        self.analysis = analysis if analysis is not None else StreamingAnalysis()

    def add(self, record: LogRecord) -> None:
        self.analysis.add(record)

    def add_batch(self, batch: RecordBatch) -> None:
        self.analysis.add_batch(batch)

    def consume(self, stream: Iterable) -> "StreamingAnalysisSink":
        # Route through the accumulator's own consume so the pass is
        # timed and counted when a metrics registry is active.
        self.analysis.consume(stream)
        return self

    def consume_batches(
        self, batches: Iterable[RecordBatch]
    ) -> "StreamingAnalysisSink":
        # Same routing for the batched pass (timing + row counting).
        self.analysis.consume_batches(batches)
        return self

    def fresh(self) -> "StreamingAnalysisSink":
        return StreamingAnalysisSink()

    def merge(self, other: "StreamingAnalysisSink") -> "StreamingAnalysisSink":
        self.analysis.merge(other.analysis)
        return self

    def __len__(self) -> int:
        return self.analysis.total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingAnalysisSink):
            return NotImplemented
        return self.analysis == other.analysis


class FrameSink(Sink):
    """Fold the stream straight into columnar buffers.

    The fused alternative to "collect a record list, then
    ``frame_from_records``": per-column Python lists grow as records
    flow, and :meth:`frame` materializes the arrays.  Merging re-interns
    string cells, because pickling across the process boundary breaks
    interning — without it a sharded build would hold one string object
    per shard per distinct value instead of one overall.
    """

    def __init__(self) -> None:
        self._buffers = new_record_buffers()

    def add(self, record: LogRecord) -> None:
        append_record(self._buffers, record)

    def add_batch(self, batch: RecordBatch) -> None:
        intern = sys.intern
        for name, buffer in self._buffers.items():
            values = batch.col(name).tolist()
            if FRAME_COLUMNS[name] == "object":
                buffer.extend(map(intern, values))
            else:
                buffer.extend(values)

    def fresh(self) -> "FrameSink":
        return FrameSink()

    def merge(self, other: "FrameSink") -> "FrameSink":
        intern = sys.intern
        for name, buffer in self._buffers.items():
            if FRAME_COLUMNS[name] == "object":
                buffer.extend(map(intern, other._buffers[name]))
            else:
                buffer.extend(other._buffers[name])
        return self

    def frame(self) -> LogFrame:
        """Materialize the accumulated columns as a :class:`LogFrame`."""
        return buffers_to_frame(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers["epoch"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrameSink):
            return NotImplemented
        return self._buffers == other._buffers


class TeeSink(Sink):
    """Fan one stream out to several member sinks in one pass.

    With no members it still drains the stream (and counts it), which
    makes it the do-nothing end of a pipeline.  Merging is member-wise
    and requires both tees to have the same arity.
    """

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks = list(sinks)
        self.count = 0

    def add(self, item) -> None:
        self.count += 1
        for sink in self.sinks:
            sink.add(item)

    def add_batch(self, batch: RecordBatch) -> None:
        self.count += len(batch)
        for sink in self.sinks:
            sink.add_batch(batch)

    def fresh(self) -> "TeeSink":
        return TeeSink(sink.fresh() for sink in self.sinks)

    def merge(self, other: "TeeSink") -> "TeeSink":
        if len(self.sinks) != len(other.sinks):
            raise ValueError(
                f"cannot merge a {len(other.sinks)}-way tee into a "
                f"{len(self.sinks)}-way tee"
            )
        for mine, theirs in zip(self.sinks, other.sinks):
            mine.merge(theirs)
        self.count += other.count
        return self

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TeeSink):
            return NotImplemented
        return self.count == other.count and self.sinks == other.sinks


class ElffSink(Sink):
    """Serialize the stream as an ELFF/CSV log, byte-identical to
    :func:`~repro.logmodel.elff.write_log`.

    Two modes:

    * **bound** (constructed with a path or open text handle): the
      directive header is written immediately and each record streams
      out as it arrives — constant memory, gzip-transparent for ``.gz``
      paths.
    * **buffered** (no destination): rows accumulate in memory.  This
      is the mergeable form workers ship back to the parent; merging a
      buffered sink into a bound one streams the buffered body to disk,
      so the parent never holds more than one shard.

    Only buffered sinks are picklable and only buffered sinks can be
    merged *from*; ``fresh()`` always yields a buffered sink, which is
    what a shard-local copy must be.
    """

    def __init__(
        self,
        destination: Path | str | io.TextIOBase | None = None,
        software: str = DEFAULT_SOFTWARE,
    ) -> None:
        self.software = software
        self.count = 0
        self._owns_handle = False
        self._buffered = destination is None
        if destination is None:
            self._handle = io.StringIO()
        elif isinstance(destination, (str, Path)):
            self._handle = open_log_writer(destination)
            self._owns_handle = True
            self._handle.write(elff_header(software))
        else:
            self._handle = destination
            self._handle.write(elff_header(software))
        self._writer = csv.writer(self._handle)

    @property
    def buffered(self) -> bool:
        """Whether this sink accumulates in memory (mergeable form)."""
        return self._buffered

    def add(self, record: LogRecord) -> None:
        self._writer.writerow(record.to_row())
        self.count += 1

    def add_batch(self, batch: RecordBatch) -> None:
        # Batch rows keep numeric cells as Python ints; csv.writer
        # stringifies them exactly like to_row()'s str() calls, so the
        # serialized bytes match the scalar path.
        self._writer.writerows(batch.to_rows())
        self.count += len(batch)

    def fresh(self) -> "ElffSink":
        return ElffSink(software=self.software)

    def merge(self, other: "ElffSink") -> "ElffSink":
        if not other.buffered:
            raise ValueError("can only merge a buffered ElffSink")
        self._handle.write(other.body_text())
        self.count += other.count
        return self

    def body_text(self) -> str:
        """The accumulated CSV body (buffered sinks only)."""
        if not self.buffered:
            raise ValueError("a bound ElffSink has already streamed out")
        return self._handle.getvalue()

    def write_to(self, path: Path | str) -> int:
        """Write header + buffered body to *path*; returns the count."""
        with open_log_writer(path) as handle:
            handle.write(elff_header(self.software))
            handle.write(self.body_text())
        return self.count

    def close(self) -> None:
        """Close a handle this sink opened itself (bound-to-path mode)."""
        if self._owns_handle:
            self._handle.close()

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ElffSink):
            return NotImplemented
        if not (self.buffered and other.buffered):
            return NotImplemented
        return (self.software, self.count, self.body_text()) == (
            other.software, other.count, other.body_text()
        )

    # -- pickling (only the buffered form crosses processes) ---------------

    def __getstate__(self) -> dict:
        if not self.buffered:
            raise TypeError("only buffered ElffSinks are picklable")
        return {
            "software": self.software,
            "count": self.count,
            "body": self._handle.getvalue(),
        }

    def __setstate__(self, state: dict) -> None:
        self.software = state["software"]
        self.count = state["count"]
        self._owns_handle = False
        self._buffered = True
        self._handle = io.StringIO()
        self._handle.write(state["body"])
        self._writer = csv.writer(self._handle)


class GroupedElffSink(Sink):
    """Route records into per-file buffered :class:`ElffSink` groups.

    Grouping mirrors the leak's file structure: one combined
    ``proxies`` group by default, ``sg-NN[_day]`` stems with the
    flags — the same naming :func:`~repro.engine.simulate.write_logs`
    has always produced.  ``compress=True`` makes :meth:`write_dir`
    emit ``.log.gz`` files.
    """

    def __init__(
        self,
        *,
        per_proxy: bool = False,
        per_day: bool = False,
        compress: bool = False,
        software: str = DEFAULT_SOFTWARE,
    ) -> None:
        self.per_proxy = per_proxy
        self.per_day = per_day
        self.compress = compress
        self.software = software
        self.groups: dict[str, ElffSink] = {}

    def _stem(self, record: LogRecord) -> str:
        if not (self.per_proxy or self.per_day):
            return "proxies"
        parts = []
        if self.per_proxy:
            parts.append(f"sg-{record.s_ip.rsplit('.', 1)[-1]}")
        if self.per_day:
            parts.append(epoch_day(record.epoch))
        return "_".join(parts)

    def add(self, record: LogRecord) -> None:
        group = self._group(self._stem(record))
        group.add(record)

    def _group(self, stem: str) -> ElffSink:
        group = self.groups.get(stem)
        if group is None:
            group = self.groups[stem] = ElffSink(software=self.software)
        return group

    def _batch_stems(self, batch: RecordBatch) -> np.ndarray:
        """Per-row group stems, computed once per distinct proxy/day."""
        parts = []
        if self.per_proxy:
            uniques, inverse = np.unique(batch.col("s_ip"), return_inverse=True)
            mapped = np.array(
                [f"sg-{ip.rsplit('.', 1)[-1]}" for ip in uniques.tolist()],
                dtype=object,
            )
            parts.append(mapped[inverse])
        if self.per_day:
            uniques, inverse = np.unique(
                batch.col("epoch") // 86400, return_inverse=True
            )
            mapped = np.array(
                [epoch_day(int(day) * 86400) for day in uniques.tolist()],
                dtype=object,
            )
            parts.append(mapped[inverse])
        stems = parts[0]
        for part in parts[1:]:
            stems = stems + "_" + part
        return stems

    def add_batch(self, batch: RecordBatch) -> None:
        if not len(batch):
            return
        if not (self.per_proxy or self.per_day):
            self._group("proxies").add_batch(batch)
            return
        stems = self._batch_stems(batch)
        uniques, first_index, inverse = np.unique(
            stems, return_index=True, return_inverse=True
        )
        # Visit groups in first-seen order so new groups land in the
        # dict exactly where record-at-a-time routing would put them.
        for position in np.argsort(first_index, kind="stable").tolist():
            self._group(uniques[position]).add_batch(
                batch.take(inverse == position)
            )

    def fresh(self) -> "GroupedElffSink":
        return GroupedElffSink(
            per_proxy=self.per_proxy,
            per_day=self.per_day,
            compress=self.compress,
            software=self.software,
        )

    def merge(self, other: "GroupedElffSink") -> "GroupedElffSink":
        for stem, theirs in other.groups.items():
            mine = self.groups.get(stem)
            if mine is None:
                mine = self.groups[stem] = theirs.fresh()
            mine.merge(theirs)
        return self

    def write_dir(self, out_dir: Path | str) -> list[tuple[Path, int]]:
        """Write one file per group into *out_dir*, sorted by stem.

        The combined (ungrouped) form always writes its ``proxies``
        file, even for an empty stream, matching the legacy writer.
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        if not (self.per_proxy or self.per_day) and "proxies" not in self.groups:
            self.groups["proxies"] = ElffSink(software=self.software)
        suffix = ".log.gz" if self.compress else ".log"
        return [
            (out_dir / f"{stem}{suffix}",
             self.groups[stem].write_to(out_dir / f"{stem}{suffix}"))
            for stem in sorted(self.groups)
        ]

    def __len__(self) -> int:
        return sum(group.count for group in self.groups.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupedElffSink):
            return NotImplemented
        return (
            (self.per_proxy, self.per_day, self.compress, self.software)
            == (other.per_proxy, other.per_day, other.compress,
                other.software)
            and self.groups == other.groups
        )
