"""The Source → Stage → Sink contracts and the fused traversal.

A pipeline is one pass over a record stream: a :class:`Source` yields
items, each :class:`Stage` transforms the stream lazily, and a
:class:`Sink` folds the items into its accumulated state.  Nothing in
the pipeline materializes the stream — memory is whatever the sink
keeps, which is what lets ``report`` run a full scenario without ever
holding the record list and what the paper's 600 GB single-pass
constraint demands.

Sinks are *mergeable*: ``fresh()`` is the identity element, ``merge``
is associative, and folding a stream split across fresh sinks then
merging in split order equals folding the whole stream into one sink.
Those are exactly the laws the sharded engine's reduce relies on
(property-tested in ``tests/test_pipeline.py``), so any sink can ride
``run_sharded`` the way :class:`~repro.analysis.streaming.
StreamingAnalysis` always has.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any


class Source:
    """A replayable-or-not stream of items; anything iterable works.

    Subclasses implement ``__iter__``.  Plain iterables can be wrapped
    with :class:`~repro.pipeline.sources.RecordsSource`, but the
    pipeline duck-types: ``Pipeline`` accepts any iterable.
    """

    def __iter__(self) -> Iterator:
        raise NotImplementedError


class Stage:
    """A lazy stream transformer: iterator in, iterator out.

    Subclasses implement :meth:`process` as a generator.  Stages must
    preserve stream order (the engine's byte-identity guarantees fold
    in shard order) and may be stateful only in ways that do not depend
    on how the stream is chunked.
    """

    def process(self, stream: Iterator) -> Iterator:
        raise NotImplementedError

    def __call__(self, stream: Iterable) -> Iterator:
        return self.process(iter(stream))


class Sink:
    """A mergeable stream consumer.

    Subclasses implement :meth:`add` (fold one item), :meth:`fresh`
    (an empty sink with the same configuration — the merge identity),
    :meth:`merge` (fold another sink's state in, returning self), and
    ``__len__`` (items consumed, which the engine uses for per-shard
    throughput and ``records_by_day``).
    """

    def add(self, item: Any) -> None:
        raise NotImplementedError

    def consume(self, stream: Iterable) -> "Sink":
        """Fold every item of *stream*; returns self for chaining."""
        for item in stream:
            self.add(item)
        return self

    def fresh(self) -> "Sink":
        """An empty sink configured like this one (the merge identity)."""
        raise NotImplementedError

    def merge(self, other: "Sink") -> "Sink":
        """Fold *other*'s accumulated state in; returns self."""
        raise NotImplementedError

    def copy(self) -> "Sink":
        """An independent sink with the same state."""
        return self.fresh().merge(self)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iadd__(self, other: "Sink") -> "Sink":
        if not isinstance(other, Sink):
            return NotImplemented
        return self.merge(other)

    def __add__(self, other: "Sink") -> "Sink":
        """Non-mutating merge; ``sum(parts, sink.fresh())`` works."""
        if not isinstance(other, Sink):
            return NotImplemented
        return self.copy().merge(other)


class Pipeline:
    """A source with an ordered chain of stages, run into a sink.

    Iterating a pipeline yields the fully transformed stream;
    :meth:`run` folds it into a sink in one pass.  Pipelines are cheap
    descriptions — nothing executes until iteration.
    """

    def __init__(self, source: Iterable, stages: Iterable[Stage] = ()):
        self.source = source
        self.stages = tuple(stages)

    def through(self, stage: Stage) -> "Pipeline":
        """A new pipeline with *stage* appended."""
        return Pipeline(self.source, self.stages + (stage,))

    def __iter__(self) -> Iterator:
        stream: Iterator = iter(self.source)
        for stage in self.stages:
            stream = stage(stream)
        return stream

    def run(self, sink: Sink) -> Sink:
        """One fused pass: fold the transformed stream into *sink*."""
        return sink.consume(iter(self))
