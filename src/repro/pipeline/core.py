"""The Source → Stage → Sink contracts and the fused traversal.

A pipeline is one pass over a record stream: a :class:`Source` yields
items, each :class:`Stage` transforms the stream lazily, and a
:class:`Sink` folds the items into its accumulated state.  Nothing in
the pipeline materializes the stream — memory is whatever the sink
keeps, which is what lets ``report`` run a full scenario without ever
holding the record list and what the paper's 600 GB single-pass
constraint demands.

Sinks are *mergeable*: ``fresh()`` is the identity element, ``merge``
is associative, and folding a stream split across fresh sinks then
merging in split order equals folding the whole stream into one sink.
Those are exactly the laws the sharded engine's reduce relies on
(property-tested in ``tests/test_pipeline.py``), so any sink can ride
``run_sharded`` the way :class:`~repro.analysis.streaming.
StreamingAnalysis` always has.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import islice
from typing import Any

from repro.frame.batch import RecordBatch


class Source:
    """A replayable-or-not stream of items; anything iterable works.

    Subclasses implement ``__iter__``.  Plain iterables can be wrapped
    with :class:`~repro.pipeline.sources.RecordsSource`, but the
    pipeline duck-types: ``Pipeline`` accepts any iterable.
    """

    def __iter__(self) -> Iterator:
        raise NotImplementedError


class Stage:
    """A lazy stream transformer: iterator in, iterator out.

    Subclasses implement :meth:`process` as a generator.  Stages must
    preserve stream order (the engine's byte-identity guarantees fold
    in shard order) and may be stateful only in ways that do not depend
    on how the stream is chunked.
    """

    def process(self, stream: Iterator) -> Iterator:
        raise NotImplementedError

    def process_batch(
        self, batches: Iterator[RecordBatch]
    ) -> Iterator[RecordBatch]:
        """Transform a stream of :class:`RecordBatch` chunks.

        The base implementation is the automatic scalar fallback: the
        incoming batches are flattened into one record stream,
        :meth:`process` runs over it exactly once (so stages that keep
        state across the whole stream — rng draws, dedup sets — behave
        identically to scalar execution), and the result is re-chunked
        to the first incoming batch's size.  Chunk boundaries are not
        semantic — stages must already be chunking-insensitive — so
        subclasses override this only to go *faster*, never to change
        the record stream.
        """
        batches = iter(batches)
        try:
            first = next(batches)
        except StopIteration:
            return
        size = max(len(first), 1)

        def records() -> Iterator:
            yield from first.iter_records()
            for batch in batches:
                yield from batch.iter_records()

        stream = self.process(records())
        while True:
            chunk = list(islice(stream, size))
            if not chunk:
                return
            yield RecordBatch.from_records(chunk)

    def __call__(self, stream: Iterable) -> Iterator:
        return self.process(iter(stream))


def is_batch_native(stage: Stage) -> bool:
    """Whether *stage* overrides :meth:`Stage.process_batch` (and so
    benefits from receiving columns rather than records)."""
    return type(stage).process_batch is not Stage.process_batch


class Sink:
    """A mergeable stream consumer.

    Subclasses implement :meth:`add` (fold one item), :meth:`fresh`
    (an empty sink with the same configuration — the merge identity),
    :meth:`merge` (fold another sink's state in, returning self), and
    ``__len__`` (items consumed, which the engine uses for per-shard
    throughput and ``records_by_day``).
    """

    def add(self, item: Any) -> None:
        raise NotImplementedError

    def consume(self, stream: Iterable) -> "Sink":
        """Fold every item of *stream*; returns self for chaining."""
        for item in stream:
            self.add(item)
        return self

    def add_batch(self, batch: RecordBatch) -> None:
        """Fold one column batch.

        The base implementation is the scalar fallback — iterate the
        batch's records through :meth:`add` — so every sink accepts
        batches out of the box.  Subclasses override it to fold columns
        directly; either way the resulting state must equal adding the
        records one at a time (the batch/scalar equivalence law the
        differential suite pins).
        """
        for item in batch.iter_records():
            self.add(item)

    def consume_batches(self, batches: Iterable[RecordBatch]) -> "Sink":
        """Fold a stream of batches; returns self for chaining."""
        for batch in batches:
            self.add_batch(batch)
        return self

    def fresh(self) -> "Sink":
        """An empty sink configured like this one (the merge identity)."""
        raise NotImplementedError

    def merge(self, other: "Sink") -> "Sink":
        """Fold *other*'s accumulated state in; returns self."""
        raise NotImplementedError

    def copy(self) -> "Sink":
        """An independent sink with the same state."""
        return self.fresh().merge(self)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iadd__(self, other: "Sink") -> "Sink":
        if not isinstance(other, Sink):
            return NotImplemented
        return self.merge(other)

    def __add__(self, other: "Sink") -> "Sink":
        """Non-mutating merge; ``sum(parts, sink.fresh())`` works."""
        if not isinstance(other, Sink):
            return NotImplemented
        return self.copy().merge(other)


class Pipeline:
    """A source with an ordered chain of stages, run into a sink.

    Iterating a pipeline yields the fully transformed stream;
    :meth:`run` folds it into a sink in one pass.  Pipelines are cheap
    descriptions — nothing executes until iteration.
    """

    def __init__(self, source: Iterable, stages: Iterable[Stage] = ()):
        self.source = source
        self.stages = tuple(stages)

    def through(self, stage: Stage) -> "Pipeline":
        """A new pipeline with *stage* appended."""
        return Pipeline(self.source, self.stages + (stage,))

    def __iter__(self) -> Iterator:
        stream: Iterator = iter(self.source)
        for stage in self.stages:
            stream = stage(stream)
        return stream

    def run(self, sink: Sink) -> Sink:
        """One fused pass: fold the transformed stream into *sink*."""
        return sink.consume(iter(self))

    def iter_batches(self, batch_size: int) -> Iterator[RecordBatch]:
        """The transformed stream as :class:`RecordBatch` chunks.

        Routing keeps each part of the chain in its natural
        representation: a batch-capable source yields columns directly;
        otherwise the leading run of scalar-only stages executes on the
        record stream (no pointless record→batch→record bounce — the
        fleet stage, which draws rng per record, stays scalar) and the
        stream is chunked just before the first batch-native stage.
        From there every stage sees batches, scalar-only stages via the
        automatic :meth:`Stage.process_batch` fallback.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        stages = self.stages
        start = 0
        if hasattr(self.source, "iter_batches"):
            stream = self.source.iter_batches(batch_size)
        else:
            scalar: Iterator = iter(self.source)
            while start < len(stages) and not is_batch_native(stages[start]):
                scalar = stages[start](scalar)
                start += 1
            stream = chunk_records(scalar, batch_size)
        for stage in stages[start:]:
            stream = stage.process_batch(stream)
        return stream

    def run_batched(self, sink: Sink, batch_size: int) -> Sink:
        """One fused pass in column-batch mode.

        State-identical to :meth:`run` at every batch size — only the
        execution strategy differs.
        """
        return sink.consume_batches(self.iter_batches(batch_size))


def chunk_records(stream: Iterable, batch_size: int) -> Iterator[RecordBatch]:
    """Chunk a record stream into :class:`RecordBatch` columns."""
    stream = iter(stream)
    while True:
        chunk = list(islice(stream, batch_size))
        if not chunk:
            return
        yield RecordBatch.from_records(chunk)
