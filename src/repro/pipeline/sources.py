"""Record-stream sources: simulated traffic and ELFF log files."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.faults import fault_point
from repro.frame.batch import RecordBatch
from repro.logmodel.elff import ReadStats, read_log, read_log_batches
from repro.logmodel.record import LogRecord
from repro.pipeline.core import Source


class RecordsSource(Source):
    """Wrap any in-memory iterable as a source."""

    def __init__(self, items: Iterable):
        self.items = items

    def __iter__(self) -> Iterator:
        return iter(self.items)


class DayTrafficSource(Source):
    """One simulated log-day of requests from a traffic generator.

    The generator's day pass is driven by the supplied *rng*, so the
    stream is a pure function of ``(config, day, rng state)`` — the
    property the sharded engine's byte-identity rests on.
    """

    def __init__(self, generator, day: str, rng: np.random.Generator):
        self.generator = generator
        self.day = day
        self.rng = rng

    def __iter__(self) -> Iterator:
        return iter(self.generator.generate_day(self.day, self.rng))


class ElffSource(Source):
    """Stream records from an ELFF log file (gzip-transparent).

    ``lenient=True`` skips malformed rows the way the Telecomix files
    require, counting them into *stats* when given; the default strict
    mode raises :class:`~repro.logmodel.elff.LogFormatError`.

    Iteration passes the ``elff.source`` fault site (and, underneath,
    the reader's ``elff.read``/``gzip.open`` sites), so an active
    :class:`~repro.faults.FaultPlan` can corrupt or fail file shards
    exactly where real disk trouble would surface.

    Both iteration paths are fully lazy: the fault site fires and the
    file is opened at the first ``next()``, never at construction or
    ``iter()``.  A source pre-built long before it is drained — the
    ingestion service builds sources for files that may not exist yet —
    fails at *read* time like every other site, inside whatever fault
    context and error handling surround the actual read.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        lenient: bool = False,
        stats: ReadStats | None = None,
    ):
        self.path = Path(path)
        self.lenient = lenient
        self.stats = stats

    def __iter__(self) -> Iterator[LogRecord]:
        fault_point("elff.source")
        yield from read_log(self.path, lenient=self.lenient, stats=self.stats)

    def iter_batches(self, batch_size: int) -> Iterator[RecordBatch]:
        """The same record stream as :class:`RecordBatch` columns.

        Passes the identical fault sites in the identical order as
        scalar iteration, so a :class:`~repro.faults.FaultPlan` hits
        the batched path exactly where it hits the scalar one.
        """
        fault_point("elff.source")
        yield from read_log_batches(
            self.path, batch_size, lenient=self.lenient, stats=self.stats
        )
