"""Composable Source → Stage → Sink record-stream pipelines.

This package is the architectural seam between producing records
(simulated traffic, ELFF files) and consuming them (analysis
accumulators, columnar frames, ELFF writers).  Everything flows in
one fused pass with sink-bounded memory:

* **Sources** (:mod:`~repro.pipeline.sources`) yield items:
  :class:`DayTrafficSource` wraps a traffic generator's log-day,
  :class:`ElffSource` the strict/lenient log readers,
  :class:`RecordsSource` any in-memory iterable.
* **Stages** (:mod:`~repro.pipeline.stages`) transform lazily:
  :class:`FleetStage` runs the proxy-fleet verdict pass,
  :class:`AnonymizeStage` the Telecomix address treatment.
* **Sinks** (:mod:`~repro.pipeline.sinks`) fold and merge:
  :class:`ElffSink`/:class:`GroupedElffSink` (byte-identical to
  ``write_log``, gzip-transparent), :class:`StreamingAnalysisSink`,
  :class:`FrameSink`, the fan-out :class:`TeeSink`, plus
  :class:`RecordListSink` and :class:`CountSink`.

Sinks form the same merge monoid as the engine's accumulators
(``fresh`` identity, associative ``merge``, merge-equals-single-pass),
so ``run_sharded`` reduces them exactly like ``StreamingAnalysis`` —
that is what lets ``simulate``, ``analyze``, and ``report`` all ride
one traversal per shard.

The pipeline also runs in **column-batch mode**
(:meth:`Pipeline.run_batched`): sources that can yield
:class:`~repro.frame.RecordBatch` columns do, batch-native stages and
sinks process them column-wise, and everything else falls back to
record-at-a-time transparently — with output byte-identical to
:meth:`Pipeline.run` at every batch size.
"""

from repro.pipeline.core import (
    Pipeline,
    Sink,
    Source,
    Stage,
    chunk_records,
    is_batch_native,
)
from repro.pipeline.sinks import (
    CountSink,
    ElffSink,
    FrameSink,
    GroupedElffSink,
    RecordListSink,
    StreamingAnalysisSink,
    TeeSink,
)
from repro.pipeline.sources import DayTrafficSource, ElffSource, RecordsSource
from repro.pipeline.stages import AnonymizeStage, FleetStage

__all__ = [
    "AnonymizeStage",
    "CountSink",
    "DayTrafficSource",
    "ElffSink",
    "ElffSource",
    "FleetStage",
    "FrameSink",
    "GroupedElffSink",
    "Pipeline",
    "RecordListSink",
    "RecordsSource",
    "Sink",
    "Source",
    "Stage",
    "StreamingAnalysisSink",
    "TeeSink",
    "chunk_records",
    "is_batch_native",
]
