"""Stream stages: the proxy-fleet verdict pass and anonymization."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.frame.batch import RecordBatch
from repro.logmodel.anonymize import hash_client_ip, zero_client_ip
from repro.logmodel.record import LogRecord
from repro.pipeline.core import Stage


class FleetStage(Stage):
    """Map requests to log records through a proxy fleet.

    Consumes the fleet's *rng* one request at a time in stream order —
    exactly the draws the batch loop ``[fleet.process(r, rng) for r in
    requests]`` makes, so fusing changes no output byte.
    """

    def __init__(self, fleet, rng: np.random.Generator):
        self.fleet = fleet
        self.rng = rng

    def process(self, stream: Iterator) -> Iterator[LogRecord]:
        fleet, rng = self.fleet, self.rng
        for request in stream:
            yield fleet.process(request, rng)


class AnonymizeStage(Stage):
    """Apply the Telecomix release treatment to client addresses.

    Records with an epoch inside a user slice get keyed hashes, all
    others zeroed addresses.  Draws no randomness, so it can interleave
    with the fleet stage without perturbing any stream.
    """

    def __init__(self, user_spans: list[tuple[int, int]]):
        self.user_spans = list(user_spans)

    def anonymize(self, record: LogRecord) -> LogRecord:
        """Anonymize one record in place; returns it."""
        in_user_slice = any(
            start <= record.epoch < end for start, end in self.user_spans
        )
        if in_user_slice:
            record.c_ip = hash_client_ip(record.c_ip)
        else:
            record.c_ip = zero_client_ip(record.c_ip)
        return record

    def process(self, stream: Iterator) -> Iterator[LogRecord]:
        for record in stream:
            yield self.anonymize(record)

    def anonymize_batch(self, batch: RecordBatch) -> RecordBatch:
        """Anonymize a whole column batch.

        The keyed hash / zeroing runs once per *distinct* client
        address on each side of the user-slice split (client addresses
        repeat massively within a day), then broadcasts back — value
        for value what :meth:`anonymize` produces per record.
        """
        if not len(batch):
            return batch
        epochs = batch.col("epoch")
        in_user_slice = np.zeros(len(batch), dtype=bool)
        for start, end in self.user_spans:
            in_user_slice |= (epochs >= start) & (epochs < end)
        c_ips = batch.col("c_ip")
        anonymized = np.empty(len(batch), dtype=object)
        anonymized[in_user_slice] = _map_distinct(
            c_ips[in_user_slice], hash_client_ip
        )
        anonymized[~in_user_slice] = _map_distinct(
            c_ips[~in_user_slice], zero_client_ip
        )
        return batch.with_column("c_ip", anonymized)

    def process_batch(
        self, batches: Iterator[RecordBatch]
    ) -> Iterator[RecordBatch]:
        for batch in batches:
            yield self.anonymize_batch(batch)


def _map_distinct(values: np.ndarray, func) -> np.ndarray:
    """Apply *func* once per distinct value, broadcast to all rows."""
    if not len(values):
        return values
    uniques, inverse = np.unique(values, return_inverse=True)
    mapped = np.array(
        [func(value) for value in uniques.tolist()], dtype=object
    )
    return mapped[inverse]
