"""Command-line interface.

Ten subcommands cover the simulate → analyze loop, the cross-regime
comparison, the live ingestion service, and distributed execution:

``repro simulate``
    Generate a scenario and write its logs in the leaked ELFF/CSV
    format (one file per proxy, like the Telecomix release, or one
    combined file).

``repro analyze``
    Load ELFF logs and print the headline statistics and top domains.

``repro recover``
    Run the Section 5.4 policy recovery on ELFF logs: suspected
    domains, blocked hosts, keywords.

``repro report``
    Simulate and run the complete paper pipeline, printing the
    condensed report (equivalent to examples/censorship_report.py).

``repro compare``
    Run one shared workload through several censorship-regime
    profiles (``--regimes``, default all registered) and print a
    side-by-side table: block rates, mechanism mix, error surface,
    and recovered-rule precision/recall per regime.

``repro verify-run``
    Audit a ``--checkpoint-dir`` run ledger offline: manifest,
    journal, and every artifact's SHA-256.  Exits nonzero on damage.

``repro serve``
    Run the live ingestion service: tail growing ELFF files, accept
    log lines over ``POST /ingest``, serve sliding-window analyses on
    ``GET /analysis?window=N`` (see the "Live ingestion" section of
    docs/ARCHITECTURE.md).

``repro loadgen``
    Drive a running service at a fixed request rate with synthetic
    ELFF payloads, printing live throughput and a final summary.
    429 responses are retried with a capped ``Retry-After`` backoff;
    deferred sends are counted separately in the live deltas.

``repro run-distributed``
    Coordinate a distributed simulate: plan shards, seed a lease
    queue in ``--queue-dir``, spawn (or wait for) ``repro work``
    processes, and merge the results byte-identically to a
    single-box run (see the "Distributed execution" section of
    docs/ARCHITECTURE.md).

``repro work``
    One distributed worker: lease unfinished shards from a queue
    directory, renew heartbeats while executing, record completions
    into the shared run ledger, and exit when the run is done.

``simulate``, ``analyze``, and ``report`` accept ``--checkpoint-dir``
(journal completed shards to a durable run ledger) and ``--resume``
(load verified completed shards from that ledger instead of re-running
them) — see the "Durability model" section of docs/ARCHITECTURE.md.

``simulate``, ``report``, ``serve``, and ``analyze`` accept
``--regime`` to select a registered censorship-regime profile
(default ``syria``); the regime joins the checkpoint fingerprint, so
``--resume`` refuses to mix shards from different regimes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.version import __version__


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. --workers)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for flags that must be > 0 (e.g. --rate)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for flags that must be >= 0 (--max-shard-retries)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


_WORKERS_HELP = "worker processes (default 1 = serial; results are " \
                "identical at every worker count)"

_METRICS_HELP = "write a JSON metrics report (counters, timers, " \
                "per-shard throughput) to PATH; does not change any " \
                "other output"

_RETRIES_HELP = "re-run a failed shard up to N times with capped " \
                "exponential backoff before giving up (default: " \
                "REPRO_MAX_SHARD_RETRIES or 2; retried shards replay " \
                "identical streams, so output is unchanged)"

_PARTIAL_HELP = "quarantine shards that still fail after retries and " \
                "finish with the surviving shards instead of aborting " \
                "(quarantined shards are listed on stdout and in the " \
                "--metrics report)"


_BATCH_HELP = "process records in column batches of N rows " \
              "(vectorized parse/classify/fold hot paths; output is " \
              "byte-identical to the default record-at-a-time mode " \
              "at every batch size and worker count)"

_CHECKPOINT_HELP = "journal every completed shard to a durable run " \
                   "ledger in DIR (manifest + fsync'd journal + " \
                   "checksummed artifacts); a killed run can be " \
                   "finished later with --resume"

_RESUME_HELP = "continue the run ledger in --checkpoint-dir: verified " \
               "completed shards are loaded instead of re-run, so the " \
               "finished output is byte-identical to an uninterrupted " \
               "run"


_REGIME_HELP = "censorship-regime profile to deploy (default syria; " \
               "see `repro compare` for the registered profiles)"


def _add_regime_flag(command) -> None:
    """The shared --regime surface (registered regime profiles)."""
    command.add_argument("--regime", default="syria", metavar="NAME",
                         help=_REGIME_HELP)


def _resolve_regime(name: str):
    """The registered profile for *name*, or a clean usage error."""
    from repro.regimes import UnknownRegimeError, get_regime

    try:
        return get_regime(name)
    except UnknownRegimeError as error:
        raise SystemExit(f"error: {error}") from None


def _add_resilience_flags(command) -> None:
    """The shared --max-shard-retries / --allow-partial surface."""
    command.add_argument("--max-shard-retries", type=_nonnegative_int,
                         default=None, metavar="N", help=_RETRIES_HELP)
    command.add_argument("--allow-partial", action="store_true",
                         help=_PARTIAL_HELP)


def _add_checkpoint_flags(command) -> None:
    """The shared --checkpoint-dir / --resume surface."""
    command.add_argument("--checkpoint-dir", type=Path, default=None,
                         metavar="DIR", help=_CHECKPOINT_HELP)
    command.add_argument("--resume", action="store_true",
                         help=_RESUME_HELP)


def _add_batch_flag(command) -> None:
    """The shared --batch-size surface (column-batch execution)."""
    command.add_argument("--batch-size", type=_positive_int, default=None,
                         metavar="N", help=_BATCH_HELP)


def _checkpoint_for(args: argparse.Namespace, fingerprint):
    """The RunCheckpoint for a command, or None without
    --checkpoint-dir.  ``--resume`` alone is a usage error."""
    directory = getattr(args, "checkpoint_dir", None)
    if directory is None:
        if getattr(args, "resume", False):
            raise SystemExit(
                "error: --resume requires --checkpoint-dir "
                "(there is no ledger to resume from)"
            )
        return None
    from repro.runstate import RunCheckpoint

    return RunCheckpoint(directory, fingerprint, resume=args.resume)


def _fault_args(args: argparse.Namespace):
    """The (retry, allow_partial, failures) triple for a command."""
    from dataclasses import replace

    from repro.engine import RetryPolicy
    from repro.faults import ShardFailureReport

    retry = None
    if getattr(args, "max_shard_retries", None) is not None:
        retry = replace(RetryPolicy.from_env(),
                        max_retries=args.max_shard_retries)
    allow_partial = bool(getattr(args, "allow_partial", False))
    return retry, allow_partial, ShardFailureReport()


def _report_quarantine(failures) -> None:
    """Print one line per quarantined shard (partial-results mode)."""
    for failure in failures:
        print(f"  quarantined {failure.shard_id} "
              f"after {failure.attempts} attempts "
              f"[{failure.site}]: {failure.error}")


def _start_metrics(args: argparse.Namespace):
    """The (registry, start-time) pair for a command, or (None, None)
    when --metrics was not given."""
    if getattr(args, "metrics", None) is None:
        return None, None
    import time

    from repro.metrics import MetricsRegistry

    return MetricsRegistry(), time.perf_counter()


def _finish_metrics(args, metrics, started) -> None:
    """Write the --metrics JSON report, stamping command wall time."""
    if metrics is None:
        return
    import time

    from repro.metrics import write_metrics_report

    path = write_metrics_report(
        args.metrics,
        metrics,
        command=args.command,
        workers=getattr(args, "workers", 1),
        wall_seconds=time.perf_counter() - started,
    )
    print(f"metrics report -> {path}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Censorship in the Wild' (IMC 2014)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="generate a scenario and write ELFF logs"
    )
    simulate.add_argument("--requests", type=int, default=50_000,
                          help="total request volume (default 50000)")
    simulate.add_argument("--seed", type=int, default=2011)
    simulate.add_argument("--out", type=Path, required=True,
                          help="output directory for the log files")
    simulate.add_argument("--per-proxy", action="store_true",
                          help="one file per proxy (like the leak)")
    simulate.add_argument("--per-day", action="store_true",
                          help="split files further by log day")
    simulate.add_argument("--boosts", action="store_true",
                          help="oversample rare traffic components")
    simulate.add_argument("--compress", action="store_true",
                          help="write gzip-compressed logs (.log.gz); "
                               "analyze/recover read them transparently")
    simulate.add_argument("--workers", type=_positive_int, default=1,
                          help=_WORKERS_HELP)
    simulate.add_argument("--metrics", type=Path, default=None,
                          help=_METRICS_HELP)
    _add_regime_flag(simulate)
    _add_resilience_flags(simulate)
    _add_checkpoint_flags(simulate)
    _add_batch_flag(simulate)

    analyze = commands.add_parser(
        "analyze", help="summarize ELFF logs (Tables 3 and 4)"
    )
    analyze.add_argument("logs", type=Path, nargs="+",
                         help="ELFF/CSV log files")
    analyze.add_argument("--top", type=int, default=10)
    analyze.add_argument("--streaming", action="store_true",
                         help="single-pass constant-memory analysis "
                              "(for logs too large to load)")
    analyze.add_argument("--workers", type=_positive_int, default=1,
                         help=_WORKERS_HELP)
    analyze.add_argument("--metrics", type=Path, default=None,
                         help=_METRICS_HELP)
    _add_regime_flag(analyze)
    _add_resilience_flags(analyze)
    _add_checkpoint_flags(analyze)
    _add_batch_flag(analyze)

    recover = commands.add_parser(
        "recover", help="recover the filtering policy from ELFF logs"
    )
    recover.add_argument("logs", type=Path, nargs="+")
    recover.add_argument("--min-censored", type=int, default=3)

    report = commands.add_parser(
        "report", help="simulate and run the full paper pipeline"
    )
    report.add_argument("--requests", type=int, default=100_000)
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--markdown", type=Path, default=None,
                        help="also write the report as a Markdown file")
    report.add_argument("--workers", type=_positive_int, default=1,
                        help=_WORKERS_HELP)
    report.add_argument("--metrics", type=Path, default=None,
                        help=_METRICS_HELP)
    _add_regime_flag(report)
    _add_resilience_flags(report)
    _add_checkpoint_flags(report)
    _add_batch_flag(report)

    compare = commands.add_parser(
        "compare",
        help="run one workload through several regimes, side by side",
    )
    compare.add_argument("--requests", type=int, default=20_000,
                         help="total request volume per regime "
                              "(default 20000)")
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--regimes", nargs="+", default=None,
                         metavar="NAME",
                         help="regime profiles to compare (default: "
                              "all registered profiles)")
    compare.add_argument("--markdown", type=Path, default=None,
                         help="also write the comparison as a Markdown "
                              "file")
    compare.add_argument("--json", type=Path, default=None,
                         help="also write the comparison as a JSON file")
    compare.add_argument("--workers", type=_positive_int, default=1,
                         help=_WORKERS_HELP)
    compare.add_argument("--metrics", type=Path, default=None,
                         help=_METRICS_HELP)
    _add_resilience_flags(compare)
    _add_batch_flag(compare)

    verify = commands.add_parser(
        "verify-run",
        help="audit a --checkpoint-dir run ledger (exit 1 on damage)",
    )
    verify.add_argument("directory", type=Path,
                        help="the checkpoint directory to audit")
    verify.add_argument("--json", action="store_true",
                        help="print the audit as machine-readable JSON "
                             "(fingerprint, completed/pending/damaged "
                             "shard lists) instead of the text table; "
                             "exit-code semantics are unchanged")

    serve = commands.add_parser(
        "serve", help="run the live ELFF ingestion service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks a free port and prints "
                            "it (default 8080)")
    serve.add_argument("--tail", type=Path, action="append", default=[],
                       metavar="PATH",
                       help="tail a growing ELFF file (repeatable; .gz "
                            "transparent; the file may not exist yet)")
    serve.add_argument("--window-days", type=_positive_int, default=None,
                       metavar="N",
                       help="retain only the newest N log-days of "
                            "analysis state (default: retain all days)")
    serve.add_argument("--queue-size", type=_positive_int, default=64,
                       metavar="N",
                       help="bounded ingest queue depth; a full queue "
                            "answers 429 + Retry-After (default 64)")
    serve.add_argument("--poll-interval", type=_positive_float,
                       default=0.25, metavar="SECONDS",
                       help="tail poll interval (default 0.25)")
    serve.add_argument("--retry-after", type=_positive_float, default=1.0,
                       metavar="SECONDS",
                       help="Retry-After value sent with 429 (default 1)")
    serve.add_argument("--for-seconds", type=_positive_float, default=None,
                       metavar="SECONDS",
                       help="shut down cleanly after SECONDS instead of "
                            "waiting for SIGINT/SIGTERM (smoke tests)")
    _add_regime_flag(serve)

    loadgen = commands.add_parser(
        "loadgen", help="drive a running service at a fixed request rate"
    )
    loadgen.add_argument("--host", default="127.0.0.1",
                         help="service address (default 127.0.0.1)")
    loadgen.add_argument("--port", type=_positive_int, required=True,
                         help="service port")
    loadgen.add_argument("--rate", type=_positive_float, default=50.0,
                         metavar="RPS",
                         help="offered request rate per second "
                              "(default 50)")
    loadgen.add_argument("--requests", type=_positive_int, default=200,
                         metavar="N",
                         help="total requests to send (default 200)")
    loadgen.add_argument("--lines", type=_positive_int, default=20,
                         metavar="N",
                         help="ELFF records per request (default 20)")
    loadgen.add_argument("--days", type=_positive_int, default=3,
                         metavar="N",
                         help="spread synthetic records over N log-days "
                              "(default 3)")
    loadgen.add_argument("--workers", type=_positive_int, default=4,
                         help="concurrent connections (default 4; the "
                              "offered rate is worker-count-invariant)")
    loadgen.add_argument("--quiet", action="store_true",
                         help="suppress the live per-interval output")
    loadgen.add_argument("--retry-after-cap", type=_positive_float,
                         default=5.0, metavar="SECONDS",
                         help="ceiling on the per-request backoff grown "
                              "from the service's Retry-After header "
                              "across consecutive 429s (default 5)")

    distributed = commands.add_parser(
        "run-distributed",
        help="coordinate a multi-worker simulate over a lease queue",
    )
    distributed.add_argument("--requests", type=int, default=50_000,
                             help="total request volume (default 50000)")
    distributed.add_argument("--seed", type=int, default=2011)
    distributed.add_argument("--out", type=Path, required=True,
                             help="output directory for the log files")
    distributed.add_argument("--per-proxy", action="store_true",
                             help="one file per proxy (like the leak)")
    distributed.add_argument("--per-day", action="store_true",
                             help="split files further by log day")
    distributed.add_argument("--boosts", action="store_true",
                             help="oversample rare traffic components")
    distributed.add_argument("--compress", action="store_true",
                             help="write gzip-compressed logs (.log.gz)")
    distributed.add_argument("--queue-dir", type=Path, required=True,
                             metavar="DIR",
                             help="shared ledger + lease-queue directory "
                                  "(every worker must see this path)")
    distributed.add_argument("--spawn", type=_nonnegative_int, default=2,
                             metavar="N",
                             help="local worker processes to start "
                                  "(default 2; 0 = workers are started "
                                  "elsewhere with `repro work DIR`)")
    distributed.add_argument("--lease-ttl", type=_positive_float,
                             default=None, metavar="SECONDS",
                             help="lease time-to-live before a shard is "
                                  "reclaimable (default: REPRO_LEASE_TTL "
                                  "or 30)")
    distributed.add_argument("--wait-timeout", type=_positive_float,
                             default=None, metavar="SECONDS",
                             help="abort if the run is still incomplete "
                                  "after SECONDS (default: wait forever)")
    distributed.add_argument("--poll-interval", type=_positive_float,
                             default=0.2, metavar="SECONDS",
                             help="journal poll cadence (default 0.2)")
    distributed.add_argument("--status-port", type=_nonnegative_int,
                             default=None, metavar="PORT",
                             help="serve /healthz + /workers progress on "
                                  "PORT (0 picks a free port and prints "
                                  "it)")
    distributed.add_argument("--resume", action="store_true",
                             help="continue an interrupted distributed "
                                  "run in --queue-dir (verified completed "
                                  "shards are not re-run)")
    distributed.add_argument("--metrics", type=Path, default=None,
                             help=_METRICS_HELP)
    _add_regime_flag(distributed)
    _add_batch_flag(distributed)

    work = commands.add_parser(
        "work",
        help="run one distributed worker against a queue directory",
    )
    work.add_argument("directory", type=Path,
                      help="the shared queue directory a coordinator "
                           "seeded (or will seed)")
    work.add_argument("--worker-id", default=None, metavar="ID",
                      help="stable worker identity (default <host>:<pid>)")
    work.add_argument("--poll-interval", type=_positive_float, default=0.2,
                      metavar="SECONDS",
                      help="idle poll cadence (default 0.2)")
    work.add_argument("--startup-timeout", type=_positive_float,
                      default=None, metavar="SECONDS",
                      help="give up if no coordinator seeds the queue "
                           "within SECONDS (default: wait forever)")
    work.add_argument("--max-idle", type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="give up after idling SECONDS while other "
                           "workers hold every remaining lease "
                           "(default: trust lease expiry and wait)")
    work.add_argument("--metrics", type=Path, default=None,
                      help=_METRICS_HELP)
    return parser


def _load_frames(paths: list[Path], workers: int = 1, metrics=None,
                 retry=None, allow_partial=False, failures=None,
                 checkpoint=None, batch_size=None):
    from repro.engine import load_frames

    for path in paths:
        if not path.exists():
            raise SystemExit(f"error: no such log file: {path}")
    return load_frames(paths, workers=workers, metrics=metrics,
                       retry=retry, allow_partial=allow_partial,
                       failures=failures, checkpoint=checkpoint,
                       batch_size=batch_size)


def _analyze_fingerprint(mode: str, paths: list[Path], regime: str):
    """The analyze fingerprint: the input files *are* the run.

    Paths and byte sizes pin identity — an edited or regrown log file
    changes its size in practice, and the artifact hashes catch the
    rest on resume.  ``mode`` separates the streaming and frame
    pipelines, whose shard results have different shapes; ``regime``
    records which deployment's logs these are, so a ``--resume`` under
    a different ``--regime`` label refuses instead of mixing runs.
    """
    from repro.runstate import run_fingerprint

    return run_fingerprint(
        f"analyze-{mode}",
        logs=[str(path) for path in paths],
        sizes=[path.stat().st_size for path in paths],
        regime=regime,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.engine import simulate_to_logs
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    _resolve_regime(args.regime)
    config = ScenarioConfig(
        total_requests=args.requests,
        seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS) if args.boosts else {},
        regime=args.regime,
    )
    suffix = f", {args.workers} workers" if args.workers > 1 else ""
    print(f"simulating {args.requests:,} requests "
          f"(seed {args.seed}{suffix})...")
    metrics, started = _start_metrics(args)
    retry, allow_partial, failures = _fault_args(args)
    from repro.runstate import config_digest, run_fingerprint

    # The output directory is deliberately not part of the fingerprint:
    # shard artifacts are buffered sinks, so a resumed run may write the
    # finished logs anywhere.  The flags that shape the shard results
    # (grouping and compression) are.  The regime is named as its own
    # facet (besides being folded into the config digest) so a
    # cross-regime --resume refusal spells out the mismatched key.
    checkpoint = _checkpoint_for(args, run_fingerprint(
        "simulate",
        config=config_digest(config),
        regime=config.regime,
        per_proxy=args.per_proxy,
        per_day=args.per_day,
        compress=args.compress,
    ))
    for path, count in simulate_to_logs(
        config, args.out,
        per_proxy=args.per_proxy, per_day=args.per_day,
        compress=args.compress, workers=args.workers, metrics=metrics,
        retry=retry, allow_partial=allow_partial, failures=failures,
        checkpoint=checkpoint, batch_size=args.batch_size,
    ):
        print(f"  wrote {count:>8,} records -> {path}")
    _report_quarantine(failures)
    _finish_metrics(args, metrics, started)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.overview import top_domains, traffic_breakdown
    from repro.reporting import render_table

    if args.streaming:
        return _analyze_streaming(args)
    metrics, started = _start_metrics(args)
    retry, allow_partial, failures = _fault_args(args)
    for path in args.logs:
        if not path.exists():
            raise SystemExit(f"error: no such log file: {path}")
    _resolve_regime(args.regime)
    checkpoint = _checkpoint_for(
        args, _analyze_fingerprint("frames", args.logs, args.regime)
    )
    frame = _load_frames(args.logs, workers=args.workers, metrics=metrics,
                         retry=retry, allow_partial=allow_partial,
                         failures=failures, checkpoint=checkpoint,
                         batch_size=args.batch_size)
    breakdown = traffic_breakdown(frame)
    print(render_table(
        ["Class", "Requests", "%"],
        [
            ["allowed", breakdown.allowed, f"{breakdown.allowed_pct:.2f}"],
            ["censored", breakdown.censored, f"{breakdown.censored_pct:.2f}"],
            ["errors", breakdown.errors,
             f"{breakdown.denied_pct - breakdown.censored_pct:.2f}"],
            ["proxied", breakdown.proxied, f"{breakdown.proxied_pct:.2f}"],
        ],
        title=f"Traffic breakdown ({breakdown.total:,} requests)",
    ))
    domains = top_domains(frame, n=args.top)
    print(render_table(
        ["Allowed domain", "%", "Censored domain", "%"],
        [
            [
                a.domain if a else "-", f"{a.share_pct:.2f}" if a else "-",
                c.domain if c else "-", f"{c.share_pct:.2f}" if c else "-",
            ]
            for a, c in _zip_longest(domains.allowed, domains.censored)
        ],
        title="\nTop domains",
    ))
    _report_quarantine(failures)
    _finish_metrics(args, metrics, started)
    return 0


def _zip_longest(a, b):
    from itertools import zip_longest

    return zip_longest(a, b, fillvalue=None)


def _analyze_streaming(args: argparse.Namespace) -> int:
    from repro.engine import analyze_logs
    from repro.reporting import render_table

    for path in args.logs:
        if not path.exists():
            raise SystemExit(f"error: no such log file: {path}")
    metrics, started = _start_metrics(args)
    retry, allow_partial, failures = _fault_args(args)
    _resolve_regime(args.regime)
    checkpoint = _checkpoint_for(
        args, _analyze_fingerprint("streaming", args.logs, args.regime)
    )
    acc, stats = analyze_logs(args.logs, workers=args.workers,
                              metrics=metrics, retry=retry,
                              allow_partial=allow_partial,
                              failures=failures, checkpoint=checkpoint,
                              batch_size=args.batch_size)
    breakdown = acc.breakdown()
    print(render_table(
        ["Class", "Requests", "%"],
        [
            ["allowed", breakdown.allowed, f"{breakdown.allowed_pct:.2f}"],
            ["censored", breakdown.censored, f"{breakdown.censored_pct:.2f}"],
            ["errors", breakdown.errors, ""],
            ["proxied", breakdown.proxied, ""],
        ],
        title=f"Traffic breakdown ({breakdown.total:,} requests, streaming)",
    ))
    print(render_table(
        ["Censored domain", "Requests"],
        [[domain, count] for domain, count in acc.top_censored(args.top)],
        title="\nTop censored domains",
    ))
    if stats.skipped or stats.corrupted:
        print(f"(skipped {stats.skipped:,} malformed lines, "
              f"{stats.corrupted:,} corrupted streams; "
              f"first error: {stats.first_error})")
    _report_quarantine(failures)
    _finish_metrics(args, metrics, started)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.analysis.stringfilter import (
        recover_censored_domains,
        recover_censored_hosts,
        recover_keywords,
    )
    from repro.reporting import render_table

    frame = _load_frames(args.logs)
    suspected = recover_censored_domains(frame, min_censored=args.min_censored)
    print(render_table(
        ["Suspected domain", "Censored", "% of censored"],
        [[row.domain, row.censored, f"{row.censored_share_pct:.2f}"]
         for row in suspected[:20]],
        title=f"URL-blocked domains ({len(suspected)} recovered)",
    ))
    exclusion = {
        row.domain for row in recover_censored_domains(frame, min_censored=1)
    }
    hosts = recover_censored_hosts(frame, exclude_domains=exclusion,
                                   min_censored=1)
    if hosts:
        print(render_table(
            ["Blocked host", "Censored"],
            [[row.host, row.censored] for row in hosts[:10]],
            title="\nIndividually blocked hosts",
        ))
    keywords = recover_keywords(
        frame,
        exclude_domains=exclusion,
        exclude_hosts={row.host for row in hosts},
    )
    print(render_table(
        ["Keyword", "Coverage"],
        [[k.keyword, k.coverage] for k in keywords],
        title="\nRecovered keyword blacklist",
    ))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.engine import build_scenario_sharded
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    profile = _resolve_regime(args.regime)
    print(f"simulating {args.requests:,} requests and running the full "
          "pipeline...")
    metrics, started = _start_metrics(args)
    retry, allow_partial, failures = _fault_args(args)
    from repro.runstate import config_digest, run_fingerprint

    config = ScenarioConfig(
        total_requests=args.requests, seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS), regime=args.regime,
    )
    checkpoint = _checkpoint_for(args, run_fingerprint(
        "report", config=config_digest(config), regime=config.regime,
    ))
    datasets = build_scenario_sharded(
        config, workers=args.workers, metrics=metrics, retry=retry,
        allow_partial=allow_partial, failures=failures,
        checkpoint=checkpoint, batch_size=args.batch_size)
    if args.regime == "syria":
        _report_syria(args, datasets, metrics)
    else:
        _report_regime(args, profile, datasets)
    _report_quarantine(failures)
    _finish_metrics(args, metrics, started)
    return 0


def _report_syria(args, datasets, metrics) -> None:
    """The full paper pipeline — every table and figure is defined
    against the Syrian deployment, so this path is Syria-only."""
    from repro.analysis.report import build_report

    report = build_report(datasets)
    full = report.table3["full"]
    print(f"allowed {full.allowed_pct:.2f}%, censored {full.censored_pct:.2f}%")
    print("top censored:", [r.domain for r in report.table4.censored[:5]])
    print("recovered keywords:",
          [k.keyword for k in report.recovered_keywords])
    print("suspected domains:", len(report.table8))
    if args.markdown is not None:
        from repro.atomicio import atomic_write_text
        from repro.reporting.markdown import report_to_markdown

        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.markdown, report_to_markdown(
            report,
            title=f"Censorship report — {args.requests:,} requests, "
                  f"seed {args.seed}",
            metrics=metrics,
        ))
        print(f"markdown report -> {args.markdown}")


def _report_regime(args, profile, datasets) -> None:
    """The regime-generic report: breakdown, top censored domains,
    and the profile's own rule recoveries with precision/recall."""
    from repro.analysis.overview import top_domains, traffic_breakdown

    breakdown = traffic_breakdown(datasets.full)
    print(f"regime {profile.name}: "
          f"{', '.join(profile.mechanisms)}")
    print(f"allowed {breakdown.allowed_pct:.2f}%, "
          f"censored {breakdown.censored_pct:.2f}%")
    domains = top_domains(datasets.full)
    print("top censored:", [r.domain for r in domains.censored[:5]])
    recoveries = profile.recover_rules(datasets.full, datasets.policy)
    for recovery in recoveries:
        print(f"recovered {recovery.kind}: "
              f"{len(recovery.recovered)}/{len(recovery.truth)} "
              f"(precision {recovery.precision:.2f}, "
              f"recall {recovery.recall:.2f})")
    if args.markdown is not None:
        from repro.atomicio import atomic_write_text

        lines = [
            f"# Censorship report — {profile.name}, "
            f"{args.requests:,} requests, seed {args.seed}",
            "",
            f"- mechanisms: {', '.join(profile.mechanisms)}",
            f"- allowed: {breakdown.allowed_pct:.2f}%",
            f"- censored: {breakdown.censored_pct:.2f}%",
            "",
            "| Recovery | Recovered/Truth | Precision | Recall |",
            "| --- | --- | --- | --- |",
        ]
        lines += [
            f"| {r.kind} | {len(r.recovered)}/{len(r.truth)} "
            f"| {r.precision:.2f} | {r.recall:.2f} |"
            for r in recoveries
        ]
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.markdown, "\n".join(lines) + "\n")
        print(f"markdown report -> {args.markdown}")


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.regimes.compare import (
        DEFAULT_COMPARE_REGIMES,
        compare_regimes,
        comparison_table,
        comparison_to_json,
        comparison_to_markdown,
    )
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    regimes = tuple(args.regimes) if args.regimes else DEFAULT_COMPARE_REGIMES
    for name in regimes:
        _resolve_regime(name)
    config = ScenarioConfig(
        total_requests=args.requests, seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS),
    )
    print(f"comparing {', '.join(regimes)} over {args.requests:,} "
          f"requests (seed {args.seed})...")
    metrics, started = _start_metrics(args)
    retry, allow_partial, failures = _fault_args(args)
    comparison = compare_regimes(
        config, regimes, workers=args.workers,
        batch_size=args.batch_size, metrics=metrics,
        retry=retry, allow_partial=allow_partial, failures=failures,
    )
    print(comparison_table(comparison))
    _report_quarantine(failures)
    if args.markdown is not None:
        from repro.atomicio import atomic_write_text

        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.markdown, comparison_to_markdown(comparison))
        print(f"markdown comparison -> {args.markdown}")
    if args.json is not None:
        import json

        from repro.atomicio import atomic_write_text

        args.json.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.json, json.dumps(
            comparison_to_json(comparison), indent=2, sort_keys=True,
        ) + "\n")
        print(f"json comparison -> {args.json}")
    _finish_metrics(args, metrics, started)
    return 0


def _cmd_verify_run(args: argparse.Namespace) -> int:
    from repro.runstate import audit_run

    audit = audit_run(args.directory)
    if args.json:
        import json

        print(json.dumps(audit.to_json(), indent=2, sort_keys=True))
        return 0 if audit.ok else 1
    if audit.fingerprint:
        facets = ", ".join(
            f"{key}={value}"
            for key, value in sorted(audit.fingerprint.items())
        )
        print(f"  fingerprint: {facets}")
    for error in audit.errors:
        print(f"  error: {error}")
    for entry in audit.entries:
        marker = "ok " if entry.status == "ok" else "!! "
        if entry.status == "pending":
            marker = ".. "
        print(f"  {marker}{entry.shard_id:<24} {entry.status:<14} "
              f"{entry.detail}")
    pending = sum(1 for e in audit.entries if e.status == "pending")
    damaged = sum(1 for e in audit.entries if e.damaged)
    print(f"{audit.directory}: {audit.completed} completed, "
          f"{pending} pending, {damaged} damaged"
          + (f", {len(audit.errors)} ledger errors" if audit.errors else ""))
    return 0 if audit.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import IngestService, WindowStore

    _resolve_regime(args.regime)
    service = IngestService(
        WindowStore(retention_days=args.window_days),
        queue_size=args.queue_size,
        tail_paths=tuple(args.tail),
        poll_interval=args.poll_interval,
        retry_after=args.retry_after,
        regime=args.regime,
    )
    try:
        asyncio.run(service.serve_forever(
            args.host, args.port, for_seconds=args.for_seconds,
        ))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import LoadGenerator

    generator = LoadGenerator(
        args.host, args.port,
        rate=args.rate, total=args.requests,
        lines_per_request=args.lines, days=args.days,
        workers=args.workers, quiet=args.quiet,
        retry_after_cap=args.retry_after_cap,
    )
    try:
        summary = asyncio.run(generator.run())
    except ConnectionRefusedError:
        raise SystemExit(
            f"error: no service listening on {args.host}:{args.port} "
            "(start one with `repro serve`)"
        )
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_run_distributed(args: argparse.Namespace) -> int:
    from repro.dispatch import (
        lease_ttl_from_env,
        run_distributed,
        simulate_job_for,
    )
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    _resolve_regime(args.regime)
    config = ScenarioConfig(
        total_requests=args.requests,
        seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS) if args.boosts else {},
        regime=args.regime,
    )
    job = simulate_job_for(
        config, args.out,
        per_proxy=args.per_proxy, per_day=args.per_day,
        compress=args.compress, batch_size=args.batch_size,
    )
    ttl = args.lease_ttl if args.lease_ttl is not None \
        else lease_ttl_from_env()
    metrics, started = _start_metrics(args)
    server = None
    if args.status_port is not None:
        from repro.service import WorkerStatusServer

        server = WorkerStatusServer(
            args.queue_dir, port=args.status_port
        ).start()
        print(f"status -> http://127.0.0.1:{server.port}/healthz")
    print(f"distributing {args.requests:,} requests over "
          f"{args.spawn} spawned worker(s), lease TTL {ttl:g}s "
          f"(queue {args.queue_dir})...")
    try:
        run = run_distributed(
            job, args.queue_dir,
            spawn=args.spawn, ttl=ttl, resume=args.resume,
            metrics=metrics, poll_interval=args.poll_interval,
            wait_timeout=args.wait_timeout,
        )
    finally:
        if server is not None:
            server.stop()
    for path, count in run.output:
        print(f"  wrote {path} ({count:,} records)")
    if run.resumed:
        print(f"  resumed {run.resumed} completed shard(s) from the ledger")
    if run.inline_shards:
        print(f"  coordinator finished {run.inline_shards} shard(s) "
              "inline after every spawned worker exited")
    c = run.counters
    print(f"leases: {c.get('dispatch.lease.granted', 0)} granted, "
          f"{c.get('dispatch.lease.renewed', 0)} renewed, "
          f"{c.get('dispatch.lease.expired', 0)} expired, "
          f"{c.get('dispatch.lease.reclaimed', 0)} reclaimed, "
          f"{c.get('dispatch.shards.requeued', 0)} requeued")
    _finish_metrics(args, metrics, started)
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.dispatch import run_worker

    metrics, started = _start_metrics(args)
    summary = run_worker(
        args.directory,
        worker_id=args.worker_id,
        metrics=metrics,
        poll_interval=args.poll_interval,
        startup_timeout=args.startup_timeout,
        max_idle=args.max_idle,
    )
    extra = f", {summary.lost} lease(s) lost" if summary.lost else ""
    print(f"worker {summary.worker_id}: {summary.executed} shard(s), "
          f"{summary.records:,} records, "
          f"{summary.wall_seconds:.2f}s shard time{extra}")
    _finish_metrics(args, metrics, started)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "recover": _cmd_recover,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "verify-run": _cmd_verify_run,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "run-distributed": _cmd_run_distributed,
    "work": _cmd_work,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    from repro.dispatch.queue import DispatchError
    from repro.runstate import RunStateError

    try:
        return _COMMANDS[args.command](args)
    except (RunStateError, DispatchError) as error:
        # Fingerprint mismatch, foreign ledger, live lock, queue
        # mismatch, stalled distributed run: refuse cleanly with the
        # explanation instead of a traceback.
        raise SystemExit(f"error: {error}") from error


if __name__ == "__main__":
    sys.exit(main())
