"""Command-line interface.

Four subcommands cover the simulate → analyze loop:

``repro simulate``
    Generate a scenario and write its logs in the leaked ELFF/CSV
    format (one file per proxy, like the Telecomix release, or one
    combined file).

``repro analyze``
    Load ELFF logs and print the headline statistics and top domains.

``repro recover``
    Run the Section 5.4 policy recovery on ELFF logs: suspected
    domains, blocked hosts, keywords.

``repro report``
    Simulate and run the complete paper pipeline, printing the
    condensed report (equivalent to examples/censorship_report.py).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Censorship in the Wild' (IMC 2014)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="generate a scenario and write ELFF logs"
    )
    simulate.add_argument("--requests", type=int, default=50_000,
                          help="total request volume (default 50000)")
    simulate.add_argument("--seed", type=int, default=2011)
    simulate.add_argument("--out", type=Path, required=True,
                          help="output directory for the log files")
    simulate.add_argument("--per-proxy", action="store_true",
                          help="one file per proxy (like the leak)")
    simulate.add_argument("--per-day", action="store_true",
                          help="split files further by log day")
    simulate.add_argument("--boosts", action="store_true",
                          help="oversample rare traffic components")

    analyze = commands.add_parser(
        "analyze", help="summarize ELFF logs (Tables 3 and 4)"
    )
    analyze.add_argument("logs", type=Path, nargs="+",
                         help="ELFF/CSV log files")
    analyze.add_argument("--top", type=int, default=10)
    analyze.add_argument("--streaming", action="store_true",
                         help="single-pass constant-memory analysis "
                              "(for logs too large to load)")

    recover = commands.add_parser(
        "recover", help="recover the filtering policy from ELFF logs"
    )
    recover.add_argument("logs", type=Path, nargs="+")
    recover.add_argument("--min-censored", type=int, default=3)

    report = commands.add_parser(
        "report", help="simulate and run the full paper pipeline"
    )
    report.add_argument("--requests", type=int, default=100_000)
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--markdown", type=Path, default=None,
                        help="also write the report as a Markdown file")
    return parser


def _load_frames(paths: list[Path]):
    from repro.frame import concat, frame_from_records
    from repro.logmodel.elff import read_log

    frames = []
    for path in paths:
        if not path.exists():
            raise SystemExit(f"error: no such log file: {path}")
        frames.append(frame_from_records(read_log(path)))
    return concat(frames) if len(frames) > 1 else frames[0]


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.datasets import build_scenario
    from repro.logmodel.elff import write_log
    from repro.logmodel.record import LogRecord
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    config = ScenarioConfig(
        total_requests=args.requests,
        seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS) if args.boosts else {},
    )
    print(f"simulating {args.requests:,} requests (seed {args.seed})...")
    datasets = build_scenario(config)
    args.out.mkdir(parents=True, exist_ok=True)

    frame = datasets.full
    records = []
    for i in range(len(frame)):
        row = frame.row(i)
        records.append(LogRecord(
            epoch=int(row["epoch"]),
            c_ip=str(row["c_ip"]),
            s_ip=str(row["s_ip"]),
            cs_host=str(row["cs_host"]),
            cs_uri_scheme=str(row["cs_uri_scheme"]),
            cs_uri_port=int(row["cs_uri_port"]),
            cs_uri_path=str(row["cs_uri_path"]),
            cs_uri_query=str(row["cs_uri_query"]),
            cs_uri_ext=str(row["cs_uri_ext"]),
            cs_method=str(row["cs_method"]),
            cs_user_agent=str(row["cs_user_agent"]),
            sc_filter_result=str(row["sc_filter_result"]),
            x_exception_id=str(row["x_exception_id"]),
            cs_categories=str(row["cs_categories"]),
            sc_status=int(row["sc_status"]),
            s_action=str(row["s_action"]),
        ))
    if args.per_proxy or args.per_day:
        from repro.timeline import epoch_day

        grouped: dict[str, list] = {}
        for record in records:
            parts = []
            if args.per_proxy:
                parts.append(f"sg-{record.s_ip.rsplit('.', 1)[-1]}")
            if args.per_day:
                parts.append(epoch_day(record.epoch))
            grouped.setdefault("_".join(parts), []).append(record)
        for stem, group_records in sorted(grouped.items()):
            path = args.out / f"{stem}.log"
            count = write_log(group_records, path)
            print(f"  wrote {count:>8,} records -> {path}")
    else:
        path = args.out / "proxies.log"
        count = write_log(records, path)
        print(f"  wrote {count:,} records -> {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.overview import top_domains, traffic_breakdown
    from repro.reporting import render_table

    if args.streaming:
        return _analyze_streaming(args)
    frame = _load_frames(args.logs)
    breakdown = traffic_breakdown(frame)
    print(render_table(
        ["Class", "Requests", "%"],
        [
            ["allowed", breakdown.allowed, f"{breakdown.allowed_pct:.2f}"],
            ["censored", breakdown.censored, f"{breakdown.censored_pct:.2f}"],
            ["errors", breakdown.errors,
             f"{breakdown.denied_pct - breakdown.censored_pct:.2f}"],
            ["proxied", breakdown.proxied, f"{breakdown.proxied_pct:.2f}"],
        ],
        title=f"Traffic breakdown ({breakdown.total:,} requests)",
    ))
    domains = top_domains(frame, n=args.top)
    print(render_table(
        ["Allowed domain", "%", "Censored domain", "%"],
        [
            [
                a.domain if a else "-", f"{a.share_pct:.2f}" if a else "-",
                c.domain if c else "-", f"{c.share_pct:.2f}" if c else "-",
            ]
            for a, c in _zip_longest(domains.allowed, domains.censored)
        ],
        title="\nTop domains",
    ))
    return 0


def _zip_longest(a, b):
    from itertools import zip_longest

    return zip_longest(a, b, fillvalue=None)


def _analyze_streaming(args: argparse.Namespace) -> int:
    from repro.analysis.streaming import StreamingAnalysis
    from repro.logmodel.elff import read_log
    from repro.reporting import render_table

    acc = StreamingAnalysis()
    for path in args.logs:
        if not path.exists():
            raise SystemExit(f"error: no such log file: {path}")
        acc.consume(read_log(path, lenient=True))
    breakdown = acc.breakdown()
    print(render_table(
        ["Class", "Requests", "%"],
        [
            ["allowed", breakdown.allowed, f"{breakdown.allowed_pct:.2f}"],
            ["censored", breakdown.censored, f"{breakdown.censored_pct:.2f}"],
            ["errors", breakdown.errors, ""],
            ["proxied", breakdown.proxied, ""],
        ],
        title=f"Traffic breakdown ({breakdown.total:,} requests, streaming)",
    ))
    print(render_table(
        ["Censored domain", "Requests"],
        [[domain, count] for domain, count in acc.top_censored(args.top)],
        title="\nTop censored domains",
    ))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.analysis.stringfilter import (
        recover_censored_domains,
        recover_censored_hosts,
        recover_keywords,
    )
    from repro.reporting import render_table

    frame = _load_frames(args.logs)
    suspected = recover_censored_domains(frame, min_censored=args.min_censored)
    print(render_table(
        ["Suspected domain", "Censored", "% of censored"],
        [[row.domain, row.censored, f"{row.censored_share_pct:.2f}"]
         for row in suspected[:20]],
        title=f"URL-blocked domains ({len(suspected)} recovered)",
    ))
    exclusion = {
        row.domain for row in recover_censored_domains(frame, min_censored=1)
    }
    hosts = recover_censored_hosts(frame, exclude_domains=exclusion,
                                   min_censored=1)
    if hosts:
        print(render_table(
            ["Blocked host", "Censored"],
            [[row.host, row.censored] for row in hosts[:10]],
            title="\nIndividually blocked hosts",
        ))
    keywords = recover_keywords(
        frame,
        exclude_domains=exclusion,
        exclude_hosts={row.host for row in hosts},
    )
    print(render_table(
        ["Keyword", "Coverage"],
        [[k.keyword, k.coverage] for k in keywords],
        title="\nRecovered keyword blacklist",
    ))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    from repro.datasets import build_scenario
    from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

    print(f"simulating {args.requests:,} requests and running the full "
          "pipeline...")
    datasets = build_scenario(ScenarioConfig(
        total_requests=args.requests, seed=args.seed,
        boosts=dict(DEFAULT_BOOSTS),
    ))
    report = build_report(datasets)
    full = report.table3["full"]
    print(f"allowed {full.allowed_pct:.2f}%, censored {full.censored_pct:.2f}%")
    print("top censored:", [r.domain for r in report.table4.censored[:5]])
    print("recovered keywords:",
          [k.keyword for k in report.recovered_keywords])
    print("suspected domains:", len(report.table8))
    if args.markdown is not None:
        from repro.reporting.markdown import report_to_markdown

        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(report_to_markdown(
            report,
            title=f"Censorship report — {args.requests:,} requests, "
                  f"seed {args.seed}",
        ))
        print(f"markdown report -> {args.markdown}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "recover": _cmd_recover,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
