"""The :class:`RecordBatch` columnar record container.

A :class:`RecordBatch` is the unit of the pipeline's column-batch
execution mode: one numpy array per
:class:`~repro.logmodel.record.LogRecord` field, all equal length,
carrying **every** wire field (not just the analysis subset in
:data:`~repro.frame.io.FRAME_COLUMNS`) so a batch can round-trip to
records and to ELFF rows byte-identically.

Batches are immutable in spirit: transforming operations
(:meth:`~RecordBatch.take`, :meth:`~RecordBatch.with_column`,
:func:`concat_batches`) return new batches sharing column arrays where
possible.  The laws the batched pipeline relies on — concat/slice
round-trips, ``from_records``/``to_records`` inversion — are
property-tested in ``tests/test_pipeline.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.logmodel.classify import classify_batch
from repro.logmodel.fields import FIELDS
from repro.logmodel.record import LogRecord, epoch_to_date_time

#: Batch columns in LogRecord attribute order, with their dtypes.
#: Numeric fields use int64; everything else is an object column of
#: Python strings (variable length, massively repetitive → internable).
BATCH_COLUMNS: dict[str, str] = {
    "epoch": "int64",
    "c_ip": "object",
    "s_ip": "object",
    "cs_host": "object",
    "cs_uri_scheme": "object",
    "cs_uri_port": "int64",
    "cs_uri_path": "object",
    "cs_uri_query": "object",
    "cs_uri_ext": "object",
    "cs_method": "object",
    "cs_user_agent": "object",
    "cs_referer": "object",
    "sc_filter_result": "object",
    "x_exception_id": "object",
    "cs_categories": "object",
    "sc_status": "int64",
    "s_action": "object",
    "rs_content_type": "object",
    "time_taken": "int64",
    "sc_bytes": "int64",
    "cs_bytes": "int64",
    "cs_username": "object",
    "cs_auth_group": "object",
    "x_virus_id": "object",
    "s_supplier_name": "object",
}

#: Wire field name → batch column name (``date``/``time`` fold into
#: ``epoch`` exactly as they do on :class:`LogRecord`).
_FIELD_TO_COLUMN = {name.replace("-", "_"): name for name in FIELDS}


class RecordBatch:
    """A column-oriented batch of log records.

    The batched pipeline's record currency: sources yield batches,
    batch-capable stages transform them column-wise, and sinks fold
    them via ``add_batch``.  ``iter_records``/``to_records`` recover
    the exact :class:`LogRecord` stream, which is what the automatic
    scalar fallback and the differential equivalence suite lean on.
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: dict[str, np.ndarray]):
        if set(columns) != set(BATCH_COLUMNS):
            missing = set(BATCH_COLUMNS) - set(columns)
            extra = set(columns) - set(BATCH_COLUMNS)
            raise ValueError(
                f"RecordBatch needs exactly the record columns "
                f"(missing {sorted(missing)}, extra {sorted(extra)})"
            )
        lengths = {len(array) for array in columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"column lengths differ: "
                f"{ {name: len(a) for name, a in columns.items()} }"
            )
        self._columns = {
            name: np.asarray(columns[name], dtype=BATCH_COLUMNS[name])
            for name in BATCH_COLUMNS
        }
        self._length = lengths.pop() if lengths else 0

    # -- construction ----------------------------------------------------

    @classmethod
    def empty(cls) -> "RecordBatch":
        """The zero-row batch (identity of :func:`concat_batches`)."""
        return cls(
            {
                name: np.empty(0, dtype=dtype)
                for name, dtype in BATCH_COLUMNS.items()
            }
        )

    @classmethod
    def from_records(cls, records: Iterable[LogRecord]) -> "RecordBatch":
        """Columnarize an iterable of records (order preserved)."""
        records = (
            records if isinstance(records, (list, tuple)) else list(records)
        )
        if not records:
            return cls.empty()
        return cls(
            {
                name: np.asarray(
                    [getattr(record, name) for record in records],
                    dtype=dtype,
                )
                for name, dtype in BATCH_COLUMNS.items()
            }
        )

    # -- basic protocol --------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        """Column names, in LogRecord attribute order."""
        return list(self._columns)

    def col(self, name: str) -> np.ndarray:
        """The raw numpy array behind column *name*."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {sorted(self._columns)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        if self._length != other._length:
            return False
        return all(
            (self._columns[name] == other._columns[name]).all()
            for name in BATCH_COLUMNS
        )

    def __repr__(self) -> str:
        return f"RecordBatch({self._length} records)"

    # -- transformation --------------------------------------------------

    def take(self, selector: np.ndarray | slice) -> "RecordBatch":
        """Row subset by boolean mask, integer indices, or slice."""
        if isinstance(selector, np.ndarray) and selector.dtype == bool:
            if len(selector) != self._length:
                raise ValueError("boolean mask length mismatch")
        return RecordBatch(
            {name: array[selector] for name, array in self._columns.items()}
        )

    def slice(self, start: int, stop: int | None = None) -> "RecordBatch":
        """Contiguous row range (shares the underlying arrays)."""
        return self.take(np.s_[start:stop])

    def split(self, batch_size: int) -> Iterator["RecordBatch"]:
        """Re-chunk into batches of at most *batch_size* rows."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        for start in range(0, self._length, batch_size):
            yield self.slice(start, start + batch_size)

    def with_column(
        self, name: str, values: np.ndarray | Sequence
    ) -> "RecordBatch":
        """A new batch with column *name* replaced."""
        if name not in BATCH_COLUMNS:
            raise KeyError(f"no column {name!r}")
        array = np.asarray(values, dtype=BATCH_COLUMNS[name])
        if len(array) != self._length:
            raise ValueError("replacement column length mismatch")
        columns = dict(self._columns)
        columns[name] = array
        return RecordBatch(columns)

    # -- record / wire views ---------------------------------------------

    def iter_records(self) -> Iterator[LogRecord]:
        """Yield the batch as :class:`LogRecord` objects, in order."""
        names = list(BATCH_COLUMNS)
        cells = [self._columns[name].tolist() for name in names]
        for row in zip(*cells):
            yield LogRecord(**dict(zip(names, row)))

    def to_records(self) -> list[LogRecord]:
        """The batch as a record list (inverse of :meth:`from_records`)."""
        return list(self.iter_records())

    def to_rows(self) -> list[tuple]:
        """The 26-column CSV rows, in schema order.

        The ``date``/``time`` strings are derived from ``epoch``
        vectorized over the distinct log days, and the numeric cells
        stay Python ints (``csv.writer`` stringifies them exactly like
        :meth:`LogRecord.to_row`'s ``str()`` calls), so serializing a
        batch is byte-identical to serializing its records one by one.
        """
        if not self._length:
            return []
        epochs = self._columns["epoch"]
        days = epochs // 86400
        seconds = epochs - days * 86400
        dates = _day_strings(days)
        times = _time_strings(seconds)
        wire = {"date": dates, "time": times}
        for name in BATCH_COLUMNS:
            if name == "epoch":
                continue
            wire[_FIELD_TO_COLUMN[name]] = self._columns[name].tolist()
        return list(zip(*(wire[field] for field in FIELDS)))

    def traffic_classes(self, proxied_separate: bool = False) -> np.ndarray:
        """Vectorized :attr:`LogRecord.traffic_class` for every row."""
        return classify_batch(
            self._columns["sc_filter_result"],
            self._columns["x_exception_id"],
            proxied_separate=proxied_separate,
        )


def _day_strings(days: np.ndarray) -> list[str]:
    """``YYYY-MM-DD`` per row, computed once per distinct log day."""
    uniques, inverse = np.unique(days, return_inverse=True)
    mapped = np.array(
        [epoch_to_date_time(int(day) * 86400)[0] for day in uniques],
        dtype=object,
    )
    return mapped[inverse].tolist()

_DIGIT_PAIRS = np.array([f"{i:02d}" for i in range(60)], dtype=object)


def _time_strings(seconds: np.ndarray) -> list[str]:
    """``HH:MM:SS`` per row from seconds-of-day, via zero-padded
    digit-pair lookup tables (no per-row formatting calls)."""
    hours = _DIGIT_PAIRS[seconds // 3600]
    minutes = _DIGIT_PAIRS[(seconds // 60) % 60]
    secs = _DIGIT_PAIRS[seconds % 60]
    colon = np.full(len(seconds), ":", dtype=object)
    return (hours + colon + minutes + colon + secs).tolist()


def concat_batches(batches: Iterable[RecordBatch]) -> RecordBatch:
    """Concatenate batches in order (empty input → the empty batch)."""
    batches = [batch for batch in batches if len(batch)]
    if not batches:
        return RecordBatch.empty()
    if len(batches) == 1:
        return batches[0]
    return RecordBatch(
        {
            name: np.concatenate([batch.col(name) for batch in batches])
            for name in BATCH_COLUMNS
        }
    )
