"""Group-by aggregation for :class:`~repro.frame.logframe.LogFrame`.

Implemented with ``np.unique(return_inverse=True)`` + ``np.bincount``,
which keeps group-bys over millions of rows in vectorized numpy code.
"""

from __future__ import annotations

import numpy as np

from repro.frame.logframe import LogFrame


class GroupBy:
    """Lazy group-by over one key column."""

    def __init__(self, frame: LogFrame, key: str):
        self._frame = frame
        self._key = key
        keys = frame.col(key)
        self._groups, self._inverse = np.unique(keys, return_inverse=True)

    @property
    def groups(self) -> np.ndarray:
        """The distinct key values, in sorted order."""
        return self._groups

    def count(self) -> dict[object, int]:
        """Rows per group."""
        counts = np.bincount(self._inverse, minlength=len(self._groups))
        return {group: int(count) for group, count in zip(self._groups, counts)}

    def sum(self, column: str) -> dict[object, float]:
        """Per-group sum of a numeric column."""
        values = np.asarray(self._frame.col(column), dtype=float)
        sums = np.bincount(self._inverse, weights=values, minlength=len(self._groups))
        return {group: float(total) for group, total in zip(self._groups, sums)}

    def count_where(self, mask: np.ndarray) -> dict[object, int]:
        """Rows per group that satisfy *mask* (a frame-length boolean)."""
        if len(mask) != len(self._frame):
            raise ValueError("mask length mismatch")
        counts = np.bincount(
            self._inverse, weights=mask.astype(float), minlength=len(self._groups)
        )
        return {group: int(count) for group, count in zip(self._groups, counts)}

    def mean(self, column: str) -> dict[object, float]:
        """Per-group mean of a numeric column."""
        sums = self.sum(column)
        counts = self.count()
        return {group: sums[group] / counts[group] for group in sums}

    def min(self, column: str) -> dict[object, float]:
        """Per-group minimum of a numeric column."""
        return self._extreme(column, np.minimum, np.inf)

    def max(self, column: str) -> dict[object, float]:
        """Per-group maximum of a numeric column."""
        return self._extreme(column, np.maximum, -np.inf)

    def _extreme(self, column: str, op, identity: float) -> dict[object, float]:
        values = np.asarray(self._frame.col(column), dtype=float)
        out = np.full(len(self._groups), identity)
        op.at(out, self._inverse, values)
        return {group: float(v) for group, v in zip(self._groups, out)}

    def nunique(self, column: str) -> dict[object, int]:
        """Per-group distinct count of another column."""
        other = self._frame.col(column)
        # Deduplicate (group, value) pairs, then count pairs per group.
        _, value_codes = np.unique(other, return_inverse=True)
        width = int(value_codes.max()) + 1 if len(value_codes) else 1
        pairs = self._inverse.astype(np.int64) * width + value_codes
        unique_pairs = np.unique(pairs)
        group_of_pair = unique_pairs // width
        counts = np.bincount(group_of_pair, minlength=len(self._groups))
        return {group: int(count) for group, count in zip(self._groups, counts)}

    def indices(self) -> dict[object, np.ndarray]:
        """Per-group row indices into the source frame."""
        order = np.argsort(self._inverse, kind="stable")
        sorted_inverse = self._inverse[order]
        boundaries = np.searchsorted(sorted_inverse, np.arange(len(self._groups) + 1))
        return {
            group: order[boundaries[i]: boundaries[i + 1]]
            for i, group in enumerate(self._groups)
        }

    def frames(self) -> dict[object, LogFrame]:
        """Materialize one sub-frame per group (small group counts only)."""
        return {
            group: self._frame.take(rows) for group, rows in self.indices().items()
        }

    def top(self, n: int) -> list[tuple[object, int]]:
        """The *n* largest groups by row count, ties broken by key."""
        counts = np.bincount(self._inverse, minlength=len(self._groups))
        order = np.lexsort((self._groups, -counts))[:n]
        return [(self._groups[i], int(counts[i])) for i in order]
