"""A small numpy-backed columnar engine.

pandas is the natural tool for the paper's analysis but is not
available in this environment, so this package provides the minimal
columnar engine the analyses need: typed columns, boolean-mask
filtering, value counts, group-bys with count/sum/nunique aggregates,
and CSV round-tripping of log files.

The central type is :class:`LogFrame`; :func:`frame_from_records`
builds one from :class:`~repro.logmodel.record.LogRecord` batches.

:class:`RecordBatch` is the pipeline's column-batch currency: unlike
:class:`LogFrame` (the 16 analysis columns) it carries every wire
field, so batches round-trip to records and ELFF rows byte-identically.
"""

from repro.frame.batch import BATCH_COLUMNS, RecordBatch, concat_batches
from repro.frame.groupby import GroupBy
from repro.frame.io import (
    empty_frame,
    frame_from_records,
    read_frame_csv,
    write_frame_csv,
)
from repro.frame.logframe import LogFrame, concat

__all__ = [
    "BATCH_COLUMNS",
    "LogFrame",
    "GroupBy",
    "RecordBatch",
    "concat",
    "concat_batches",
    "empty_frame",
    "frame_from_records",
    "read_frame_csv",
    "write_frame_csv",
]
