"""A small numpy-backed columnar engine.

pandas is the natural tool for the paper's analysis but is not
available in this environment, so this package provides the minimal
columnar engine the analyses need: typed columns, boolean-mask
filtering, value counts, group-bys with count/sum/nunique aggregates,
and CSV round-tripping of log files.

The central type is :class:`LogFrame`; :func:`frame_from_records`
builds one from :class:`~repro.logmodel.record.LogRecord` batches.
"""

from repro.frame.groupby import GroupBy
from repro.frame.io import (
    empty_frame,
    frame_from_records,
    read_frame_csv,
    write_frame_csv,
)
from repro.frame.logframe import LogFrame, concat

__all__ = [
    "LogFrame",
    "GroupBy",
    "concat",
    "empty_frame",
    "frame_from_records",
    "read_frame_csv",
    "write_frame_csv",
]
