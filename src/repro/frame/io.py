"""Loading log records into columnar form and CSV round-tripping."""

from __future__ import annotations

import csv
import sys
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.frame.logframe import LogFrame
from repro.logmodel.record import LogRecord

# Columns carried into analysis frames, with their dtypes.  This is the
# subset of the 26 log fields the paper's analyses actually touch
# (Table 2 of the paper), plus the epoch timestamp.
FRAME_COLUMNS: dict[str, str] = {
    "epoch": "int64",
    "c_ip": "object",
    "s_ip": "object",
    "cs_host": "object",
    "cs_uri_scheme": "object",
    "cs_uri_port": "int32",
    "cs_uri_path": "object",
    "cs_uri_query": "object",
    "cs_uri_ext": "object",
    "cs_method": "object",
    "cs_user_agent": "object",
    "sc_filter_result": "object",
    "x_exception_id": "object",
    "cs_categories": "object",
    "sc_status": "int32",
    "s_action": "object",
}


def new_record_buffers() -> dict[str, list]:
    """Fresh per-column append buffers for the standard frame columns."""
    return {name: [] for name in FRAME_COLUMNS}


def append_record(buffers: dict[str, list], record: LogRecord) -> None:
    """Fold one record into column *buffers* (strings interned)."""
    intern = sys.intern
    buffers["epoch"].append(record.epoch)
    buffers["c_ip"].append(intern(record.c_ip))
    buffers["s_ip"].append(intern(record.s_ip))
    buffers["cs_host"].append(intern(record.cs_host))
    buffers["cs_uri_scheme"].append(intern(record.cs_uri_scheme))
    buffers["cs_uri_port"].append(record.cs_uri_port)
    buffers["cs_uri_path"].append(intern(record.cs_uri_path))
    buffers["cs_uri_query"].append(intern(record.cs_uri_query))
    buffers["cs_uri_ext"].append(intern(record.cs_uri_ext))
    buffers["cs_method"].append(intern(record.cs_method))
    buffers["cs_user_agent"].append(intern(record.cs_user_agent))
    buffers["sc_filter_result"].append(intern(record.sc_filter_result))
    buffers["x_exception_id"].append(intern(record.x_exception_id))
    buffers["cs_categories"].append(intern(record.cs_categories))
    buffers["sc_status"].append(record.sc_status)
    buffers["s_action"].append(intern(record.s_action))


def buffers_to_frame(buffers: dict[str, list]) -> LogFrame:
    """Materialize append buffers into a :class:`LogFrame`."""
    if not buffers["epoch"]:
        return empty_frame()
    return LogFrame(
        {
            name: np.asarray(values, dtype=FRAME_COLUMNS[name])
            for name, values in buffers.items()
        }
    )


def frame_from_records(records: Iterable[LogRecord]) -> LogFrame:
    """Build a :class:`LogFrame` from an iterable of log records.

    String values are interned: log columns are highly repetitive
    (a handful of exception ids, proxies, hosts), so interning collapses
    memory to one object per distinct value.
    """
    buffers = new_record_buffers()
    for record in records:
        append_record(buffers, record)
    return buffers_to_frame(buffers)


def empty_frame() -> LogFrame:
    """A zero-row frame with the standard analysis columns."""
    return LogFrame(
        {name: np.empty(0, dtype=dtype) for name, dtype in FRAME_COLUMNS.items()}
    )


def write_frame_csv(frame: LogFrame, destination: Path) -> None:
    """Persist a frame as a plain CSV with a header row."""
    names = frame.column_names
    with open(destination, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [frame.col(name) for name in names]
        for i in range(len(frame)):
            writer.writerow([column[i] for column in columns])


def read_frame_csv(source: Path) -> LogFrame:
    """Load a frame written by :func:`write_frame_csv`.

    Column dtypes are restored from :data:`FRAME_COLUMNS` when the name
    is known, and left as strings otherwise.  Malformed input raises
    :class:`ValueError` naming the file and 1-based line number: rows
    with a cell count different from the header (previously silently
    zip-truncated into misaligned columns) and non-numeric cells in
    numeric columns (previously a bare numpy ``ValueError``).
    """
    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
        except StopIteration:
            raise ValueError(f"empty CSV file: {source}") from None
        buffers: list[list[str]] = [[] for _ in names]
        line_numbers: list[int] = []
        intern = sys.intern
        for row in reader:
            if len(row) != len(names):
                raise ValueError(
                    f"{source}: line {reader.line_num}: expected "
                    f"{len(names)} cells, got {len(row)}"
                )
            line_numbers.append(reader.line_num)
            for buffer, value in zip(buffers, row):
                buffer.append(intern(value))
    columns = {}
    for name, buffer in zip(names, buffers):
        dtype = FRAME_COLUMNS.get(name, "object")
        try:
            columns[name] = np.asarray(buffer, dtype=dtype)
        except (ValueError, OverflowError):
            line = _first_bad_numeric_line(buffer, line_numbers)
            raise ValueError(
                f"{source}: line {line}: non-numeric value in "
                f"{dtype} column {name!r}"
            ) from None
    return LogFrame(columns)


def _first_bad_numeric_line(
    buffer: list[str], line_numbers: list[int]
) -> int:
    """Locate the first cell that cannot convert to a number."""
    for value, line in zip(buffer, line_numbers):
        try:
            int(value)
        except ValueError:
            return line
    return line_numbers[-1] if line_numbers else 1
