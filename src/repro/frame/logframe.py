"""The :class:`LogFrame` columnar container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np


class LogFrame:
    """An immutable table of equal-length numpy columns.

    String columns use ``object`` dtype (variable-length strings),
    numeric columns use native dtypes.  All transforming operations
    return new frames; columns are shared, never copied, unless an
    operation must materialize a subset.
    """

    def __init__(self, columns: dict[str, np.ndarray]):
        if not columns:
            raise ValueError("a LogFrame needs at least one column")
        lengths = {name: len(array) for name, array in columns.items()}
        distinct = set(lengths.values())
        if len(distinct) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        self._columns: dict[str, np.ndarray] = dict(columns)
        self._length = distinct.pop()

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    @property
    def column_names(self) -> list[str]:
        """Names of the frame's columns."""
        return list(self._columns)

    def col(self, name: str) -> np.ndarray:
        """The raw numpy array behind column *name*."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {sorted(self._columns)}"
            ) from None

    def __getitem__(self, key):
        """``frame[str]`` -> column; ``frame[mask or indices]`` -> frame."""
        if isinstance(key, str):
            return self.col(key)
        return self.take(key)

    # -- construction / transformation ----------------------------------

    def take(self, selector: np.ndarray | slice) -> "LogFrame":
        """Row subset by boolean mask, integer indices, or slice."""
        if isinstance(selector, np.ndarray) and selector.dtype == bool:
            if len(selector) != self._length:
                raise ValueError("boolean mask length mismatch")
        return LogFrame(
            {name: array[selector] for name, array in self._columns.items()}
        )

    def where(self, mask: np.ndarray) -> "LogFrame":
        """Alias of :meth:`take` for boolean masks (reads better)."""
        return self.take(mask)

    def select(self, names: Sequence[str]) -> "LogFrame":
        """Column subset."""
        return LogFrame({name: self.col(name) for name in names})

    def with_column(self, name: str, values: np.ndarray | Sequence) -> "LogFrame":
        """Return a frame with column *name* added or replaced."""
        array = values if isinstance(values, np.ndarray) else np.asarray(values, dtype=object)
        if len(array) != self._length:
            raise ValueError("new column length mismatch")
        columns = dict(self._columns)
        columns[name] = array
        return LogFrame(columns)

    def drop(self, *names: str) -> "LogFrame":
        """Return a frame without the given columns."""
        remaining = {k: v for k, v in self._columns.items() if k not in names}
        return LogFrame(remaining)

    def head(self, n: int) -> "LogFrame":
        """The first *n* rows."""
        return self.take(slice(0, n))

    def sort_values(self, name: str, descending: bool = False) -> "LogFrame":
        """Rows sorted by one column (stable)."""
        order = np.argsort(self.col(name), kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def sample(self, fraction: float, rng: np.random.Generator) -> "LogFrame":
        """Uniform random row sample without replacement.

        Mirrors the paper's D_sample construction (a 4 % random sample
        of D_full).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        count = int(round(self._length * fraction))
        indices = rng.choice(self._length, size=count, replace=False)
        indices.sort()
        return self.take(indices)

    # -- aggregation -----------------------------------------------------

    def value_counts(self, name: str) -> list[tuple[object, int]]:
        """Distinct values of a column with counts, most frequent first.

        Ties are broken by value so results are deterministic.
        """
        values, counts = np.unique(self.col(name), return_counts=True)
        order = np.lexsort((values, -counts))
        return [(values[i], int(counts[i])) for i in order]

    def nunique(self, name: str) -> int:
        """Number of distinct values in a column."""
        return len(np.unique(self.col(name)))

    def groupby(self, name: str) -> "GroupBy":
        """Group rows by one column (see :class:`GroupBy`)."""
        from repro.frame.groupby import GroupBy

        return GroupBy(self, name)

    # -- row access (small frames / tests) -------------------------------

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate rows as dicts.  O(rows × columns): test-sized only."""
        names = list(self._columns)
        arrays = [self._columns[name] for name in names]
        for i in range(self._length):
            yield {name: array[i] for name, array in zip(names, arrays)}

    def row(self, index: int) -> dict[str, object]:
        """One row as a dict."""
        return {name: array[index] for name, array in self._columns.items()}

    def __repr__(self) -> str:
        return f"LogFrame({self._length} rows × {len(self._columns)} cols)"


def concat(frames: Iterable[LogFrame]) -> LogFrame:
    """Concatenate frames with identical column sets."""
    frames = list(frames)
    if not frames:
        raise ValueError("nothing to concatenate")
    first_names = set(frames[0].column_names)
    for frame in frames[1:]:
        if set(frame.column_names) != first_names:
            raise ValueError("frames have differing column sets")
    return LogFrame(
        {
            name: np.concatenate([frame.col(name) for frame in frames])
            for name in frames[0].column_names
        }
    )
