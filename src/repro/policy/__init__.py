"""Filtering-policy machinery: rules, engine, cache and error models.

The rule vocabulary and the first-match-wins :class:`PolicyEngine`
are regime-neutral building blocks: keyword (substring) matching over
the URL fields, domain/host blacklists, destination-IP subnet rules,
host-based redirects, custom-category targeting, plus the proxy cache
model and the network-error model.  :mod:`repro.policy.extensions`
adds the compositional rules (categories, ports, time-of-day windows,
browser types, extensions).

Concrete deployments assemble these into regime profiles
(:mod:`repro.regimes`): :func:`repro.policy.syria.build_syrian_policy`
builds the Blue Coat rule set the paper reverse-engineers in Sections
5 and 6 — including the custom "Blocked sites" category targeting
Facebook pages and the cache behaviour behind Table 3's PROXIED
traffic — while the Pakistani and Turkmen profiles define their own
DNS-injection and DPI rules over the same :class:`RequestView` /
:class:`Verdict` contracts.
"""

from repro.policy.engine import PolicyEngine
from repro.policy.extensions import (
    BrowserTypeRule,
    CategoryRule,
    ExtensionRule,
    PortRule,
    TimeOfDayRule,
)
from repro.policy.rules import (
    Action,
    DomainBlacklistRule,
    FacebookPageRule,
    HostBlacklistRule,
    IPBlacklistRule,
    KeywordRule,
    RedirectHostRule,
    RequestView,
    TorBlockSchedule,
    TorOnionRule,
    Verdict,
)

__all__ = [
    "Action",
    "Verdict",
    "RequestView",
    "PolicyEngine",
    "KeywordRule",
    "DomainBlacklistRule",
    "HostBlacklistRule",
    "RedirectHostRule",
    "FacebookPageRule",
    "IPBlacklistRule",
    "TorOnionRule",
    "TorBlockSchedule",
    "CategoryRule",
    "PortRule",
    "TimeOfDayRule",
    "BrowserTypeRule",
    "ExtensionRule",
]
