"""Blue Coat filtering-policy engine.

Implements the filtering machinery the paper reverse-engineers in
Sections 5 and 6: keyword (substring) matching over the URL fields,
domain/host blacklists, destination-IP subnet rules, host-based
redirects, the custom "Blocked sites" category targeting Facebook
pages, plus the proxy cache model and the network-error model that
produce the PROXIED and error traffic of Table 3.

:func:`repro.policy.syria.build_syrian_policy` assembles the concrete
rule set used by the simulation.
"""

from repro.policy.engine import PolicyEngine
from repro.policy.rules import (
    Action,
    DomainBlacklistRule,
    FacebookPageRule,
    HostBlacklistRule,
    IPBlacklistRule,
    KeywordRule,
    RedirectHostRule,
    RequestView,
    TorOnionRule,
    Verdict,
)

__all__ = [
    "Action",
    "Verdict",
    "RequestView",
    "PolicyEngine",
    "KeywordRule",
    "DomainBlacklistRule",
    "HostBlacklistRule",
    "RedirectHostRule",
    "FacebookPageRule",
    "IPBlacklistRule",
    "TorOnionRule",
]
