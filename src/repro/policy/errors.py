"""Network-error injection model.

The paper's Table 3 breaks the denied traffic into eight network-error
exceptions.  The model injects these at calibrated per-request rates;
components with distinct error profiles (e.g. Tor OR connections,
16.2 % of which fail with TCP errors) override the default profile.
"""

from __future__ import annotations

import numpy as np

# Default per-request error probabilities, calibrated to Table 3's
# D_full column (fractions of total traffic).
DEFAULT_ERROR_RATES: dict[str, float] = {
    "tcp_error": 0.0286,
    "internal_error": 0.0196,
    "invalid_request": 0.0036,
    "unsupported_protocol": 0.0010,
    "dns_unresolved_hostname": 0.0002,
    "dns_server_failure": 0.0001,
    "unsupported_encoding": 0.0000004,
    "invalid_response": 0.00000001,
}

# Tor OR connections observed in the paper fail far more often.
TOR_ERROR_RATES: dict[str, float] = {
    "tcp_error": 0.162,
    "internal_error": 0.004,
}

# The D_user slice (proxy SG-42, July 22-23) shows a different error
# mix: fewer TCP errors, more internal errors (Table 3, D_user column).
USER_SLICE_ERROR_RATES: dict[str, float] = {
    "tcp_error": 0.0088,
    "internal_error": 0.0325,
    "invalid_request": 0.0059,
    "unsupported_protocol": 0.0002,
    "dns_unresolved_hostname": 0.0006,
    "dns_server_failure": 0.0001,
}


class ErrorModel:
    """Samples a network-error exception (or None) per request."""

    def __init__(self, rates: dict[str, float] | None = None):
        self._rates = dict(DEFAULT_ERROR_RATES if rates is None else rates)
        total = sum(self._rates.values())
        if total >= 1.0:
            raise ValueError(f"error rates sum to {total} >= 1")
        self._exceptions = list(self._rates)
        self._probabilities = np.array(
            [self._rates[e] for e in self._exceptions] + [1.0 - total]
        )
        self._outcomes = self._exceptions + [None]
        # Cumulative thresholds for a single-uniform draw: cheaper than
        # rng.choice(p=...) in the per-request hot path.
        self._cumulative = np.cumsum(self._probabilities)

    @property
    def rates(self) -> dict[str, float]:
        return dict(self._rates)

    def sample(self, rng: np.random.Generator) -> str | None:
        """One draw: an exception id, or None for no error."""
        index = int(np.searchsorted(self._cumulative, rng.random(), side="right"))
        return self._outcomes[min(index, len(self._outcomes) - 1)]

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorized draws (object array of exception ids / None)."""
        draws = rng.random(count)
        indices = np.minimum(
            np.searchsorted(self._cumulative, draws, side="right"),
            len(self._outcomes) - 1,
        )
        lookup = np.array(self._outcomes, dtype=object)
        return lookup[indices]
