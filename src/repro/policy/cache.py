"""Proxy cache (PROXIED) models.

0.47 % of the paper's requests are PROXIED — served from or decided by
the proxy cache.  The paper notes an inconsistency: some PROXIED
requests to consistently-censored URLs carry *no* exception id even
though equivalent requests are denied (Section 3.3).

Two models are provided:

* :class:`CacheModel` — probabilistic, calibrated directly to the
  paper's PROXIED rate; the default, because it reproduces the logs'
  statistics without assuming anything about the appliances' cache
  configuration;
* :class:`LruProxyCache` — a behavioural LRU over actual request URLs
  ("bandwidth gain profile" style): PROXIED rows arise from genuine
  repetition, and the missing-exception inconsistency arises from
  stale cached decisions.  Used by the cache ablation bench.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.metrics import current_registry

DEFAULT_CACHE_RATE = 0.0047
DEFAULT_CLEAR_SHARE = 0.55


class CacheModel:
    """Samples whether a request is PROXIED and whether its exception
    survives caching."""

    def __init__(
        self,
        cache_rate: float = DEFAULT_CACHE_RATE,
        clear_exception_share: float = DEFAULT_CLEAR_SHARE,
    ):
        if not 0.0 <= cache_rate <= 1.0:
            raise ValueError(f"bad cache rate: {cache_rate}")
        if not 0.0 <= clear_exception_share <= 1.0:
            raise ValueError(f"bad clear share: {clear_exception_share}")
        self.cache_rate = cache_rate
        self.clear_exception_share = clear_exception_share

    def is_cached(self, rng: np.random.Generator) -> bool:
        """One PROXIED draw at the calibrated rate."""
        return rng.random() < self.cache_rate

    def exception_cleared(self, rng: np.random.Generator) -> bool:
        """For a cached censored request: does the log lose the
        exception id (the paper's PROXIED inconsistency)?"""
        return rng.random() < self.clear_exception_share

    @staticmethod
    def cacheable(method: str, content_type: str) -> bool:
        """The probabilistic model applies to all traffic."""
        return True

    def lookup(self, key: str, rng: np.random.Generator) -> bool:
        """Uniform-probability hit; the key is ignored (see
        :class:`LruProxyCache` for the behavioural variant)."""
        cached = self.is_cached(rng)
        registry = current_registry()
        if registry is not None:
            registry.inc("cache.hits" if cached else "cache.misses")
        return cached


#: Content types the "bandwidth gain profile" caches.
_CACHEABLE_TYPES = (
    "image/", "application/javascript", "text/css",
    "application/octet-stream", "application/zip", "video/",
)


class LruProxyCache:
    """A behavioural cache: exact-URL LRU with bounded capacity.

    ``lookup`` both queries and updates the cache, mirroring a real
    appliance: a miss inserts the entry (when the request looks
    cacheable), a hit refreshes recency and yields a PROXIED log row.
    The stale-decision share models SGOS serving a cached object
    without re-running policy — the paper's missing-exception rows.
    """

    def __init__(
        self,
        capacity: int = 50_000,
        stale_decision_share: float = DEFAULT_CLEAR_SHARE,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 <= stale_decision_share <= 1.0:
            raise ValueError(f"bad stale share: {stale_decision_share}")
        self.capacity = capacity
        self.clear_exception_share = stale_decision_share
        self._entries: OrderedDict[str, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def cacheable(method: str, content_type: str) -> bool:
        if method != "GET":
            return False
        return any(content_type.startswith(t) for t in _CACHEABLE_TYPES) or (
            content_type == "text/html"
        )

    def lookup(self, key: str, rng: np.random.Generator) -> bool:
        """Query-and-update; returns True on a cache hit."""
        registry = current_registry()
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if registry is not None:
                registry.inc("cache.hits")
            return True
        self.misses += 1
        if registry is not None:
            registry.inc("cache.misses")
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if registry is not None:
                registry.inc("cache.evictions")
        return False

    def is_cached(self, rng: np.random.Generator) -> bool:
        """Compatibility shim for callers without a key (never hits —
        a behavioural cache needs the URL)."""
        return False

    def exception_cleared(self, rng: np.random.Generator) -> bool:
        """Stale-decision draw (the missing-exception quirk)."""
        return rng.random() < self.clear_exception_share

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
