"""Filtering rule types.

Every rule inspects a :class:`RequestView` — the fields the SGOS policy
layer can see — and either abstains (``None``) or returns a
:class:`Verdict`.  Rules are pure and reusable; the per-country
configuration lives in :mod:`repro.policy.syria`.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable
from dataclasses import dataclass
from enum import Enum

from repro.net.ip import IPv4Network, parse_ipv4
from repro.net.url import is_ip_like, registered_domain


class Action(Enum):
    """What the proxy does with a matched request."""

    ALLOW = "allow"
    DENY = "deny"
    REDIRECT = "redirect"


@dataclass(frozen=True, slots=True)
class Verdict:
    """Outcome of policy evaluation.

    ``rule`` names the matching rule (simulation ground truth — the
    real logs never record it); ``category`` carries a custom category
    label when one applies (the "Blocked sites" mechanism).
    """

    action: Action
    exception_id: str
    rule: str | None = None
    category: str | None = None


ALLOW_VERDICT = Verdict(Action.ALLOW, "-")
_DENIED = "policy_denied"
_REDIRECTED = "policy_redirect"


@dataclass(frozen=True, slots=True)
class RequestView:
    """The request attributes visible to the policy layer.

    For HTTPS CONNECT requests only the host and port are visible
    (Section 4 of the paper: path/query/ext are absent from HTTPS log
    entries), so ``path`` and ``query`` are empty there.
    """

    host: str
    path: str = ""
    query: str = ""
    port: int = 80
    scheme: str = "http"
    method: str = "GET"
    epoch: int = 0
    user_agent: str = ""  # used only by browser-type rules

    def matchable_text(self) -> str:
        return f"{self.host}{self.path}?{self.query}".lower()


class KeywordRule:
    """Substring blacklist over host+path+query (Section 5.4).

    The paper identifies five keywords: ``proxy``, ``hotspotshield``,
    ``ultrareach``, ``israel`` and ``ultrasurf``.  Matching is a plain
    case-insensitive substring scan — exactly what produces the
    paper's collateral damage (Google toolbar, Facebook plugins, ads).
    """

    def __init__(self, keywords: Iterable[str], name: str = "keyword"):
        self.keywords = tuple(keyword.lower() for keyword in keywords)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        text = request.matchable_text()
        for keyword in self.keywords:
            if keyword in text:
                return Verdict(Action.DENY, _DENIED, f"{self.name}:{keyword}")
        return None


class DomainBlacklistRule:
    """Registered-domain and TLD-suffix blacklist (URL-based filtering).

    Blocks every request whose host falls under a blacklisted
    registered domain (e.g. ``metacafe.com``) or a blacklisted suffix
    (e.g. ``.il`` — the paper finds all Israeli domains blocked).
    """

    def __init__(
        self,
        domains: Iterable[str],
        suffixes: Iterable[str] = (),
        name: str = "domain",
    ):
        self.domains = frozenset(domain.lower() for domain in domains)
        self.suffixes = tuple(suffix.lower() for suffix in suffixes)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        host = request.host.lower()
        if is_ip_like(host):
            return None
        domain = registered_domain(host)
        if domain in self.domains:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:{domain}")
        for suffix in self.suffixes:
            if host.endswith(suffix):
                return Verdict(Action.DENY, _DENIED, f"{self.name}:{suffix}")
        return None


class HostBlacklistRule:
    """Exact-hostname blacklist (finer than domain blocking).

    Used for hosts like ``messenger.live.com`` where the registered
    domain stays reachable but one service host is always censored.
    """

    def __init__(self, hosts: Iterable[str], name: str = "host"):
        self.hosts = frozenset(host.lower() for host in hosts)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        host = request.host.lower()
        if host in self.hosts:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:{host}")
        return None


class RedirectHostRule:
    """Hosts whose requests are redirected rather than denied (Table 7)."""

    def __init__(self, hosts: Iterable[str], name: str = "redirect"):
        self.hosts = frozenset(host.lower() for host in hosts)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        host = request.host.lower()
        if host in self.hosts:
            return Verdict(Action.REDIRECT, _REDIRECTED, f"{self.name}:{host}")
        return None


class FacebookPageRule:
    """The custom "Blocked sites" category (Section 6, Table 14).

    Matches requests to specific Facebook pages only when the query is
    one of a narrow set of forms; matching requests are categorized
    into the custom category and redirected.  Page-name matching is
    case-sensitive, mirroring the paper's observation that
    ``Syrian.Revolution`` and ``Syrian.revolution`` behave differently.
    """

    CATEGORY = "Blocked sites"

    def __init__(
        self,
        pages: Iterable[str],
        hosts: Iterable[str],
        query_forms: Iterable[str],
        name: str = "fb-page",
    ):
        self.pages = frozenset(pages)
        self.hosts = frozenset(host.lower() for host in hosts)
        self.query_forms = frozenset(query_forms)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if request.host.lower() not in self.hosts:
            return None
        page = request.path.strip("/")
        if page in self.pages and request.query in self.query_forms:
            return Verdict(
                Action.REDIRECT, _REDIRECTED, f"{self.name}:{page}", self.CATEGORY
            )
        return None


class IPBlacklistRule:
    """Destination-IP filtering (Section 5.4, Tables 11–12).

    Applies only when the requested host is a raw IPv4 address; blocks
    blacklisted subnets (the Israeli blocks of Table 12) and individual
    addresses (e.g. anonymizer endpoints).
    """

    def __init__(
        self,
        subnets: Iterable[IPv4Network] = (),
        addresses: Iterable[str] = (),
        name: str = "ip",
    ):
        self.subnets = tuple(subnets)
        self.addresses = frozenset(parse_ipv4(a) for a in addresses)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if not is_ip_like(request.host):
            return None
        address = parse_ipv4(request.host)
        if address in self.addresses:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:address")
        for subnet in self.subnets:
            if address in subnet:
                return Verdict(Action.DENY, _DENIED, f"{self.name}:{subnet}")
        return None


class TorOnionRule:
    """Time-varying blocking of Tor OR connections (Section 7.1).

    The paper observes that a single proxy (SG-44) intermittently
    censors Tor *onion* traffic (connections to relay OR ports) while
    directory (HTTP) traffic stays untouched.  The rule matches
    ``(relay ip, OR port)`` pairs and applies a per-time-window
    blocking probability, reproducing the inconsistent R_filter
    behaviour of Fig. 9.  The probability draw is deterministic in the
    request (hash-based), keeping policy evaluation a pure function.
    """

    def __init__(
        self,
        relay_endpoints: Iterable[tuple[str, int]],
        schedule: "TorBlockSchedule",
        name: str = "tor",
    ):
        self.endpoints = frozenset(
            (ip, int(port)) for ip, port in relay_endpoints
        )
        self.schedule = schedule
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if request.method != "CONNECT":
            return None
        if (request.host, request.port) not in self.endpoints:
            return None
        probability = self.schedule.block_probability(request.epoch)
        if probability <= 0.0:
            return None
        # Deterministic pseudo-random draw from the request identity
        # (crc32 rather than hash(): str hashing is salted per process).
        token = f"{request.host}:{request.port}:{request.epoch}".encode()
        draw = (zlib.crc32(token) & 0xFFFF) / 0x10000
        if draw < probability:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:onion")
        return None


class TorBlockSchedule:
    """Piecewise-constant blocking intensity over time."""

    def __init__(self, windows: Iterable[tuple[int, int, float]]):
        self.windows = tuple(windows)
        for start, end, probability in self.windows:
            if start >= end:
                raise ValueError(f"empty window: {start}..{end}")
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"bad probability: {probability}")

    def block_probability(self, epoch: int) -> float:
        for start, end, probability in self.windows:
            if start <= epoch < end:
                return probability
        return 0.0
