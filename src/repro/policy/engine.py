"""Ordered rule evaluation."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.policy.rules import ALLOW_VERDICT, RequestView, Verdict


class PolicyEngine:
    """Evaluates an ordered rule list; first match wins.

    Mirrors SGOS policy semantics for the subset the paper exercises:
    the custom-category rule is evaluated first (categorization
    precedes the general policy), then redirects, then the deny rules.
    Ordering is the caller's responsibility; :mod:`repro.policy.syria`
    builds the canonical order.
    """

    def __init__(self, rules: Sequence[object], name: str = "policy"):
        for rule in rules:
            if not hasattr(rule, "evaluate"):
                raise TypeError(f"not a rule: {rule!r}")
        self._rules = tuple(rules)
        self.name = name

    @property
    def rules(self) -> tuple[object, ...]:
        return self._rules

    def evaluate(self, request: RequestView) -> Verdict:
        """Return the verdict for *request* (ALLOW when nothing matches)."""
        for rule in self._rules:
            verdict = rule.evaluate(request)
            if verdict is not None:
                return verdict
        return ALLOW_VERDICT

    def with_rules(self, extra: Iterable[object], prepend: bool = False) -> "PolicyEngine":
        """A new engine with *extra* rules appended (or prepended)."""
        extra = tuple(extra)
        rules = extra + self._rules if prepend else self._rules + extra
        return PolicyEngine(rules, name=self.name)
