"""The Syrian filtering configuration.

Assembles the concrete rule set the paper reverse-engineers: the five
blacklisted keywords, the blocked-domain list (the "105 suspected
domains" of Section 5.4), the ``.il`` suffix, the Israeli subnet and
address blocks of Table 12, the redirect hosts of Table 7, the custom
Facebook-page category of Table 14, and SG-44's intermittent Tor
blocking of Section 7.1.

The configuration doubles as the simulation's *ground truth*: tests
validate that the analysis pipeline re-derives exactly these rules
from the generated logs.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.catalog import facebook as fb
from repro.catalog.domains import SiteSpec
from repro.logmodel.fields import PROXY_NAMES
from repro.net.ip import IPv4Network, parse_network
from repro.net.url import registered_domain
from repro.policy.engine import PolicyEngine
from repro.policy.rules import (
    DomainBlacklistRule,
    FacebookPageRule,
    HostBlacklistRule,
    IPBlacklistRule,
    KeywordRule,
    RedirectHostRule,
    TorBlockSchedule,
    TorOnionRule,
)
from repro.timeline import day_epoch
from repro.tornet import TorDirectory

#: The five blacklisted keywords (Table 10 of the paper).
KEYWORDS: tuple[str, ...] = (
    "proxy",
    "hotspotshield",
    "ultrareach",
    "israel",
    "ultrasurf",
)

#: Blocked TLD suffix: all Israeli domains (Section 5.4).
BLOCKED_SUFFIXES: tuple[str, ...] = (".il",)

#: Israeli subnets blocked wholesale (Table 12's "group A").
BLOCKED_SUBNETS: tuple[IPv4Network, ...] = (
    parse_network("84.229.0.0/16"),
    parse_network("46.120.0.0/15"),
    parse_network("89.138.0.0/15"),
    parse_network("212.235.64.0/19"),
)

#: Individually blocked Israeli addresses inside the otherwise-allowed
#: 212.150.0.0/16 (Table 12's "group B": 3 censored IPs among 15).
BLOCKED_IL_ADDRESSES: tuple[str, ...] = (
    "212.150.13.20",
    "212.150.77.45",
    "212.150.201.8",
)

#: Extra redirect hosts beyond the Facebook pages (Table 7).
REDIRECT_HOSTS: tuple[str, ...] = (
    "upload.youtube.com",
    "competition.mbc.net",
    "sharek.aljazeera.net",
)


def default_tor_schedule() -> TorBlockSchedule:
    """SG-44's intermittent Tor-blocking windows.

    Shaped to reproduce Fig. 9: quiet start with brief mild windows,
    aggressive bursts on the Aug 3 protest day, alternating
    aggressive/mild periods afterwards.
    """
    windows: list[tuple[int, int, float]] = []

    def add(day: str, start_hour: int, end_hour: int, probability: float) -> None:
        base = day_epoch(day)
        windows.append((base + start_hour * 3600, base + end_hour * 3600, probability))

    add("2011-08-01", 9, 12, 0.20)
    add("2011-08-02", 7, 9, 0.45)
    add("2011-08-02", 14, 17, 0.30)
    add("2011-08-03", 5, 9, 0.90)
    add("2011-08-03", 10, 14, 0.60)
    add("2011-08-03", 17, 22, 0.80)
    add("2011-08-04", 0, 5, 0.40)
    add("2011-08-04", 8, 16, 0.85)
    add("2011-08-04", 19, 23, 0.55)
    add("2011-08-05", 6, 11, 0.70)
    add("2011-08-05", 15, 22, 0.45)
    add("2011-08-06", 4, 9, 0.65)
    add("2011-08-06", 11, 19, 0.80)
    return TorBlockSchedule(windows)


@dataclass
class SyrianPolicy:
    """The full per-proxy policy configuration plus ground truth."""

    base_engine: PolicyEngine
    proxy_engines: dict[str, PolicyEngine]
    blocked_domains: frozenset[str]
    blocked_hosts: frozenset[str]
    keywords: tuple[str, ...]
    tor_schedule: TorBlockSchedule | None
    blocked_subnets: tuple[IPv4Network, ...] = BLOCKED_SUBNETS
    blocked_addresses: tuple[str, ...] = field(default_factory=tuple)

    def engine_for(self, proxy_name: str) -> PolicyEngine:
        return self.proxy_engines.get(proxy_name, self.base_engine)


def blocked_domains_from_sites(sites: Iterable[SiteSpec]) -> frozenset[str]:
    """Registered domains of every ``suspected``-tagged site."""
    return frozenset(
        registered_domain(site.host) for site in sites if site.tagged("suspected")
    )


def blocked_hosts_from_sites(sites: Iterable[SiteSpec]) -> frozenset[str]:
    """Hosts blocked individually (``blocked-host`` tag)."""
    return frozenset(
        site.host for site in sites if site.tagged("blocked-host")
    )


def build_syrian_policy(
    sites: Iterable[SiteSpec],
    tor_directory: TorDirectory | None = None,
    extra_blocked_addresses: Iterable[str] = (),
    tor_schedule: TorBlockSchedule | None = None,
    tor_blocking_proxy: str = "SG-44",
) -> SyrianPolicy:
    """Assemble the Syrian policy over a site universe.

    ``extra_blocked_addresses`` lets the workload add the anonymizer
    endpoints it places abroad (the censored NL/GB/RU addresses of
    Table 11); ``tor_directory`` enables SG-44's Tor rule.
    """
    sites = list(sites)
    blocked_domains = blocked_domains_from_sites(sites)
    blocked_hosts = blocked_hosts_from_sites(sites)
    blocked_addresses = tuple(BLOCKED_IL_ADDRESSES) + tuple(extra_blocked_addresses)

    rules = [
        FacebookPageRule(
            pages=fb.CUSTOM_CATEGORY_PAGES,
            hosts=[host for host, _ in fb.PAGE_HOSTS],
            query_forms=fb.BLOCKED_QUERY_FORMS,
        ),
        RedirectHostRule(REDIRECT_HOSTS),
        HostBlacklistRule(blocked_hosts),
        DomainBlacklistRule(blocked_domains, suffixes=BLOCKED_SUFFIXES),
        KeywordRule(KEYWORDS),
        IPBlacklistRule(subnets=BLOCKED_SUBNETS, addresses=blocked_addresses),
    ]
    base = PolicyEngine(rules, name="syria-base")

    proxy_engines: dict[str, PolicyEngine] = {name: base for name in PROXY_NAMES}
    schedule = None
    if tor_directory is not None:
        schedule = tor_schedule or default_tor_schedule()
        tor_rule = TorOnionRule(tor_directory.or_endpoints(), schedule)
        proxy_engines[tor_blocking_proxy] = base.with_rules([tor_rule])

    return SyrianPolicy(
        base_engine=base,
        proxy_engines=proxy_engines,
        blocked_domains=blocked_domains,
        blocked_hosts=blocked_hosts,
        keywords=KEYWORDS,
        tor_schedule=schedule,
        blocked_addresses=blocked_addresses,
    )
