"""Additional SGOS rule types.

Blue Coat's documentation (Section 3.2 of the paper) lists filtering
criteria beyond what the Syrian deployment used: website categories,
content type, browser type, and date/time of day.  These rule types
complete the appliance model; they plug into the same
:class:`~repro.policy.engine.PolicyEngine` and are exercised by the
tests and the extension examples, but the canonical Syrian
configuration does not enable them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.policy.rules import Action, RequestView, Verdict

_DENIED = "policy_denied"


class CategoryRule:
    """Deny requests whose URL categorizes into a blocked category.

    Takes a ``categorize(host, path) -> str`` callable — normally
    :meth:`repro.categorizer.TrustedSourceCategorizer.categorize` — so
    the rule stays decoupled from any specific database.
    """

    def __init__(
        self,
        blocked_categories: Iterable[str],
        categorize: Callable[[str, str], str],
        name: str = "category",
    ):
        self.blocked = frozenset(blocked_categories)
        self.categorize = categorize
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        category = self.categorize(request.host, request.path)
        if category in self.blocked:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:{category}")
        return None


class PortRule:
    """Deny connections to blacklisted destination ports (e.g. closing
    SOCKS or IRC egress)."""

    def __init__(self, blocked_ports: Iterable[int], name: str = "port"):
        self.blocked = frozenset(int(port) for port in blocked_ports)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        if request.port in self.blocked:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:{request.port}")
        return None


class TimeOfDayRule:
    """Apply an inner rule only inside a daily time window.

    SGOS supports schedule-conditioned policy; this combinator wraps
    any rule with an [start hour, end hour) local-time guard.  Windows
    may wrap midnight (start > end).
    """

    def __init__(self, inner: object, start_hour: int, end_hour: int):
        if not (0 <= start_hour <= 24 and 0 <= end_hour <= 24):
            raise ValueError("hours must be within 0..24")
        if start_hour == end_hour:
            raise ValueError("empty time window")
        self.inner = inner
        self.start_hour = start_hour
        self.end_hour = end_hour
        self.name = f"time:{start_hour:02d}-{end_hour:02d}"

    def _in_window(self, epoch: int) -> bool:
        hour = (epoch % 86400) // 3600
        if self.start_hour < self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour

    def evaluate(self, request: RequestView) -> Verdict | None:
        if not self._in_window(request.epoch):
            return None
        return self.inner.evaluate(request)


class BrowserTypeRule:
    """Deny requests from blacklisted user-agent substrings.

    Matching is substring-based like the keyword engine; the rule
    abstains when the request view carries no user agent (the field is
    optional on :class:`RequestView`).
    """

    def __init__(self, blocked_markers: Iterable[str], name: str = "browser"):
        self.markers = tuple(marker.lower() for marker in blocked_markers)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        agent = getattr(request, "user_agent", "") or ""
        lowered = agent.lower()
        for marker in self.markers:
            if marker in lowered:
                return Verdict(Action.DENY, _DENIED, f"{self.name}:{marker}")
        return None


class ExtensionRule:
    """Deny requests for blacklisted file extensions (``cs-uri-ext``),
    e.g. blocking executable downloads."""

    def __init__(self, blocked_extensions: Iterable[str], name: str = "ext"):
        self.blocked = frozenset(ext.lower().lstrip(".") for ext in blocked_extensions)
        self.name = name

    def evaluate(self, request: RequestView) -> Verdict | None:
        segment = request.path.rsplit("/", 1)[-1]
        if "." not in segment:
            return None
        extension = segment.rsplit(".", 1)[-1].lower()
        if extension in self.blocked:
            return Verdict(Action.DENY, _DENIED, f"{self.name}:{extension}")
        return None
