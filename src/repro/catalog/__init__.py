"""Shared data catalogs.

The catalogs define the *universe* the simulator draws from: the domain
population with per-domain URL profiles and popularity weights, the
Facebook page and social-plugin inventories, the social-network list of
Section 6, and the anonymizer services of Section 7.2.

Both the workload generator (which samples requests from the catalogs)
and the categorizer (which labels URLs) build on this package, keeping
a single source of truth for every host the simulation knows about.
"""

from repro.catalog.categories import Category
from repro.catalog.domains import DomainSpec, UrlTemplate, build_domain_universe

__all__ = ["Category", "DomainSpec", "UrlTemplate", "build_domain_universe"]
