"""Word stems used to synthesize URLs and domain names.

Deliberately neutral vocabulary: the simulator needs plausible-looking
tokens for search queries, video slugs and synthetic domain names, not
real content.
"""

from __future__ import annotations

# Tokens used to fill {word} placeholders in URL templates.
QUERY_WORDS: tuple[str, ...] = (
    "weather", "football", "recipes", "music", "movies", "news", "jobs",
    "travel", "hotels", "cars", "phones", "games", "books", "health",
    "fashion", "education", "history", "science", "translate", "dictionary",
    "currency", "gold", "streaming", "series", "episodes", "lyrics",
    "ringtones", "wallpaper", "download", "software", "drivers", "antivirus",
    "browser", "email", "chat", "messenger", "video", "photos", "maps",
    "directions", "restaurants", "shopping", "electronics", "laptop",
    "camera", "university", "exam", "results", "league", "match",
)

# Stems for synthetic suspected (blocked) domains: news/forum flavoured.
SUSPECTED_STEMS: tuple[str, ...] = (
    "levantnews", "damascusvoice", "sham-press", "orienttimes", "al-akhbar",
    "freedomword", "revolt-daily", "souria-post", "midan-news", "qalam",
    "al-balad", "hurriya", "watan-online", "al-manbar", "tahrir-news",
    "sawt-albalad", "al-fajr", "karama-press", "al-maydan", "shams-news",
    "al-taghyir", "horan-today", "al-wahda", "barada-news", "nahda-media",
)

SUSPECTED_TLDS: tuple[str, ...] = ("com", "net", "org", "info", "cc", "tv")

# Stems for the long-tail domain population (never censored).
TAIL_STEMS: tuple[str, ...] = (
    "portal", "bazaar", "media", "online", "planet", "express", "central",
    "store", "market", "city", "zone", "hub", "point", "world", "plus",
    "star", "gate", "land", "spot", "line", "net", "web", "digital",
    "daily", "live", "life", "home", "kids", "tech", "auto", "sport",
)

TAIL_TLDS: tuple[str, ...] = ("com", "net", "org", "info")

# Stems for synthetic anonymizer services (Section 7.2).
ANONYMIZER_CLEAN_STEMS: tuple[str, ...] = (
    "tunnel", "shield", "cloak", "veil", "mask", "ghost", "stealth",
    "hidden", "escape", "bypass", "gate", "freedom", "liberty", "open",
    "breeze", "rocket", "falcon", "mirage",
)

ANONYMIZER_PROXY_STEMS: tuple[str, ...] = (
    "fastproxy", "proxyweb", "kproxy-mirror", "proxylist", "myproxy",
    "proxyhub", "goproxy", "proxyland", "sockproxy", "freeproxy",
)
