"""Anonymizer service catalog (Section 7.2 of the paper).

The paper finds 821 "Anonymizer"-categorized domains in D_sample,
attracting 0.4 % of all requests; 92.7 % of the hosts (25 % of the
requests) are never filtered, while the remaining ~60 popular hosts see
a mix of allowed and censored requests — censorship is triggered by the
``proxy`` keyword in the *request URL*, not by the hostname, so a
service whose fetch endpoint embeds ``proxy`` is censored only on those
fetches.

We model three tiers:

* ``proxy``-named services — the hostname itself matches the keyword,
  so every request is censored;
* mixed services — clean hostname, but a per-service share of requests
  hits a ``/proxy``-style fetch endpoint;
* clean services — tools like Freegate/GTunnel/GPass whose URLs never
  contain a blacklisted keyword and are therefore never filtered.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.categories import Category as C
from repro.catalog.domains import SiteSpec, UrlTemplate as T, _mixed
from repro.catalog.words import ANONYMIZER_CLEAN_STEMS, ANONYMIZER_PROXY_STEMS

# Total anonymizer traffic: 0.38 % of browsing volume (the paper's
# 122 K requests out of 32 M in D_sample).
TOTAL_ANONYMIZER_WEIGHT = 0.38

#: (count) tier sizes; 20 + 40 + 761 = 821 hosts, matching the paper.
PROXY_NAMED_COUNT = 20
MIXED_COUNT = 40
CLEAN_COUNT = 761


def anonymizer_sites(seed: int = 72) -> list[SiteSpec]:
    """Build the 821-host anonymizer population."""
    rng = np.random.default_rng(seed)
    sites: list[SiteSpec] = []
    tags = frozenset({"anonymizer", "synthetic"})

    # Popularity: the ~60 keyword-exposed hosts absorb ~two thirds
    # of the anonymizer requests (the paper's "never filtered" hosts
    # carry 25 %), Zipf-distributed within each tier.
    exposed_weight = TOTAL_ANONYMIZER_WEIGHT * 0.68
    clean_weight = TOTAL_ANONYMIZER_WEIGHT * 0.32

    def zipf_weights(count: int, total: float) -> np.ndarray:
        ranks = np.arange(1, count + 1, dtype=float)
        weights = 1.0 / ranks**1.2
        return weights * (total / weights.sum())

    proxy_weights = zipf_weights(PROXY_NAMED_COUNT, exposed_weight * 0.22)
    for i in range(PROXY_NAMED_COUNT):
        stem = ANONYMIZER_PROXY_STEMS[i % len(ANONYMIZER_PROXY_STEMS)]
        host = f"www.{stem}{i}.com"
        sites.append(SiteSpec(
            host, C.ANONYMIZER, float(proxy_weights[i]),
            (T("/", weight=1), T("/browse.php", "u=http%3A%2F%2F{word}.com",
                                 weight=3)),
            tags=tags | {"proxy-named"},
        ))

    mixed_weights = zipf_weights(MIXED_COUNT, exposed_weight * 0.78)
    for i in range(MIXED_COUNT):
        stem = ANONYMIZER_CLEAN_STEMS[i % len(ANONYMIZER_CLEAN_STEMS)]
        host = f"www.{stem}unblock{i}.com"
        # Per-service share of requests that hit the keyword-bearing
        # fetch endpoint, spread widely to reproduce the broad
        # allowed/censored ratio CDF of Fig. 10(b); mean < 0.5 so most
        # filtered services still show more allowed than censored.
        marked_share = float(rng.uniform(0.02, 0.45))
        sites.append(SiteSpec(
            host, C.ANONYMIZER, float(mixed_weights[i]),
            _mixed(
                clean=(T("/", weight=2), T("/signup", weight=1),
                       T("/faq.html", weight=1)),
                marked=(T("/cgi-bin/nph-proxy.cgi",
                          "url=http%3A%2F%2F{word}.com", weight=1),),
                marked_share=marked_share,
            ),
            tags=tags | {"mixed"},
        ))

    clean_weights = zipf_weights(CLEAN_COUNT, clean_weight)
    for i in range(CLEAN_COUNT):
        stem = ANONYMIZER_CLEAN_STEMS[i % len(ANONYMIZER_CLEAN_STEMS)]
        host = f"{stem}{i}.vpn-gate.net" if i % 3 == 0 else f"www.{stem}tunnel{i}.net"
        sites.append(SiteSpec(
            host, C.ANONYMIZER, float(clean_weights[i]),
            (T("/", weight=2), T("/download/client.exe", weight=1,
                                 content_type="application/octet-stream"),
             T("/servers.xml", weight=1, content_type="text/xml")),
            tags=tags | {"clean"},
        ))

    return sites
