"""The social-network watchlist of Section 6.

The paper selects the top-25 social networks by Alexa rank (Nov 2013)
plus three networks popular in Arabic-speaking countries (netlog,
salamworld, muslimup), and tabulates allowed/censored/proxied request
counts per registered domain (Table 13).
"""

from __future__ import annotations

#: Registered domains of the 28 watched social networks.
OSN_WATCHLIST: tuple[str, ...] = (
    "facebook.com",
    "twitter.com",
    "linkedin.com",
    "pinterest.com",
    "myspace.com",
    "plus.google.com",  # tracked as a host: google.com would swallow it
    "deviantart.com",
    "livejournal.com",
    "tagged.com",
    "orkut.com",
    "cafemom.com",
    "ning.com",
    "meetup.com",
    "mylife.com",
    "badoo.com",
    "hi5.com",
    "flickr.com",
    "skyrock.com",
    "vk.com",
    "odnoklassniki.ru",
    "renren.com",
    "weibo.com",
    "tumblr.com",
    "instagram.com",
    "last.fm",
    "netlog.com",
    "salamworld.com",
    "muslimup.com",
)

assert len(OSN_WATCHLIST) == 28
