"""URL category vocabulary.

Mirrors the McAfee TrustedSource categories that appear in the paper's
Fig. 3 and Table 9, plus the handful of extra categories the domain
universe needs.
"""

from __future__ import annotations


class Category:
    """String constants for URL categories (kept as plain strings so
    they serialize directly into frames and reports)."""

    CONTENT_SERVER = "Content Server"
    STREAMING_MEDIA = "Streaming Media"
    INSTANT_MESSAGING = "Instant Messaging"
    PORTAL_SITES = "Portal Sites"
    GENERAL_NEWS = "General News"
    SOCIAL_NETWORKING = "Social Networking"
    GAMES = "Games"
    EDUCATION_REFERENCE = "Education/Reference"
    ONLINE_SHOPPING = "Online Shopping"
    INTERNET_SERVICES = "Internet Services"
    ENTERTAINMENT = "Entertainment"
    FORUM = "Forum/Bulletin Boards"
    ANONYMIZER = "Anonymizer"
    SEARCH_ENGINES = "Search Engines"
    SOFTWARE_HARDWARE = "Software/Hardware"
    WEB_ADS = "Web Ads"
    PORNOGRAPHY = "Pornography"
    P2P = "P2P/File Sharing"
    TECHNICAL = "Technical Information"
    TRAVEL = "Travel"
    RELIGION = "Religion"
    NA = "NA"

    #: Categories eligible for the synthetic suspected-domain pool,
    #: with the domain counts of the paper's Table 9 as weights.
    SUSPECTED_POOL = (
        (GENERAL_NEWS, 62),
        (NA, 20),
        (FORUM, 8),
        (STREAMING_MEDIA, 6),
        (INTERNET_SERVICES, 6),
        (SOCIAL_NETWORKING, 6),
        (ENTERTAINMENT, 4),
        (EDUCATION_REFERENCE, 4),
        (ONLINE_SHOPPING, 2),
        (INSTANT_MESSAGING, 2),
    )
