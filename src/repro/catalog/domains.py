"""The domain/host universe the traffic generator samples from.

Every host the simulation knows about is a :class:`SiteSpec`: a
hostname with a traffic weight, a URL-template mix, a category, and
tags recording ground truth (e.g. ``suspected`` marks hosts whose
registered domain the Syrian policy blocks outright).

Weights are calibrated so that, after the policy engine runs, the
per-domain allowed/censored shares reproduce the paper's Table 4,
Table 8, Table 10 and Table 13 (see EXPERIMENTS.md for the mapping).
Weights are expressed in percent of browsing volume; the long-tail
builder tops the universe up to 100.

URL templates may contain ``{id}`` (random integer), ``{hex}`` (random
hex token) and ``{word}`` (random query word) placeholders, expanded at
generation time by :func:`expand_template`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.categories import Category as C
from repro.catalog.words import (
    QUERY_WORDS,
    SUSPECTED_STEMS,
    SUSPECTED_TLDS,
    TAIL_STEMS,
    TAIL_TLDS,
)


@dataclass(frozen=True, slots=True)
class UrlTemplate:
    """One URL shape a host serves, with a sampling weight."""

    path: str
    query: str = ""
    weight: float = 1.0
    content_type: str = "text/html"
    agent: str | None = None  # user-agent family override (None = browser)
    method: str = "GET"
    #: Marked templates (keyword-bearing URLs): the generator steers
    #: most of them to a small "risk pool" of users, reproducing the
    #: paper's finding that only 1.57 % of users are censored while
    #: being far more active than average (Fig. 4).
    risky: bool = False


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """A hostname with its traffic profile."""

    host: str
    category: str
    weight: float  # percent of browsing volume
    templates: tuple[UrlTemplate, ...] = (UrlTemplate("/"),)
    https_share: float = 0.0
    tags: frozenset = field(default_factory=frozenset)

    def tagged(self, tag: str) -> bool:
        """True when this site carries *tag*."""
        return tag in self.tags


T = UrlTemplate


def _tags(*names: str) -> frozenset:
    return frozenset(names)


# ---------------------------------------------------------------------------
# Template helpers shared across sites
# ---------------------------------------------------------------------------

_PAGE_ASSETS = (
    T("/", weight=3),
    T("/style/main.css", weight=1, content_type="text/css"),
    T("/js/app.js", weight=1, content_type="application/javascript"),
    T("/images/banner-{id}.jpg", weight=2, content_type="image/jpeg"),
)

# The Facebook JS SDK cross-domain channel file is ``xd_proxy.php``;
# social-plugin URLs embed it in the ``channel_url`` query parameter,
# which is what trips the Syrian ``proxy`` keyword filter (Section 6).
_XD_CHANNEL = "channel_url=http%3A%2F%2Fstatic.ak.facebook.com%2Fconnect%2Fxd_proxy.php%23cb%3D{hex}"

# Facebook social-plugin templates; weights follow the paper's Table 15
# (fraction of censored facebook.com traffic per plugin element).
FACEBOOK_PLUGIN_TEMPLATES: tuple[UrlTemplate, ...] = (
    T("/plugins/like.php", f"href=http%3A%2F%2F{{word}}.com%2F&{_XD_CHANNEL}", weight=43.04),
    T("/extern/login_status.php", f"api_key={{hex}}&extern=2&{_XD_CHANNEL}", weight=38.99),
    T("/plugins/likebox.php", f"id={{id}}&{_XD_CHANNEL}", weight=4.78),
    T("/plugins/send.php", f"href=http%3A%2F%2F{{word}}.com%2F&{_XD_CHANNEL}", weight=4.35),
    T("/plugins/comments.php", f"href=http%3A%2F%2F{{word}}.com%2F&{_XD_CHANNEL}", weight=3.36),
    T("/fbml/fbjs_ajax_proxy.php", "__a=1&signature={hex}", weight=2.64),
    T("/connect/canvas_proxy.php", "app_id={id}", weight=2.51),
    T("/ajax/proxy.php", "url=http%3A%2F%2Fapps.facebook.com%2F{word}", weight=0.10),
    T("/platform/page_proxy.php", "page_id={id}", weight=0.09),
    T("/plugins/facepile.php", f"href=http%3A%2F%2F{{word}}.com%2F&{_XD_CHANNEL}", weight=0.04),
)

_FACEBOOK_CLEAN_TEMPLATES: tuple[UrlTemplate, ...] = (
    T("/home.php", weight=18),
    T("/profile.php", "id={id}", weight=14),
    T("/photo.php", "fbid={id}&set=a.{id}", weight=10),
    T("/", weight=8),
    T("/ajax/chat/buddy_list.php", "user={id}&__a=1", weight=8),
    T("/ajax/presence/update.php", "__a=1", weight=6),
    T("/friends/", "filter=all", weight=4),
    T("/groups/{id}/", weight=3),
    T("/notes/{word}/{id}", weight=2),
    T("/ajax/typeahead.php", "value={word}&__a=1", weight=3),
)

# Share of facebook.com requests that hit plugin endpoints; calibrated
# so censored facebook traffic ≈ 8 % of facebook requests (Table 4:
# 1.62 M censored vs 17.8 M allowed).
FACEBOOK_PLUGIN_SHARE = 0.078


def _facebook_templates() -> tuple[UrlTemplate, ...]:
    clean_total = sum(t.weight for t in _FACEBOOK_CLEAN_TEMPLATES)
    plugin_total = sum(t.weight for t in FACEBOOK_PLUGIN_TEMPLATES)
    clean_scale = (1.0 - FACEBOOK_PLUGIN_SHARE) / clean_total
    plugin_scale = FACEBOOK_PLUGIN_SHARE / plugin_total
    scaled = [
        T(t.path, t.query, t.weight * clean_scale, t.content_type)
        for t in _FACEBOOK_CLEAN_TEMPLATES
    ]
    scaled += [
        T(t.path, t.query, t.weight * plugin_scale, t.content_type,
          risky=True)
        for t in FACEBOOK_PLUGIN_TEMPLATES
    ]
    return tuple(scaled)


def _mixed(clean: tuple[UrlTemplate, ...], marked: tuple[UrlTemplate, ...],
           marked_share: float) -> tuple[UrlTemplate, ...]:
    """Blend clean and keyword-marked templates at a target share."""
    clean_total = sum(t.weight for t in clean)
    marked_total = sum(t.weight for t in marked)
    out = [
        T(t.path, t.query, t.weight * (1 - marked_share) / clean_total,
          t.content_type, t.agent, t.method)
        for t in clean
    ]
    out += [
        T(t.path, t.query, t.weight * marked_share / marked_total,
          t.content_type, t.agent, t.method, risky=True)
        for t in marked
    ]
    return tuple(out)


# ---------------------------------------------------------------------------
# The named universe
# ---------------------------------------------------------------------------

def _named_sites() -> list[SiteSpec]:
    sites: list[SiteSpec] = []
    add = sites.append

    # --- search / portals -------------------------------------------------
    add(SiteSpec(
        "www.google.com", C.SEARCH_ENGINES, 5.9,
        _mixed(
            clean=(
                T("/search", "q={word}&hl=ar", weight=30),
                T("/complete/search", "q={word}&client=hp", weight=18),
                T("/", weight=10),
                T("/images", "q={word}", weight=8),
                T("/url", "sa=t&url=http%3A%2F%2F{word}.com", weight=6),
            ),
            # Google-toolbar autofill endpoint: the path contains the
            # blacklisted keyword ``proxy`` (Section 5.4's collateral
            # damage example, 4.85 % of censored requests in D_sample).
            marked=(
                T("/tbproxy/af/query", "client=navclient-auto&q={word}",
                  agent="google-toolbar"),
            ),
            marked_share=0.0078,
        ),
        https_share=0.02,
    ))
    add(SiteSpec("google.com", C.SEARCH_ENGINES, 0.7,
                 (T("/", weight=1), T("/search", "q={word}", weight=2))))
    add(SiteSpec("news.google.com", C.GENERAL_NEWS, 0.35,
                 (T("/news", "ned=ar_me", weight=1),)))
    add(SiteSpec("maps.google.com", C.SEARCH_ENGINES, 0.35,
                 (T("/maps", "q={word}", weight=1),)))
    add(SiteSpec("www.gstatic.com", C.CONTENT_SERVER, 3.31, (
        T("/images", "q=tbn:{hex}", weight=5, content_type="image/jpeg"),
        T("/hp/{hex}.png", weight=3, content_type="image/png"),
        T("/og/{hex}.js", weight=2, content_type="application/javascript"),
    )))
    add(SiteSpec("www.msn.com", C.PORTAL_SITES, 1.28,
                 (T("/", weight=3), T("/ar-sy/", weight=2),
                  T("/news/{word}-{id}", weight=2))))
    add(SiteSpec("arabia.msn.com", C.PORTAL_SITES, 0.30,
                 (T("/", weight=1), T("/news/{id}", weight=1))))
    add(SiteSpec("www.yahoo.com", C.PORTAL_SITES, 0.85,
                 (T("/", weight=3), T("/news/{word}-{id}.html", weight=2))))
    add(SiteSpec(
        "mail.yahoo.com", C.PORTAL_SITES, 0.45,
        _mixed(
            clean=(T("/mc/welcome", "ymv=1", weight=3),
                   T("/dc/launch", ".rand={id}", weight=2)),
            # Yahoo webmail attachment fetcher carries a ``.proxy``
            # parameter — keyword collateral damage.
            marked=(T("/dc/launch", ".rand={id}&.proxy=ws", weight=1),),
            marked_share=0.11,
        ),
    ))

    # --- adult / entertainment -------------------------------------------
    add(SiteSpec("www.xvideos.com", C.PORNOGRAPHY, 3.35, (
        T("/video{id}/{word}_{word}", weight=5),
        T("/thumbs/{hex}.jpg", weight=4, content_type="image/jpeg"),
        T("/", weight=1),
    )))

    # --- facebook ----------------------------------------------------------
    add(SiteSpec("www.facebook.com", C.SOCIAL_NETWORKING, 2.50,
                 _facebook_templates(), https_share=0.010,
                 tags=_tags("osn", "facebook")))
    add(SiteSpec("ar-ar.facebook.com", C.SOCIAL_NETWORKING, 0.27,
                 _facebook_templates(), tags=_tags("osn", "facebook")))
    add(SiteSpec("profile.ak.fbcdn.net", C.CONTENT_SERVER, 1.10, (
        T("/hprofile-ak-snc4/{id}_{id}_q.jpg", weight=1, content_type="image/jpeg"),
    )))
    add(SiteSpec("photos-a.ak.fbcdn.net", C.CONTENT_SERVER, 0.69, (
        T("/hphotos-ak-snc6/{id}_{id}_n.jpg", weight=1, content_type="image/jpeg"),
    )))
    add(SiteSpec(
        "static.ak.fbcdn.net", C.CONTENT_SERVER, 0.60,
        _mixed(
            clean=(T("/rsrc.php/v1/y{hex}/r/{hex}.css", weight=2, content_type="text/css"),
                   T("/rsrc.php/v1/z{hex}/r/{hex}.js", weight=2,
                     content_type="application/javascript")),
            # The JS SDK channel file itself lives on the static CDN.
            marked=(T("/connect/xd_proxy.php", "version=3", weight=1),),
            marked_share=0.058,
        ),
    ))

    # --- microsoft / updates ----------------------------------------------
    add(SiteSpec("www.microsoft.com", C.SOFTWARE_HARDWARE, 1.60,
                 (T("/", weight=1), T("/downloads/{word}.aspx", weight=2),
                  T("/isapi/redir.dll", "prd=ie&pver=6", weight=1))))
    add(SiteSpec("update.microsoft.com", C.SOFTWARE_HARDWARE, 0.79, (
        T("/windowsupdate/v6/default.aspx", weight=1,
          agent="windows-update"),
    )))
    add(SiteSpec("www.windowsupdate.com", C.SOFTWARE_HARDWARE, 1.40, (
        T("/msdownload/update/v3/static/trustedr/en/{hex}.crt",
          weight=2, agent="windows-update", content_type="application/octet-stream"),
        T("/v9/windowsupdate/redir/muv4wuredir.cab", "{id}", weight=1,
          agent="windows-update", content_type="application/octet-stream"),
    )))
    add(SiteSpec("download.windowsupdate.com", C.SOFTWARE_HARDWARE, 0.81, (
        T("/msdownload/update/software/secu/2011/07/{word}_{hex}.exe",
          weight=1, agent="bits", content_type="application/octet-stream"),
    )))

    # --- analytics / ads ----------------------------------------------------
    add(SiteSpec("www.google-analytics.com", C.WEB_ADS, 1.78, (
        T("/__utm.gif", "utmwv=5.1.5&utmn={id}&utmhn={word}.com",
          weight=4, content_type="image/gif"),
        T("/ga.js", weight=2, content_type="application/javascript"),
    )))
    add(SiteSpec("ad.doubleclick.net", C.WEB_ADS, 1.00, (
        T("/adj/{word}.{word}/;sz=728x90;ord={id}", weight=1,
          content_type="application/javascript"),
    )))
    add(SiteSpec("googleads.g.doubleclick.net", C.WEB_ADS, 0.61, (
        T("/pagead/ads", "client=ca-pub-{id}&format=728x90", weight=1),
    )))
    add(SiteSpec(
        "www.trafficholder.com", C.WEB_ADS, 0.040,
        _mixed(
            clean=(T("/", weight=1),),
            # Traffic-broker redirector whose query names its proxy
            # pool — keyword collateral damage (top censored domain in
            # the 6–8 am window of Table 5).
            marked=(T("/in.php", "wm={id}&cat={word}&target=proxy", weight=1),),
            marked_share=0.60,
        ),
    ))
    add(SiteSpec(
        "apps.conduitapps.com", C.WEB_ADS, 0.020,
        _mixed(
            clean=(T("/api/manifest", "ctid=CT{id}", weight=1),),
            marked=(T("/toolbar/proxy", "ctid=CT{id}&cmd=gadget", weight=1),),
            marked_share=0.40,
        ),
    ))

    # --- IM / voip (heavily censored) --------------------------------------
    add(SiteSpec("www.skype.com", C.INSTANT_MESSAGING, 0.026, (
        T("/", weight=2), T("/intl/ar/home", weight=1),
        T("/go/downloading", "source=lightinstaller", weight=2),
    ), https_share=0.05, tags=_tags("suspected", "im")))
    add(SiteSpec("ui.skype.com", C.INSTANT_MESSAGING, 0.023, (
        T("/ui/0/5.3.0.120/en/getlatestversion", "ver=5.3.0.120&notify=1",
          weight=3, agent="skype-updater"),
        T("/ui/0/5.3.0.120/en/go/help.faq.installer", weight=1,
          agent="skype-updater"),
    ), tags=_tags("suspected", "im", "updater")))
    add(SiteSpec("download.skype.com", C.INSTANT_MESSAGING, 0.010, (
        T("/msi/SkypeSetup_5.3.0.120.msi", weight=1, agent="skype-updater",
          content_type="application/octet-stream"),
    ), tags=_tags("suspected", "im")))
    add(SiteSpec("jumblo.com", C.INSTANT_MESSAGING, 0.0031, (
        T("/", weight=1), T("/download/jumblo.exe", weight=1,
                            content_type="application/octet-stream"),
        T("/rates.php", "country={word}", weight=1),
    ), tags=_tags("suspected", "im")))

    # --- live.com: mail/login allowed, messenger gateway blocked -----------
    add(SiteSpec("mail.live.com", C.PORTAL_SITES, 0.75,
                 (T("/default.aspx", "wa=wsignin1.0", weight=2),
                  T("/mail/inboxlight.aspx", "n={id}", weight=3))))
    add(SiteSpec("login.live.com", C.PORTAL_SITES, 0.42,
                 (T("/login.srf", "wa=wsignin1.0&ct={id}", weight=1),),
                 https_share=0.10))
    add(SiteSpec("messenger.live.com", C.INSTANT_MESSAGING, 0.060, (
        T("/", weight=2),
        T("/gateway/gateway.dll", "Action=poll&SessionID={id}", weight=5,
          agent="msn"),
    ), tags=_tags("blocked-host", "im")))
    add(SiteSpec("ceipmsn.com", C.INTERNET_SERVICES, 0.080,
                 _mixed(
                     clean=(T("/FSD/1/{hex}", "os=winxp", weight=1, agent="msn"),),
                     # MSN customer-experience pings report the client's
                     # proxy configuration in the query string.
                     marked=(T("/FSD/1/{hex}", "os=winxp&conn=proxy", weight=1,
                               agent="msn"),),
                     marked_share=0.225,
                 )))

    # --- streaming ----------------------------------------------------------
    add(SiteSpec("www.metacafe.com", C.STREAMING_MEDIA, 0.171, (
        T("/watch/{id}/{word}_{word}/", weight=5),
        T("/thumb/{id}.jpg", weight=3, content_type="image/jpeg"),
        T("/", weight=1),
    ), tags=_tags("suspected", "streaming")))
    add(SiteSpec("www.youtube.com", C.STREAMING_MEDIA, 1.20, (
        T("/watch", "v={hex}", weight=5),
        T("/results", "search_query={word}", weight=2),
        T("/", weight=1),
    )))
    add(SiteSpec("i.ytimg.com", C.CONTENT_SERVER, 0.30, (
        T("/vi/{hex}/default.jpg", weight=1, content_type="image/jpeg"),
    )))
    add(SiteSpec("upload.youtube.com", C.STREAMING_MEDIA, 0.0018, (
        T("/", weight=1),
        T("/my_videos_upload", weight=2),
    ), tags=_tags("redirect-host")))
    add(SiteSpec("www.dailymotion.com", C.STREAMING_MEDIA, 0.015, (
        T("/video/{hex}_{word}-{word}", weight=3), T("/", weight=1),
    ), tags=_tags("suspected", "streaming")))

    # --- reference / wikis ---------------------------------------------------
    add(SiteSpec("upload.wikimedia.org", C.EDUCATION_REFERENCE, 0.030, (
        T("/wikipedia/commons/thumb/{hex}/{word}.jpg", weight=1,
          content_type="image/jpeg"),
    ), tags=_tags("suspected")))
    add(SiteSpec("commons.wikimedia.org", C.EDUCATION_REFERENCE, 0.011, (
        T("/wiki/File:{word}_{id}.jpg", weight=1),
    ), tags=_tags("suspected")))
    add(SiteSpec("ar.wikipedia.org", C.EDUCATION_REFERENCE, 0.55,
                 (T("/wiki/{word}", weight=4), T("/", weight=1))))
    add(SiteSpec("en.wikipedia.org", C.EDUCATION_REFERENCE, 0.30,
                 (T("/wiki/{word}", weight=1),)))

    # --- games ---------------------------------------------------------------
    add(SiteSpec(
        "zynga.com", C.GAMES, 0.10,
        _mixed(
            clean=(T("/", weight=1), T("/games/{word}", weight=2)),
            marked=(T("/poker/proxy/xd_receiver.htm", weight=1),),
            marked_share=0.05,
        ),
    ))
    add(SiteSpec(
        "fb-0.poker.zynga.com", C.GAMES, 0.30,
        _mixed(
            clean=(T("/poker/assets/{hex}.swf", weight=1,
                     content_type="application/x-shockwave-flash"),),
            # Zynga's Facebook-canvas games relay API calls through an
            # ``ajax/proxy`` endpoint — keyword collateral damage.
            marked=(T("/poker/ajax/proxy.php", "method=getTable&uid={id}",
                      weight=1),),
            marked_share=0.155,
        ),
    ))

    # --- news (allowed and suspected) ---------------------------------------
    add(SiteSpec("www.aljazeera.net", C.GENERAL_NEWS, 0.14,
                 (T("/news/{word}/{id}", weight=3), T("/", weight=1))))
    add(SiteSpec("sharek.aljazeera.net", C.GENERAL_NEWS, 0.0008,
                 (T("/", weight=1), T("/upload", weight=1)),
                 tags=_tags("redirect-host")))
    add(SiteSpec("www.mbc.net", C.ENTERTAINMENT, 0.020,
                 (T("/", weight=1), T("/programs/{word}", weight=2))))
    add(SiteSpec("competition.mbc.net", C.ENTERTAINMENT, 0.0009,
                 (T("/", weight=1), T("/vote.php", "id={id}", weight=1)),
                 tags=_tags("redirect-host")))
    add(SiteSpec(
        "www.bbc.co.uk", C.GENERAL_NEWS, 0.10,
        _mixed(
            clean=(T("/news/world-middle-east-{id}", weight=3),
                   T("/arabic/", weight=2)),
            # Coverage URLs naming Israel trip the ``israel`` keyword.
            marked=(T("/news/world-middle-east-{id}/israel-{word}", weight=1),),
            marked_share=0.025,
        ),
    ))
    add(SiteSpec("www.aawsat.com", C.GENERAL_NEWS, 0.0069, (
        T("/details.asp", "section={id}&article={id}", weight=3),
        T("/", weight=1),
    ), tags=_tags("suspected", "news")))
    add(SiteSpec("all4syria.info", C.GENERAL_NEWS, 0.0040,
                 (T("/web/archives/{id}", weight=2), T("/", weight=1)),
                 tags=_tags("suspected", "news")))
    add(SiteSpec("www.islammemo.cc", C.GENERAL_NEWS, 0.0020,
                 (T("/akhbar/arab-news/{id}", weight=1),),
                 tags=_tags("suspected", "news")))
    add(SiteSpec("www.alquds.co.uk", C.GENERAL_NEWS, 0.0030,
                 (T("/index.asp", "fname={hex}", weight=1),),
                 tags=_tags("suspected", "news")))
    add(SiteSpec("www.free-syria.com", C.GENERAL_NEWS, 0.0010,
                 (T("/loadarticle.php", "id={id}", weight=1),),
                 tags=_tags("suspected", "news")))
    add(SiteSpec("new-syria.com", C.GENERAL_NEWS, 0.0010,
                 (T("/", weight=2), T("/forum/{id}", weight=1)),
                 tags=_tags("suspected", "news")))
    add(SiteSpec("www.panet.co.il", C.GENERAL_NEWS, 0.0080,
                 (T("/online/articles/{id}", weight=3), T("/", weight=1)),
                 tags=_tags("il")))
    add(SiteSpec("www.ynet.co.il", C.GENERAL_NEWS, 0.0040,
                 (T("/articles/0,7340,L-{id},00.html", weight=1),),
                 tags=_tags("il")))
    add(SiteSpec("www.haaretz.co.il", C.GENERAL_NEWS, 0.0020,
                 (T("/news/{word}/{id}", weight=1),), tags=_tags("il")))
    add(SiteSpec("www.israelnationalnews.com", C.GENERAL_NEWS, 0.0040,
                 (T("/News/News.aspx/{id}", weight=1),),
                 tags=_tags("keyword-host")))

    # --- syrian / regional ----------------------------------------------------
    add(SiteSpec(
        "www.mtn.com.sy", C.INTERNET_SERVICES, 0.050,
        _mixed(
            clean=(T("/", weight=2), T("/portal/news.php", "id={id}", weight=2)),
            # The operator's WAP gateway routes handset traffic through
            # an explicit ``proxy`` path.
            marked=(T("/wap/proxy/portal", "msisdn={id}", weight=1),),
            marked_share=0.04,
        ),
    ))
    add(SiteSpec("www.syriatel.sy", C.INTERNET_SERVICES, 0.030,
                 (T("/", weight=1), T("/offers/{id}", weight=1))))
    add(SiteSpec("www.sana.sy", C.GENERAL_NEWS, 0.020,
                 (T("/ara/{id}/2011/08/{id}.htm", weight=1),)))

    # --- shopping / misc suspected ---------------------------------------------
    add(SiteSpec("www.amazon.com", C.ONLINE_SHOPPING, 0.0084, (
        T("/dp/B{hex}", weight=3), T("/s", "k={word}", weight=2),
        T("/", weight=1),
    ), tags=_tags("suspected")))
    add(SiteSpec("www.jeddahbikers.com", C.FORUM, 0.0028,
                 (T("/vb/showthread.php", "t={id}", weight=3),
                  T("/vb/", weight=1)),
                 tags=_tags("suspected", "forum")))
    add(SiteSpec("www.islamway.com", C.RELIGION, 0.0019,
                 (T("/", weight=1), T("/lesson.php", "id={id}", weight=2)),
                 tags=_tags("suspected")))

    # --- social networks (Section 6) --------------------------------------------
    add(SiteSpec("twitter.com", C.SOCIAL_NETWORKING, 0.375,
                 _mixed(
                     clean=(T("/", weight=2), T("/{word}", weight=3),
                            T("/statuses/{id}", weight=2)),
                     marked=(T("/{word}", "utm_source=proxy", weight=1),),
                     marked_share=0.00006,
                 ),
                 tags=_tags("osn")))
    add(SiteSpec("www.linkedin.com", C.SOCIAL_NETWORKING, 0.0257,
                 _mixed(
                     clean=(T("/in/{word}{id}", weight=2), T("/", weight=1)),
                     marked=(T("/analytics/", "type=proxy&id={id}", weight=1),),
                     marked_share=0.037,
                 ),
                 tags=_tags("osn")))
    add(SiteSpec("badoo.com", C.SOCIAL_NETWORKING, 0.0019,
                 (T("/", weight=1), T("/{id}/", weight=2),
                  T("/signup/", weight=1)),
                 tags=_tags("suspected", "osn")))
    add(SiteSpec("www.netlog.com", C.SOCIAL_NETWORKING, 0.0012,
                 (T("/go/explore", weight=2), T("/{word}{id}", weight=1)),
                 tags=_tags("suspected", "osn")))
    add(SiteSpec("www.hi5.com", C.SOCIAL_NETWORKING, 0.0285,
                 _mixed(
                     clean=(T("/friend/p{id}--profile--html", weight=3),
                            T("/", weight=1)),
                     marked=(T("/friend/games/proxy.html", "gid={id}", weight=1),),
                     marked_share=0.014,
                 ),
                 tags=_tags("osn")))
    add(SiteSpec("www.skyrock.com", C.SOCIAL_NETWORKING, 0.00145,
                 _mixed(
                     clean=(T("/blog/", weight=1),),
                     marked=(T("/common/proxy/iframe.php", "u={hex}", weight=1),),
                     marked_share=0.30,
                 ),
                 tags=_tags("osn")))
    add(SiteSpec("www.flickr.com", C.SOCIAL_NETWORKING, 0.051,
                 (T("/photos/{word}{id}/", weight=3), T("/", weight=1)),
                 tags=_tags("osn")))
    add(SiteSpec("www.ning.com", C.SOCIAL_NETWORKING, 0.0056,
                 (T("/", weight=1), T("/groups/{word}", weight=1)),
                 tags=_tags("osn")))
    add(SiteSpec("www.meetup.com", C.SOCIAL_NETWORKING, 0.00002,
                 (T("/{word}-{word}/", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.myspace.com", C.SOCIAL_NETWORKING, 0.030,
                 (T("/{word}{id}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.tumblr.com", C.SOCIAL_NETWORKING, 0.050,
                 (T("/tagged/{word}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("instagram.com", C.SOCIAL_NETWORKING, 0.020,
                 (T("/p/{hex}/", weight=1),), tags=_tags("osn")))
    add(SiteSpec("pinterest.com", C.SOCIAL_NETWORKING, 0.020,
                 (T("/pin/{id}/", weight=1),), tags=_tags("osn")))
    add(SiteSpec("vk.com", C.SOCIAL_NETWORKING, 0.010,
                 (T("/id{id}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.last.fm", C.SOCIAL_NETWORKING, 0.010,
                 (T("/music/{word}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.deviantart.com", C.SOCIAL_NETWORKING, 0.020,
                 (T("/art/{word}-{id}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.tagged.com", C.SOCIAL_NETWORKING, 0.010,
                 (T("/profile/{word}{id}", weight=1),), tags=_tags("osn")))
    add(SiteSpec("plus.google.com", C.SOCIAL_NETWORKING, 0.015,
                 (T("/{id}/posts", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.orkut.com", C.SOCIAL_NETWORKING, 0.005,
                 (T("/Main", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.salamworld.com", C.SOCIAL_NETWORKING, 0.0005,
                 (T("/", weight=1),), tags=_tags("osn")))
    add(SiteSpec("www.muslimup.com", C.SOCIAL_NETWORKING, 0.0005,
                 (T("/", weight=1),), tags=_tags("osn")))

    # --- anti-censorship vendors (keyword-named hosts) -------------------------
    add(SiteSpec("hotspotshield.com", C.ANONYMIZER, 0.0045, (
        T("/", weight=1), T("/download/", weight=2),
    ), tags=_tags("keyword-host", "anonymizer")))
    add(SiteSpec("www.hotsptshld.com", C.CONTENT_SERVER, 0.0168, (
        # Hotspot Shield's update CDN: paths name the product, tripping
        # the ``hotspotshield`` keyword on every request.
        T("/hotspotshield/update", "v=1.57&os=win", weight=3,
          agent="java"),
        T("/hotspotshield/dl/hss-157-install.exe", weight=1,
          content_type="application/octet-stream", agent="java"),
    ), tags=_tags("anonymizer")))
    add(SiteSpec("www.ultrareach.com", C.ANONYMIZER, 0.0058, (
        T("/", weight=1), T("/download_en.htm", weight=1),
    ), tags=_tags("keyword-host", "anonymizer")))
    add(SiteSpec("ultrasurf.us", C.ANONYMIZER, 0.0038, (
        T("/", weight=1), T("/download/u.zip", weight=1,
                            content_type="application/zip"),
    ), tags=_tags("keyword-host", "anonymizer")))
    add(SiteSpec("www.anchorfree.com", C.ANONYMIZER, 0.0030,
                 (T("/", weight=1),), tags=_tags("anonymizer")))
    add(SiteSpec("www.dongtaiwang.com", C.ANONYMIZER, 0.0020,
                 (T("/loc/download.php", "v=en", weight=1),),
                 tags=_tags("anonymizer")))

    # --- software portals ------------------------------------------------------
    add(SiteSpec(
        "www.arabsoftware.com", C.SOFTWARE_HARDWARE, 0.050,
        _mixed(
            clean=(T("/", weight=1), T("/download/{word}-setup.exe", weight=2,
                                       content_type="application/octet-stream"),
                   T("/category/{word}", weight=1)),
            # Download pages for circumvention tools carry the tool
            # names — keyword evidence outside the blocked domains.
            marked=(T("/download/ultrasurf-10.52.zip", weight=1.2,
                      content_type="application/zip"),
                    T("/download/ultrareach-wujie.zip", weight=0.8,
                      content_type="application/zip"),
                    T("/search", "q=hotspotshield", weight=0.6),
                    T("/tag/proxy-tools", weight=0.5)),
            marked_share=0.25,
        ),
    ))

    # --- CDNs ---------------------------------------------------------------
    add(SiteSpec(
        "d24n15hnbwhuhn.cloudfront.net", C.CONTENT_SERVER, 0.30,
        _mixed(
            clean=(T("/assets/{hex}.js", weight=3,
                     content_type="application/javascript"),
                   T("/img/{hex}.png", weight=2, content_type="image/png")),
            marked=(T("/widgets/proxy-frame.html", "origin={word}.com", weight=1),),
            marked_share=0.03,
        ),
    ))
    add(SiteSpec(
        "lh3.googleusercontent.com", C.CONTENT_SERVER, 0.35,
        _mixed(
            clean=(T("/{hex}/{hex}/s512/{word}.jpg", weight=1,
                     content_type="image/jpeg"),),
            marked=(T("/gadgets/proxy", "url=http%3A%2F%2F{word}.com&container=ig",
                      weight=1),),
            marked_share=0.02,
        ),
    ))
    add(SiteSpec("static.akamaihd.net", C.CONTENT_SERVER, 0.25, (
        T("/media/{hex}.flv", weight=1, content_type="video/x-flv"),
    )))
    add(SiteSpec("webcache.googleusercontent.com", C.SEARCH_ENGINES, 0.00065, (
        # Google cache (Section 7.4): cached copies of otherwise
        # censored pages are fetched through Google's own host.
        T("/search", "q=cache:{hex}:www.panet.co.il/online/articles/{id}", weight=3),
        T("/search", "q=cache:{hex}:aawsat.com/details.asp", weight=2),
        T("/search", "q=cache:{hex}:www.facebook.com/Syrian.Revolution", weight=1),
        T("/search", "q=cache:{hex}:www.free-syria.com/loadarticle.php", weight=1),
        T("/search", "q=cache:{hex}:{word}.com/{word}", weight=12),
        # The rare hits that still trip the keyword filter:
        T("/search", "q=cache:{hex}:www.israel-{word}.com/{word}", weight=0.05),
    ), tags=_tags("google-cache")))

    return sites


# ---------------------------------------------------------------------------
# Synthetic populations
# ---------------------------------------------------------------------------

def synthetic_suspected_sites(count: int = 84, seed: int = 20110803) -> list[SiteSpec]:
    """Synthetic always-blocked domains completing the 105-domain list.

    The paper recovers 105 domains for which no request is ever allowed
    (Section 5.4); we name ~20 of them explicitly above and fill the
    rest with synthetic news/forum-flavoured domains, categorized with
    the Table 9 mixture.
    """
    rng = np.random.default_rng(seed)
    pool: list[str] = []
    for category, weight in C.SUSPECTED_POOL:
        pool.extend([category] * weight)
    sites = []
    for i in range(count):
        stem = SUSPECTED_STEMS[i % len(SUSPECTED_STEMS)]
        tld = SUSPECTED_TLDS[(i // len(SUSPECTED_STEMS)) % len(SUSPECTED_TLDS)]
        host = f"www.{stem}{i}.{tld}"
        category = pool[int(rng.integers(len(pool)))]
        # Zipf-flavoured small weights; the whole synthetic pool adds
        # up to ~0.045 % of traffic, matching the long tail of the
        # paper's Table 9 (news/forum/NA suspected domains).
        weight = 0.0024 / (1 + i * 0.12)
        sites.append(SiteSpec(
            host, category, weight,
            (T("/", weight=1), T("/news/{id}", weight=2),
             T("/article.php", "id={id}", weight=1)),
            tags=_tags("suspected", "synthetic"),
        ))
    return sites


def synthetic_tail_sites(count: int = 1200, total_weight: float = 48.0,
                         seed: int = 42) -> list[SiteSpec]:
    """The long-tail domain population (never censored).

    Zipf-distributed weights reproduce the power-law request-per-domain
    distribution of Fig. 2.
    """
    rng = np.random.default_rng(seed)
    # Shifted Zipf: the shift keeps the heaviest tail domain well below
    # the named top sites (google et al. must stay on top of Table 4).
    ranks = np.arange(1, count + 1, dtype=float) + 6.0
    weights = 1.0 / ranks**1.1
    weights *= total_weight / weights.sum()
    categories = (
        C.GENERAL_NEWS, C.ENTERTAINMENT, C.ONLINE_SHOPPING, C.FORUM,
        C.EDUCATION_REFERENCE, C.INTERNET_SERVICES, C.TECHNICAL,
        C.TRAVEL, C.GAMES, C.PORTAL_SITES, C.STREAMING_MEDIA,
    )
    sites = []
    for i in range(count):
        stem = TAIL_STEMS[i % len(TAIL_STEMS)]
        tld = TAIL_TLDS[(i // len(TAIL_STEMS)) % len(TAIL_TLDS)]
        host = f"www.{stem}{i}.{tld}"
        category = categories[int(rng.integers(len(categories)))]
        sites.append(SiteSpec(
            host, category, float(weights[i]),
            (T("/", weight=3), T("/page/{id}.html", weight=3),
             T("/img/{hex}.jpg", weight=2, content_type="image/jpeg"),
             T("/details.asp", "section={id}&article={id}", weight=1),
             T("/search", "q={word}", weight=1)),
            tags=_tags("tail"),
        ))
    return sites


@dataclass(frozen=True)
class DomainSpec:
    """Aggregate view of a registered domain (derived from sites)."""

    domain: str
    category: str
    weight: float
    hosts: tuple[str, ...]
    tags: frozenset


def build_domain_universe(
    tail_count: int = 1200,
    suspected_count: int = 84,
    include_anonymizers: bool = True,
) -> list[SiteSpec]:
    """Assemble the complete site universe.

    The result is deterministic for given parameters; the traffic
    generator and the categorizer both consume it.  The long tail
    absorbs exactly the weight the calibrated sites leave, so each
    named site's weight IS its percentage of browsing volume.
    """
    sites = _named_sites()
    sites.extend(synthetic_suspected_sites(suspected_count))
    if include_anonymizers:
        from repro.catalog.anonymizers import anonymizer_sites

        sites.extend(anonymizer_sites())
    calibrated_weight = sum(site.weight for site in sites)
    tail_weight = max(20.0, 100.0 - calibrated_weight)
    sites.extend(synthetic_tail_sites(tail_count, total_weight=tail_weight))
    hosts = [site.host for site in sites]
    if len(hosts) != len(set(hosts)):
        seen: set[str] = set()
        dupes = {h for h in hosts if h in seen or seen.add(h)}
        raise ValueError(f"duplicate hosts in universe: {sorted(dupes)[:5]}")
    return sites


def expand_template(template: UrlTemplate, rng: np.random.Generator) -> tuple[str, str]:
    """Fill ``{id}``/``{hex}``/``{word}`` placeholders in a template.

    Returns the concrete (path, query) pair.
    """
    def fill(text: str) -> str:
        while "{id}" in text:
            text = text.replace("{id}", str(int(rng.integers(10**4, 10**9))), 1)
        while "{hex}" in text:
            text = text.replace("{hex}", format(int(rng.integers(16**8)), "08x"), 1)
        while "{word}" in text:
            text = text.replace("{word}", QUERY_WORDS[int(rng.integers(len(QUERY_WORDS)))], 1)
        return text

    return fill(template.path), fill(template.query)
