"""Facebook page inventory (Section 6, Table 14 of the paper).

The Syrian policy singles out a handful of political Facebook pages
through a *custom category* ("Blocked sites"): requests matching a very
narrow set of path+query combinations are categorized into it and
redirected (``policy_redirect``).  Requests to the same pages with
extra query parameters (AJAX pipelines etc.) escape the category and
are allowed — the paper highlights this narrowness explicitly.

``BLOCKED_PAGES`` carries the per-page visit mix calibrated from the
paper's censored/allowed counts; ``ALLOWED_PAGES`` are the related
pages the paper verified were *not* categorized.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FacebookPage:
    """One page plus its visit profile.

    ``weight`` is proportional to total visits; ``blocked_share`` is the
    fraction of visits using a query form the custom category matches.
    """

    name: str
    weight: float
    blocked_share: float


def _page(name: str, censored: int, allowed: int) -> FacebookPage:
    total = censored + allowed
    share = censored / total if total else 1.0
    return FacebookPage(name, float(max(total, 1)), share)


# Calibrated from Table 14 (censored, allowed counts in D_full).
BLOCKED_PAGES: tuple[FacebookPage, ...] = (
    _page("Syrian.Revolution", 1461, 891),
    _page("syria.news.F.N.N", 191, 165),
    _page("ShaamNews", 114, 3944),
    _page("fffm14", 42, 18),
    _page("barada.channel", 25, 9),
    _page("DaysOfRage", 19, 2),
    _page("Syrian.R.V", 10, 6),
    _page("YouthFreeSyria", 6, 0),
    _page("sooryoon", 3, 0),
    _page("Freedom.Of.Syria", 3, 0),
    _page("SyrianDayOfRage", 1, 0),
    # Lower-case variant: a distinct page name in the logs, almost all
    # of whose requests were served from cache in the leak.
    FacebookPage("Syrian.revolution", 25.0, 1.0),
)

# Pages the paper confirms are NOT in the custom category.
ALLOWED_PAGES: tuple[FacebookPage, ...] = (
    FacebookPage("Syrian.Revolution.Army", 60.0, 0.0),
    FacebookPage("Syrian.Revolution.Assad", 45.0, 0.0),
    FacebookPage("Syrian.Revolution.Caricature", 30.0, 0.0),
    FacebookPage("ShaamNewsNetwork", 150.0, 0.0),
)

ALL_PAGES: tuple[FacebookPage, ...] = BLOCKED_PAGES + ALLOWED_PAGES

#: Page names targeted by the custom category (policy ground truth).
CUSTOM_CATEGORY_PAGES: frozenset[str] = frozenset(
    page.name for page in BLOCKED_PAGES
)

#: Query forms the custom category matches.  Anything else — e.g. the
#: ``ajaxpipe`` form the paper quotes — escapes categorization.
BLOCKED_QUERY_FORMS: tuple[str, ...] = ("", "ref=ts", "sk=wall")

#: A query form that visits the same page but escapes the category.
ESCAPING_QUERY_FORM = "ref=ts&__a=11&ajaxpipe=1&quickling[version]=414343%3B0"

#: Share of facebook.com traffic that is page visits (the page-visit
#: volume in Table 14 is a few thousand requests against 19.4 M
#: facebook requests in D_full).
PAGE_VISIT_SHARE = 0.00045

#: Hosts on which page visits happen, with sampling weights.
PAGE_HOSTS: tuple[tuple[str, float], ...] = (
    ("www.facebook.com", 0.85),
    ("ar-ar.facebook.com", 0.15),
)
