"""Streaming (single-pass, constant-memory) log analysis.

The real dataset was 600 GB — far beyond what loads into a frame.
This module provides accumulator-style analyses that consume records
one at a time: the Table 3 breakdown, per-domain Table 4 counters, and
per-day volumes, with byte-bounded memory (a counter per distinct
domain/exception, nothing per record).

Use with the streaming reader::

    acc = StreamingAnalysis()
    for path in paths:
        acc.consume(read_log(path, lenient=True))
    print(acc.breakdown().censored_pct)
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.analysis.common import percent
from repro.frame.batch import RecordBatch
from repro.logmodel.classify import CENSOR_EXCEPTIONS, NO_EXCEPTION, censor_mask
from repro.logmodel.record import LogRecord
from repro.metrics import current_registry
from repro.net.url import registered_domain, registered_domains


@dataclass(frozen=True)
class StreamingBreakdown:
    """Table 3 computed in one pass."""

    total: int
    allowed: int
    censored: int
    errors: int
    proxied: int

    @property
    def allowed_pct(self) -> float:
        """Allowed share (%)."""
        return percent(self.allowed, self.total)

    @property
    def censored_pct(self) -> float:
        """Censored share (%)."""
        return percent(self.censored, self.total)


class StreamingAnalysis:
    """Single-pass accumulator over log records.

    Tracks the headline classification counts, exception mix,
    per-domain allowed/censored counters (Table 4), and per-day
    volumes (Fig. 5's day-level view).  Memory is proportional to the
    number of *distinct* domains/exceptions/days, never to the record
    count.
    """

    def __init__(self) -> None:
        self.total = 0
        self.allowed = 0
        self.censored = 0
        self.errors = 0
        self.proxied = 0
        self.exceptions: Counter[str] = Counter()
        self.allowed_domains: Counter[str] = Counter()
        self.censored_domains: Counter[str] = Counter()
        self.day_volumes: Counter[int] = Counter()

    def add(self, record: LogRecord) -> None:
        """Fold one record into the accumulators."""
        self.total += 1
        self.day_volumes[record.epoch // 86400] += 1
        if record.sc_filter_result == "PROXIED":
            self.proxied += 1
        exception = record.x_exception_id
        domain = registered_domain(record.cs_host)
        if exception == NO_EXCEPTION:
            self.allowed += 1
            self.allowed_domains[domain] += 1
            return
        self.exceptions[exception] += 1
        if exception in CENSOR_EXCEPTIONS:
            self.censored += 1
            self.censored_domains[domain] += 1
        else:
            self.errors += 1

    def add_batch(self, batch: RecordBatch) -> None:
        """Fold one column batch in — state-identical to calling
        :meth:`add` on every record of the batch, in order.

        Counter updates run once per *distinct* key via ``np.unique``,
        and new keys are inserted in first-seen stream order (the
        ``return_index`` bookkeeping in :func:`_first_seen_counts`):
        ``Counter.most_common`` breaks ties by insertion order, so the
        reported top-domain tables — and therefore CLI output bytes —
        must not depend on whether records arrived singly or batched.
        """
        count = len(batch)
        if not count:
            return
        self.total += count
        for day, volume in _first_seen_counts(batch.col("epoch") // 86400):
            self.day_volumes[day] += volume
        self.proxied += int(
            (batch.col("sc_filter_result") == "PROXIED").sum()
        )
        exceptions = batch.col("x_exception_id")
        domains = registered_domains(batch.col("cs_host"))
        allowed = exceptions == NO_EXCEPTION
        self.allowed += int(allowed.sum())
        for domain, volume in _first_seen_counts(domains[allowed]):
            self.allowed_domains[domain] += volume
        denied = ~allowed
        for exception, volume in _first_seen_counts(exceptions[denied]):
            self.exceptions[exception] += volume
        censored = censor_mask(exceptions)
        self.censored += int(censored.sum())
        for domain, volume in _first_seen_counts(domains[censored]):
            self.censored_domains[domain] += volume
        self.errors += int(denied.sum()) - int(censored.sum())

    def consume_batch(self, batch: RecordBatch) -> "StreamingAnalysis":
        """Timed :meth:`add_batch`; returns self for chaining.

        The batched counterpart of :meth:`consume` for a single batch:
        the same ``analysis.rows`` / ``analysis.consume_seconds``
        metrics are recorded when a registry is active.
        """
        registry = current_registry()
        if registry is None:
            self.add_batch(batch)
            return self
        start = time.perf_counter()
        self.add_batch(batch)
        registry.inc("analysis.rows", len(batch))
        registry.observe(
            "analysis.consume_seconds", time.perf_counter() - start
        )
        return self

    def consume_batches(
        self, batches: Iterable[RecordBatch]
    ) -> "StreamingAnalysis":
        """Fold a stream of batches (timed like :meth:`consume`)."""
        registry = current_registry()
        if registry is None:
            for batch in batches:
                self.add_batch(batch)
            return self
        start = time.perf_counter()
        before = self.total
        for batch in batches:
            self.add_batch(batch)
        registry.inc("analysis.rows", self.total - before)
        registry.observe(
            "analysis.consume_seconds", time.perf_counter() - start
        )
        return self

    def consume(self, records: Iterable[LogRecord]) -> "StreamingAnalysis":
        """Fold a record stream; returns self for chaining.

        When a metrics registry is active, the pass is timed on the
        monotonic clock and the row count recorded, so merged metrics
        expose the analysis throughput (rows/sec).
        """
        registry = current_registry()
        if registry is None:
            for record in records:
                self.add(record)
            return self
        start = time.perf_counter()
        before = self.total
        for record in records:
            self.add(record)
        registry.inc("analysis.rows", self.total - before)
        registry.observe("analysis.consume_seconds", time.perf_counter() - start)
        return self

    def breakdown(self) -> StreamingBreakdown:
        """The Table 3 result so far."""
        return StreamingBreakdown(
            total=self.total,
            allowed=self.allowed,
            censored=self.censored,
            errors=self.errors,
            proxied=self.proxied,
        )

    def top_allowed(self, n: int = 10) -> list[tuple[str, int]]:
        """Table 4's allowed column so far."""
        return self.allowed_domains.most_common(n)

    def top_censored(self, n: int = 10) -> list[tuple[str, int]]:
        """Table 4's censored column so far."""
        return self.censored_domains.most_common(n)

    def merge(self, other: "StreamingAnalysis") -> "StreamingAnalysis":
        """Combine two accumulators (e.g. one per log file, processed
        in parallel); returns self.

        ``merge`` is the reduce operation of the sharded engine: it is
        associative and commutative, ``StreamingAnalysis()`` is its
        identity, and merging any split of a record stream equals
        consuming the stream in one pass (the merge laws pinned by
        the property tests).
        """
        self.total += other.total
        self.allowed += other.allowed
        self.censored += other.censored
        self.errors += other.errors
        self.proxied += other.proxied
        self.exceptions.update(other.exceptions)
        self.allowed_domains.update(other.allowed_domains)
        self.censored_domains.update(other.censored_domains)
        self.day_volumes.update(other.day_volumes)
        return self

    def copy(self) -> "StreamingAnalysis":
        """An independent accumulator with the same state."""
        return StreamingAnalysis().merge(self)

    def _state(self) -> tuple:
        return (
            self.total, self.allowed, self.censored, self.errors,
            self.proxied, self.exceptions, self.allowed_domains,
            self.censored_domains, self.day_volumes,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingAnalysis):
            return NotImplemented
        return self._state() == other._state()

    def __iadd__(self, other: "StreamingAnalysis") -> "StreamingAnalysis":
        """``acc += part`` — in-place merge."""
        if not isinstance(other, StreamingAnalysis):
            return NotImplemented
        return self.merge(other)

    def __add__(self, other: "StreamingAnalysis") -> "StreamingAnalysis":
        """Non-mutating merge; with the empty-accumulator identity this
        makes ``sum(parts, StreamingAnalysis())`` work."""
        if not isinstance(other, StreamingAnalysis):
            return NotImplemented
        return self.copy().merge(other)

    @classmethod
    def merge_all(
        cls, parts: Iterable["StreamingAnalysis"]
    ) -> "StreamingAnalysis":
        """Reduce any number of per-shard accumulators into one."""
        merged = cls()
        for part in parts:
            merged.merge(part)
        return merged


def _first_seen_counts(keys: np.ndarray) -> Iterable[tuple]:
    """Distinct keys with their multiplicities, ordered by first
    occurrence in *keys*.

    The ordering matters: feeding these into a ``Counter`` must insert
    new keys exactly where record-at-a-time ``Counter[key] += 1`` would
    have, or ``most_common`` tie-breaking (insertion order) diverges
    between the scalar and batched paths.  ``Counter``'s C counting
    loop gives exactly that order (it is a dict, filled in stream
    order) — and beats both ``np.unique``, whose sort pays a Python
    string comparison per element on object columns, and a hand-rolled
    dict factorization.  Keys come back as native Python objects
    (``tolist``), never numpy scalars, so Counter keys and the JSON
    they serialize to stay identical.
    """
    return Counter(keys.tolist()).items()
