"""Section 5.4's IP-based censorship analysis (Tables 11 and 12).

Builds D_IPv4 — the requests whose ``cs_host`` is a raw IPv4 address —
geolocates destinations with the GeoIP substrate, computes per-country
censorship ratios, and zooms into the Israeli subnets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    allowed_mask,
    censored_mask,
    ip_host_mask,
    percent,
    proxied_mask,
)
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame
from repro.geoip import GeoIPDatabase
from repro.net.ip import IPv4Network, parse_ipv4


def ipv4_subset(frame: LogFrame) -> LogFrame:
    """D_IPv4: the raw-IP-destination slice of a dataset."""
    return frame.where(ip_host_mask(frame))


@dataclass(frozen=True)
class CountryCensorship:
    """One Table 11 row."""

    country: str
    censored: int
    allowed: int
    ratio_pct: float  # censored / (censored + allowed)


def country_censorship_ratio(
    ip_frame: LogFrame, geoip: GeoIPDatabase
) -> list[CountryCensorship]:
    """Compute Table 11 over a D_IPv4 frame.

    Countries with zero censored requests are omitted, as in the paper
    ("top censored countries"); rows sort by ratio.
    """
    if len(ip_frame) == 0:
        return []
    hosts = ip_frame.col("cs_host")
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    addresses = np.array([parse_ipv4(h) for h in unique_hosts], dtype=np.int64)
    countries_of_host = geoip.lookup_many(addresses)
    countries = countries_of_host[inverse]

    censored = censored_mask(ip_frame)
    allowed = allowed_mask(ip_frame)
    rows = []
    for country in np.unique(countries):
        of_country = countries == country
        n_censored = int((of_country & censored).sum())
        n_allowed = int((of_country & allowed).sum())
        if n_censored == 0:
            continue
        rows.append(CountryCensorship(
            country=str(country),
            censored=n_censored,
            allowed=n_allowed,
            ratio_pct=percent(n_censored, n_censored + n_allowed),
        ))
    rows.sort(key=lambda r: (-r.ratio_pct, r.country))
    return rows


@dataclass(frozen=True)
class SubnetRow:
    """One Table 12 row."""

    subnet: str
    censored_requests: int
    censored_ips: int
    allowed_requests: int
    allowed_ips: int
    proxied_requests: int
    proxied_ips: int


def israeli_subnets(
    ip_frame: LogFrame,
    subnets: tuple[IPv4Network, ...],
    top: int = 10,
) -> list[SubnetRow]:
    """Compute Table 12: per-subnet request and address counts."""
    if len(ip_frame) == 0:
        return []
    hosts = ip_frame.col("cs_host")
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    addresses = np.array([parse_ipv4(h) for h in unique_hosts], dtype=np.int64)
    censored = censored_mask(ip_frame)
    allowed = allowed_mask(ip_frame)
    proxied = proxied_mask(ip_frame)

    rows = []
    for subnet in subnets:
        host_in_subnet = (addresses & subnet.netmask) == subnet.network
        row_in_subnet = host_in_subnet[inverse]

        def stats(mask: np.ndarray) -> tuple[int, int]:
            selected = row_in_subnet & mask
            requests = int(selected.sum())
            ips = len(np.unique(hosts[selected])) if requests else 0
            return requests, ips

        c_req, c_ips = stats(censored)
        a_req, a_ips = stats(allowed)
        p_req, p_ips = stats(proxied)
        rows.append(SubnetRow(
            subnet=str(subnet),
            censored_requests=c_req,
            censored_ips=c_ips,
            allowed_requests=a_req,
            allowed_ips=a_ips,
            proxied_requests=p_req,
            proxied_ips=p_ips,
        ))
    rows.sort(key=lambda r: (-r.censored_requests, r.subnet))
    return rows[:top]


def censored_anonymizer_addresses(
    ip_frame: LogFrame,
    geoip: GeoIPDatabase,
    categorizer: TrustedSourceCategorizer,
    country: str = "IL",
) -> tuple[int, int]:
    """The paper's cross-check: how many censored addresses in
    *country* categorize as Anonymizer hosts?  Returns
    (anonymizer count, total censored addresses)."""
    censored = ip_frame.where(censored_mask(ip_frame))
    hosts = np.unique(censored.col("cs_host"))
    in_country = [h for h in hosts if geoip.lookup(str(h)) == country]
    anonymizers = sum(
        1 for h in in_country if categorizer.categorize(str(h)) == "Anonymizer"
    )
    return anonymizers, len(in_country)
