"""The paper's HTTPS man-in-the-middle check (Section 4).

The EFF reported MITM attacks against the HTTPS version of Facebook in
Syria.  Blue Coat appliances can intercept TLS, in which case the
decrypted request's path/query/extension would appear in the logs.
The paper looks for exactly that signal — HTTPS log lines carrying URL
fields that only interception could reveal — and finds none.

This module implements the same check, plus the paper's caveat: SGOS
logs intercepted SSL traffic to a *separate* log facility by default,
so absence of evidence in the main logs is not conclusive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import https_mask
from repro.frame import LogFrame

_ABSENT_VALUES = ("", "-")


@dataclass(frozen=True)
class MitmCheck:
    """Result of the interception scan."""

    https_requests: int
    #: HTTPS rows whose path or query carries real (decrypted) content.
    suspicious_rows: int
    #: Hosts behind the suspicious rows (for investigation).
    suspicious_hosts: tuple[str, ...]

    @property
    def interception_evidence(self) -> bool:
        """True when any HTTPS row carries decrypted URL fields."""
        return self.suspicious_rows > 0


def https_mitm_check(frame: LogFrame) -> MitmCheck:
    """Scan HTTPS traffic for decrypted-content fields.

    A CONNECT tunnel only exposes host and port; any HTTPS row whose
    ``cs_uri_path``/``cs_uri_query``/``cs_uri_ext`` carries content is
    evidence the proxy saw inside the TLS stream.
    """
    https = https_mask(frame) & (frame.col("cs_method") == "CONNECT")
    if not https.any():
        return MitmCheck(0, 0, ())
    paths = frame.col("cs_uri_path")
    queries = frame.col("cs_uri_query")
    exts = frame.col("cs_uri_ext")
    has_content = https & ~(
        np.isin(paths, _ABSENT_VALUES)
        & np.isin(queries, _ABSENT_VALUES)
        & np.isin(exts, _ABSENT_VALUES)
    )
    hosts = tuple(sorted(set(frame.col("cs_host")[has_content].tolist())))
    return MitmCheck(
        https_requests=int(https.sum()),
        suspicious_rows=int(has_content.sum()),
        suspicious_hosts=hosts,
    )
