"""The paper's analysis pipeline — one module per section.

Every function consumes :class:`~repro.frame.LogFrame` datasets (plus
the substrate objects the paper's authors consulted externally: the
GeoIP database, the URL categorizer, the Tor directory, the torrent
title index) and returns a plain result object mirroring one table or
figure of the paper.

Section map:

========================  ==========================================
Module                    Paper content
========================  ==========================================
``analysis.common``       request classification masks, domain column
``analysis.overview``     Section 4: Tables 1/3/4, Figs 1/2, HTTPS
``analysis.categories``   Fig. 3 (censored-category distribution)
``analysis.users``        Fig. 4 (user-level analysis)
``analysis.temporal``     Section 5.1: Fig. 5/6, Table 5
``analysis.proxies``      Section 5.2: Fig. 7, Table 6
``analysis.redirects``    Section 5.3: Table 7
``analysis.stringfilter`` Section 5.4: Tables 8/9/10 (recovery)
``analysis.ipfilter``     Section 5.4: Tables 11/12
``analysis.socialmedia``  Section 6: Tables 13/14/15
``analysis.toranalysis``  Section 7.1: Figs 8/9
``analysis.anonymizers``  Section 7.2: Fig. 10
``analysis.p2p``          Section 7.3 (BitTorrent)
``analysis.googlecache``  Section 7.4 (Google cache)
``analysis.report``       full-report orchestration
========================  ==========================================
"""
