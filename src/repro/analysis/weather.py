"""Keyword censorship "weather report" (extension).

The paper cites ConceptDoppler (Crandall et al., CCS 2007), which
tracks *which keywords are filtered over time*.  The leaked logs make
the same tracking possible retrospectively: this module builds a
per-day (or per-window) report of keyword-triggered censorship,
flagging keywords whose activity changes abruptly — the kind of
monitoring the paper's Section 8 envisions for censorship-evasion
tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask
from repro.frame import LogFrame
from repro.timeline import epoch_day


@dataclass(frozen=True)
class KeywordWeather:
    """Per-day keyword-censorship activity."""

    keywords: tuple[str, ...]
    days: tuple[str, ...]
    #: counts[i][j] = censored requests matching keyword i on day j.
    counts: np.ndarray
    #: per-day total censored volume (for normalization).
    censored_totals: np.ndarray

    def series(self, keyword: str) -> list[tuple[str, int]]:
        """The (day, count) series of one keyword."""
        row = self.counts[self.keywords.index(keyword)]
        return list(zip(self.days, (int(v) for v in row)))

    def share_series(self, keyword: str) -> list[tuple[str, float]]:
        """The keyword's share of each day's censored traffic."""
        row = self.counts[self.keywords.index(keyword)]
        with np.errstate(invalid="ignore", divide="ignore"):
            shares = np.where(
                self.censored_totals > 0,
                row / np.maximum(self.censored_totals, 1),
                0.0,
            )
        return list(zip(self.days, (float(s) for s in shares)))

    def anomalies(self, factor: float = 2.5) -> list[tuple[str, str, float]]:
        """Days where a keyword's share jumps above ``factor`` × its
        own median share — candidate policy changes or demand surges.

        Returns (keyword, day, share/median ratio) triples.
        """
        flagged = []
        for keyword in self.keywords:
            shares = np.array([s for _, s in self.share_series(keyword)])
            positive = shares[shares > 0]
            if len(positive) < 2:
                continue
            median = float(np.median(positive))
            if median <= 0:
                continue
            for day, share in zip(self.days, shares):
                if share > factor * median:
                    flagged.append((keyword, day, float(share / median)))
        return flagged


def keyword_weather(
    frame: LogFrame, keywords: tuple[str, ...]
) -> KeywordWeather:
    """Build the per-day keyword report over one dataset."""
    censored = censored_mask(frame)
    epochs = frame.col("epoch")
    day_keys = epochs // 86400
    unique_days = np.unique(day_keys)
    day_labels = tuple(epoch_day(int(d * 86400)) for d in unique_days)
    day_index = {d: i for i, d in enumerate(unique_days)}

    counts = np.zeros((len(keywords), len(unique_days)), dtype=np.int64)
    censored_totals = np.zeros(len(unique_days), dtype=np.int64)

    hosts = frame.col("cs_host")
    paths = frame.col("cs_uri_path")
    queries = frame.col("cs_uri_query")
    for i in np.flatnonzero(censored):
        j = day_index[day_keys[i]]
        censored_totals[j] += 1
        text = f"{hosts[i]}{paths[i]}?{queries[i]}".lower()
        for k, keyword in enumerate(keywords):
            if keyword in text:
                counts[k][j] += 1
                break
    return KeywordWeather(
        keywords=tuple(keywords),
        days=day_labels,
        counts=counts,
        censored_totals=censored_totals,
    )
