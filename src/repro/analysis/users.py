"""Section 4's user-based analysis (Fig. 4).

Users are unique (c-ip, cs-user-agent) pairs on the D_user slice
(July 22–23, hashed addresses).  A *censored user* has at least one
policy-censored request.  The paper finds 147,802 users, 1.57 % of
them censored, with censored users markedly more active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, percent
from repro.frame import LogFrame
from repro.stats.distributions import cdf_points


@dataclass(frozen=True)
class UserAnalysis:
    """Fig. 4 data plus the headline user counts."""

    total_users: int
    censored_users: int
    censored_user_pct: float
    #: Fig. 4(a): histogram of censored-requests-per-censored-user.
    censored_requests_histogram: tuple[tuple[int, float], ...]
    #: Fig. 4(b): CDFs of total requests per user, both groups.
    censored_activity_cdf: tuple[tuple[float, float], ...]
    noncensored_activity_cdf: tuple[tuple[float, float], ...]
    #: Share of users with > 100 requests, per group (the paper quotes
    #: ~50 % vs ~5 %).
    active_share_censored_pct: float
    active_share_noncensored_pct: float


@dataclass(frozen=True)
class SoftwareAgentRow:
    """One software user-agent with its censorship profile."""

    user_agent: str
    users: int
    requests: int
    censored: int
    censored_pct: float
    top_censored_host: str | None


def software_agent_analysis(
    user_frame: LogFrame, interactive_agents: frozenset[str] | None = None
) -> list[SoftwareAgentRow]:
    """The paper's Section 4 observation: some "users" are software
    agents hammering a censored endpoint (the Skype updater retrying
    skype.com), inflating censored users' apparent activity.

    Classifies user agents as software when their string is not a
    known browser string (or not in *interactive_agents* when given)
    and reports the censorship profile of each.
    """
    if interactive_agents is None:
        from repro.net.useragent import BROWSERS

        interactive_agents = frozenset(agent.string for agent in BROWSERS)
    agents = user_frame.col("cs_user_agent")
    censored = censored_mask(user_frame)
    hosts = user_frame.col("cs_host")
    clients = user_frame.col("c_ip")
    rows: list[SoftwareAgentRow] = []
    for agent in np.unique(agents):
        if str(agent) in interactive_agents or str(agent) == "-":
            continue
        of_agent = agents == agent
        requests = int(of_agent.sum())
        agent_censored = of_agent & censored
        censored_count = int(agent_censored.sum())
        top_host = None
        if censored_count:
            values, counts = np.unique(hosts[agent_censored], return_counts=True)
            top_host = str(values[int(np.argmax(counts))])
        rows.append(SoftwareAgentRow(
            user_agent=str(agent),
            users=len(np.unique(clients[of_agent])),
            requests=requests,
            censored=censored_count,
            censored_pct=percent(censored_count, requests),
            top_censored_host=top_host,
        ))
    rows.sort(key=lambda r: (-r.censored, r.user_agent))
    return rows


def user_analysis(user_frame: LogFrame, active_threshold: int = 100) -> UserAnalysis:
    """Compute Fig. 4 over the D_user dataset."""
    if len(user_frame) == 0:
        return UserAnalysis(0, 0, 0.0, (), (), (), 0.0, 0.0)
    identities = np.array(
        [
            f"{ip}\x00{agent}"
            for ip, agent in zip(
                user_frame.col("c_ip"), user_frame.col("cs_user_agent")
            )
        ],
        dtype=object,
    )
    users, inverse = np.unique(identities, return_inverse=True)
    total_per_user = np.bincount(inverse, minlength=len(users))
    censored = censored_mask(user_frame)
    censored_per_user = np.bincount(
        inverse, weights=censored.astype(float), minlength=len(users)
    ).astype(int)

    is_censored_user = censored_per_user > 0
    censored_users = int(is_censored_user.sum())

    # Fig. 4(a): % of censored users with k censored requests.
    histogram: list[tuple[int, float]] = []
    if censored_users:
        values, counts = np.unique(
            censored_per_user[is_censored_user], return_counts=True
        )
        histogram = [
            (int(v), percent(int(c), censored_users)) for v, c in zip(values, counts)
        ]

    censored_activity = total_per_user[is_censored_user]
    noncensored_activity = total_per_user[~is_censored_user]

    return UserAnalysis(
        total_users=len(users),
        censored_users=censored_users,
        censored_user_pct=percent(censored_users, len(users)),
        censored_requests_histogram=tuple(histogram),
        censored_activity_cdf=tuple(cdf_points(censored_activity)),
        noncensored_activity_cdf=tuple(cdf_points(noncensored_activity)),
        active_share_censored_pct=percent(
            int((censored_activity > active_threshold).sum()),
            max(len(censored_activity), 1),
        ),
        active_share_noncensored_pct=percent(
            int((noncensored_activity > active_threshold).sum()),
            max(len(noncensored_activity), 1),
        ),
    )
