"""Section 7.1: Tor.

Identifies Tor traffic by matching (cs-host, cs-uri-port) against the
relay directory — exactly the paper's triplet matching — splits it into
Tor_http (directory protocol) and Tor_onion (OR connections), and
computes Fig. 8 (volume per hour, SG-44's censoring) and Fig. 9 (the
R_filter re-censoring ratio showing inconsistent blocking).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, error_mask, percent
from repro.analysis.proxies import proxy_names_column
from repro.frame import LogFrame
from repro.tornet import TorDirectory


@dataclass(frozen=True)
class TorTraffic:
    """The identified Tor slice plus its classification masks."""

    frame: LogFrame
    http_mask: np.ndarray  # Tor_http rows within `frame`
    onion_mask: np.ndarray  # Tor_onion rows

    @property
    def total(self) -> int:
        """Number of identified Tor requests."""
        return len(self.frame)

    @property
    def http_share_pct(self) -> float:
        """Directory-protocol share of Tor traffic (%)."""
        return percent(int(self.http_mask.sum()), self.total)


def identify_tor_traffic(frame: LogFrame, directory: TorDirectory) -> TorTraffic:
    """Match log rows against the relay directory's endpoints."""
    hosts = frame.col("cs_host")
    ports = frame.col("cs_uri_port")
    or_endpoints = directory.or_endpoints()
    dir_endpoints = directory.dir_endpoints()
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    relay_ips = directory.relay_ips()
    host_is_relay = np.array([h in relay_ips for h in unique_hosts], dtype=bool)
    candidate = host_is_relay[inverse]

    onion = np.zeros(len(frame), dtype=bool)
    http = np.zeros(len(frame), dtype=bool)
    for i in np.flatnonzero(candidate):
        endpoint = (hosts[i], int(ports[i]))
        if endpoint in or_endpoints:
            onion[i] = True
        elif endpoint in dir_endpoints:
            http[i] = True
    tor_mask = onion | http
    tor_frame = frame.where(tor_mask)
    return TorTraffic(
        frame=tor_frame,
        http_mask=http[tor_mask],
        onion_mask=onion[tor_mask],
    )


@dataclass(frozen=True)
class TorOverview:
    """The headline Tor statistics of Section 7.1."""

    total_requests: int
    distinct_relays: int
    http_share_pct: float
    censored: int
    censored_pct: float
    tcp_error_pct: float
    censored_by_proxy: dict[str, int]
    onion_censored: int
    http_censored: int


def tor_overview(tor: TorTraffic) -> TorOverview:
    """Compute the paper's headline Tor numbers."""
    frame = tor.frame
    censored = censored_mask(frame)
    errors = error_mask(frame) & (
        frame.col("x_exception_id") == "tcp_error"
    )
    by_proxy: dict[str, int] = {}
    if len(frame):
        names = proxy_names_column(frame)
        for name in np.unique(names[censored]):
            by_proxy[str(name)] = int((censored & (names == name)).sum())
    return TorOverview(
        total_requests=len(frame),
        distinct_relays=frame.nunique("cs_host") if len(frame) else 0,
        http_share_pct=tor.http_share_pct,
        censored=int(censored.sum()),
        censored_pct=percent(int(censored.sum()), len(frame)),
        tcp_error_pct=percent(int(errors.sum()), len(frame)),
        censored_by_proxy=by_proxy,
        onion_censored=int((censored & tor.onion_mask).sum()),
        http_censored=int((censored & tor.http_mask).sum()),
    )


@dataclass(frozen=True)
class HourlySeries:
    """Fig. 8(a): Tor requests per hour."""

    hour_epochs: np.ndarray
    counts: np.ndarray


def tor_hourly_series(
    tor: TorTraffic, start_epoch: int, end_epoch: int
) -> HourlySeries:
    """Compute Fig. 8(a)."""
    bins = np.arange(start_epoch, end_epoch + 3600, 3600)
    counts, _ = np.histogram(tor.frame.col("epoch"), bins=bins)
    return HourlySeries(hour_epochs=bins[:-1], counts=counts)


@dataclass(frozen=True)
class ProxyCensoredShare:
    """Fig. 8(b): one proxy's censored traffic — all vs Tor — per hour."""

    hour_epochs: np.ndarray
    all_censored_pct: np.ndarray  # share of the proxy's censored total
    tor_censored_pct: np.ndarray


def proxy_censored_comparison(
    frame: LogFrame,
    tor: TorTraffic,
    proxy: str,
    start_epoch: int,
    end_epoch: int,
) -> ProxyCensoredShare:
    """Compute Fig. 8(b) for one proxy (the paper uses SG-44)."""
    bins = np.arange(start_epoch, end_epoch + 3600, 3600)
    names = proxy_names_column(frame)
    censored = censored_mask(frame) & (names == proxy)
    all_counts, _ = np.histogram(frame.col("epoch")[censored], bins=bins)

    tor_names = proxy_names_column(tor.frame) if len(tor.frame) else np.empty(0, dtype=object)
    tor_censored = (
        censored_mask(tor.frame) & (tor_names == proxy)
        if len(tor.frame)
        else np.zeros(0, dtype=bool)
    )
    tor_counts, _ = np.histogram(tor.frame.col("epoch")[tor_censored], bins=bins)

    def normalize(counts: np.ndarray) -> np.ndarray:
        total = counts.sum()
        return 100.0 * counts / total if total else counts.astype(float)

    return ProxyCensoredShare(
        hour_epochs=bins[:-1],
        all_censored_pct=normalize(all_counts),
        tor_censored_pct=normalize(tor_counts),
    )


@dataclass(frozen=True)
class RefilterSeries:
    """Fig. 9: R_filter(k) per time bin."""

    bin_epochs: np.ndarray
    rfilter: np.ndarray  # NaN when the bin has no allowed Tor traffic


def refilter_ratio(tor: TorTraffic, bin_seconds: int = 3600) -> RefilterSeries:
    """Compute Fig. 9's R_filter.

    ``Censored-IPs`` is the set of relay addresses ever censored;
    R_filter(k) = 1 − |Censored-IPs ∩ Allowed-IPs(k)| / |Censored-IPs|.
    High variance across bins is the paper's evidence that Tor blocking
    was inconsistent.
    """
    frame = tor.frame
    if len(frame) == 0:
        return RefilterSeries(np.empty(0, dtype=np.int64), np.empty(0))
    censored = censored_mask(frame)
    allowed = frame.col("x_exception_id") == "-"
    hosts = frame.col("cs_host")
    censored_ips = set(hosts[censored].tolist())
    epochs = frame.col("epoch")
    start = int(epochs.min()) // bin_seconds * bin_seconds
    end = int(epochs.max()) + bin_seconds
    bins = np.arange(start, end, bin_seconds)
    values = np.full(len(bins), np.nan)
    if not censored_ips:
        return RefilterSeries(bins, values)
    for k, bin_start in enumerate(bins):
        in_bin = (epochs >= bin_start) & (epochs < bin_start + bin_seconds)
        allowed_ips = set(hosts[in_bin & allowed].tolist())
        if not in_bin.any():
            continue
        overlap = len(censored_ips & allowed_ips)
        values[k] = 1.0 - overlap / len(censored_ips)
    return RefilterSeries(bins, values)
