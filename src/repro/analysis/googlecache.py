"""Section 7.4: Google cache as an accidental circumvention channel.

Counts fetches through ``webcache.googleusercontent.com``, the rare
censored ones (keyword in the cache URL), and — the paper's key
observation — the allowed cache fetches whose *target* is an otherwise
censored site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.analysis.common import allowed_mask, censored_mask, percent
from repro.frame import LogFrame
from repro.net.url import registered_domain

CACHE_HOST = "webcache.googleusercontent.com"

_CACHE_TARGET_RE = re.compile(r"q=cache:[0-9a-zA-Z_-]+:([^/&?]+)")


@dataclass(frozen=True)
class GoogleCacheAnalysis:
    """Section 7.4's numbers."""

    requests: int
    censored: int
    allowed: int
    #: Allowed cache fetches whose target domain is censored elsewhere.
    censored_content_fetches: int
    censored_targets: tuple[str, ...]


def cache_targets(frame: LogFrame) -> list[str]:
    """Target hosts of every cache fetch (parsed from the query)."""
    mask = frame.col("cs_host") == CACHE_HOST
    targets = []
    for query in frame.col("cs_uri_query")[mask]:
        match = _CACHE_TARGET_RE.search(query)
        if match:
            targets.append(match.group(1).lower())
    return targets


def google_cache_analysis(
    frame: LogFrame,
    censored_domains: frozenset[str] | set[str],
) -> GoogleCacheAnalysis:
    """Compute Section 7.4.

    ``censored_domains`` is the set of domains known to be censored
    elsewhere in the dataset (e.g. the Table 8 suspected list plus the
    ``.il`` sites) — the paper checks cache fetches against it.
    """
    of_cache = frame.col("cs_host") == CACHE_HOST
    censored = censored_mask(frame) & of_cache
    allowed = allowed_mask(frame) & of_cache

    censored_content = 0
    hit_targets: set[str] = set()
    queries = frame.col("cs_uri_query")
    for i in np.flatnonzero(allowed):
        match = _CACHE_TARGET_RE.search(queries[i])
        if not match:
            continue
        target = match.group(1).lower()
        domain = registered_domain(target)
        if domain in censored_domains or target in censored_domains:
            censored_content += 1
            hit_targets.add(target)
    return GoogleCacheAnalysis(
        requests=int(of_cache.sum()),
        censored=int(censored.sum()),
        allowed=int(allowed.sum()),
        censored_content_fetches=censored_content,
        censored_targets=tuple(sorted(hit_targets)),
    )
