"""Fig. 3: category distribution of censored traffic.

The proxies' own category database was absent (``cs-categories`` shows
only the default and the custom label), so the paper characterizes
censored URLs with McAfee's TrustedSource; we do the same with the
:class:`~repro.categorizer.TrustedSourceCategorizer` substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, percent
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame

OTHER_LABEL = "Other"


@dataclass(frozen=True)
class CategoryShare:
    """One Fig. 3 bar."""

    category: str
    requests: int
    share_pct: float


def censored_category_distribution(
    frame: LogFrame,
    categorizer: TrustedSourceCategorizer,
    min_requests: int = 1,
    other_threshold_pct: float = 0.35,
) -> list[CategoryShare]:
    """Compute Fig. 3.

    Small categories fold into ``Other`` (the paper folds categories
    with < 1 K requests in D_sample, ≈ 0.35 % of censored traffic).
    """
    censored = frame.where(censored_mask(frame))
    if len(censored) == 0:
        return []
    # Categorize distinct (host, first path segment) pairs, not every
    # row: categorization is pure and hosts repeat massively.
    hosts = censored.col("cs_host")
    paths = censored.col("cs_uri_path")
    keys = np.array(
        [f"{h}\x00{_path_prefix(p)}" for h, p in zip(hosts, paths)], dtype=object
    )
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    categories_of_key = np.array(
        [
            categorizer.categorize(*key.split("\x00", 1))
            for key in unique_keys
        ],
        dtype=object,
    )
    per_row = categories_of_key[inverse]
    values, counts = np.unique(per_row, return_counts=True)
    total = len(censored)
    shares: list[CategoryShare] = []
    other = 0
    for value, count in zip(values, counts):
        share = percent(int(count), total)
        if count < min_requests or share < other_threshold_pct:
            other += int(count)
        else:
            shares.append(CategoryShare(str(value), int(count), share))
    shares.sort(key=lambda s: (-s.requests, s.category))
    if other:
        shares.append(CategoryShare(OTHER_LABEL, other, percent(other, total)))
    return shares


def _path_prefix(path: str) -> str:
    """First two path segments — enough for the plugin overrides."""
    parts = path.split("/", 3)
    return "/".join(parts[:3])
