"""Page-view sessionization.

The proxies log *requests*; a page load fans out into many of them.
The paper's Section 4 caveat — request-based logging inflates allowed
volume relative to censored volume, because a censored page yields
exactly one log line — needs page-level accounting to quantify.  This
module groups requests into approximate page views (same client, same
host, within a short window) and recomputes the traffic breakdown at
that granularity.

Client grouping requires distinguishable clients, so the analysis is
meaningful on D_user (hashed addresses) and degenerate on zeroed data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, percent
from repro.frame import LogFrame

DEFAULT_WINDOW_SECONDS = 30


@dataclass(frozen=True)
class PageViewBreakdown:
    """Request-level vs page-level censored shares."""

    requests: int
    page_views: int
    requests_per_view: float
    request_censored_pct: float
    page_censored_pct: float

    @property
    def inflation_factor(self) -> float:
        """How much request-level logging dilutes the censored share."""
        if self.request_censored_pct == 0:
            return 1.0
        return self.page_censored_pct / self.request_censored_pct


def page_view_keys(
    frame: LogFrame, window_seconds: int = DEFAULT_WINDOW_SECONDS
) -> np.ndarray:
    """One key per request: (client, host, time bucket).

    Requests sharing a key belong to the same approximate page view.
    """
    buckets = frame.col("epoch") // window_seconds
    return np.array(
        [
            f"{c}\x00{h}\x00{b}"
            for c, h, b in zip(
                frame.col("c_ip"), frame.col("cs_host"), buckets
            )
        ],
        dtype=object,
    )


def page_view_breakdown(
    frame: LogFrame, window_seconds: int = DEFAULT_WINDOW_SECONDS
) -> PageViewBreakdown:
    """Compute the page-level vs request-level comparison.

    A page view counts as censored when *any* of its requests is — a
    blocked page is blocked even if a stray asset slipped through.
    """
    if len(frame) == 0:
        return PageViewBreakdown(0, 0, 0.0, 0.0, 0.0)
    keys = page_view_keys(frame, window_seconds)
    censored = censored_mask(frame)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    censored_per_view = np.bincount(
        inverse, weights=censored, minlength=len(unique_keys)
    )
    page_censored = int((censored_per_view > 0).sum())
    return PageViewBreakdown(
        requests=len(frame),
        page_views=len(unique_keys),
        requests_per_view=len(frame) / len(unique_keys),
        request_censored_pct=percent(int(censored.sum()), len(frame)),
        page_censored_pct=percent(page_censored, len(unique_keys)),
    )
