"""Section 5.3: denied vs redirected traffic (Table 7).

``policy_redirect`` requests are redirected rather than dropped; the
paper finds only 11 hosts triggering it, dominated by
``upload.youtube.com`` and the targeted Facebook pages.  It also
checks for follow-up requests right after a redirect (finding none,
concluding the redirect target bypasses the logged proxies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import percent
from repro.frame import LogFrame


@dataclass(frozen=True)
class RedirectHosts:
    """Table 7: hosts raising policy_redirect."""

    total_redirects: int
    rows: tuple[tuple[str, int, float], ...]  # (host, count, % of redirects)


def redirect_hosts(frame: LogFrame, top: int = 10) -> RedirectHosts:
    """Compute Table 7.

    Counts every row whose exception is ``policy_redirect`` regardless
    of filter result (the paper's Table 7 includes PROXIED rows).
    """
    mask = frame.col("x_exception_id") == "policy_redirect"
    hosts = frame.col("cs_host")[mask]
    total = int(mask.sum())
    values, counts = np.unique(hosts, return_counts=True)
    order = np.lexsort((values, -counts))[:top]
    rows = tuple(
        (str(values[i]), int(counts[i]), percent(int(counts[i]), total))
        for i in order
    )
    return RedirectHosts(total_redirects=total, rows=rows)


def followup_requests_after_redirect(
    frame: LogFrame, window_seconds: int = 2
) -> int:
    """Count requests arriving within *window_seconds* after a redirect
    from the same client (the paper's secondary-request check).

    On the released logs most client addresses are zeroed, so — like
    the paper — this is meaningful only on slices with hashed
    addresses.
    """
    redirect_mask = frame.col("x_exception_id") == "policy_redirect"
    if not redirect_mask.any():
        return 0
    epochs = frame.col("epoch")
    clients = frame.col("c_ip")
    redirect_epochs = epochs[redirect_mask]
    redirect_clients = clients[redirect_mask]
    count = 0
    # Redirects are rare (tens of rows), so a per-redirect scan over a
    # sorted-epoch index is fine.
    order = np.argsort(epochs, kind="stable")
    sorted_epochs = epochs[order]
    for r_epoch, r_client in zip(redirect_epochs, redirect_clients):
        low = np.searchsorted(sorted_epochs, r_epoch, side="right")
        high = np.searchsorted(sorted_epochs, r_epoch + window_seconds, side="right")
        window_rows = order[low:high]
        if np.any(clients[window_rows] == r_client):
            count += 1
    return count
