"""Section 7.3: peer-to-peer networks (BitTorrent).

Parses announce requests out of the traffic, counts users by
``peer_id`` and contents by ``info_hash``, measures the censored
share, and resolves info hashes to titles through the title database
(the paper's torrentz.eu crawl), classifying circumvention- and
IM-related content.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, percent
from repro.bittorrent import TitleDatabase
from repro.frame import LogFrame

_INFO_HASH_RE = re.compile(r"info_hash=([0-9a-fA-F]{40})")
_PEER_ID_RE = re.compile(r"peer_id=([^&]+)")

#: Title substrings marking circumvention tools (the paper lists
#: UltraSurf, HideMyAss, Auto Hide IP, anonymous browsers).
_CIRCUMVENTION_MARKERS = (
    "ultrasurf", "hidemyass", "auto hide ip", "anonymous browser",
)
_IM_MARKERS = ("skype", "msn messenger", "yahoo messenger")


@dataclass(frozen=True)
class BitTorrentAnalysis:
    """Section 7.3's numbers."""

    announce_requests: int
    censored_announces: int
    allowed_share_pct: float
    unique_users: int
    unique_contents: int
    resolved_titles: int
    resolve_rate_pct: float
    circumvention_announces: int
    im_software_announces: int
    censored_tracker_hosts: tuple[str, ...]


def bittorrent_analysis(
    frame: LogFrame, titledb: TitleDatabase
) -> BitTorrentAnalysis:
    """Compute Section 7.3 over one dataset."""
    paths = frame.col("cs_uri_path")
    announce_mask = paths == "/announce"
    announce = frame.where(announce_mask)
    censored = censored_mask(announce)

    queries = announce.col("cs_uri_query")
    hashes: list[str] = []
    peers: list[str] = []
    for query in queries:
        hash_match = _INFO_HASH_RE.search(query)
        peer_match = _PEER_ID_RE.search(query)
        hashes.append(hash_match.group(1).lower() if hash_match else "")
        peers.append(peer_match.group(1) if peer_match else "")
    hash_array = np.array(hashes, dtype=object)
    peer_array = np.array(peers, dtype=object)

    unique_hashes = sorted({h for h in hashes if h})
    resolved, _unresolved = titledb.resolve_many(unique_hashes)

    circumvention = 0
    im_software = 0
    for i, info_hash in enumerate(hash_array):
        title = resolved.get(str(info_hash), "").lower()
        if not title:
            continue
        if any(marker in title for marker in _CIRCUMVENTION_MARKERS):
            circumvention += 1
        elif any(marker in title for marker in _IM_MARKERS):
            im_software += 1

    censored_hosts = tuple(
        sorted(set(announce.col("cs_host")[censored].tolist()))
    )
    total = len(announce)
    return BitTorrentAnalysis(
        announce_requests=total,
        censored_announces=int(censored.sum()),
        allowed_share_pct=percent(total - int(censored.sum()), max(total, 1)),
        unique_users=len({p for p in peers if p}),
        unique_contents=len(unique_hashes),
        resolved_titles=len(resolved),
        resolve_rate_pct=percent(len(resolved), max(len(unique_hashes), 1)),
        circumvention_announces=circumvention,
        im_software_announces=im_software,
        censored_tracker_hosts=censored_hosts,
    )
