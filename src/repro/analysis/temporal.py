"""Section 5.1: temporal analysis.

Fig. 5 — censored/allowed volume over the August days (absolute and
normalized); Fig. 6 — Relative Censored traffic Volume (RCV) over one
day at 5-minute granularity; Table 5 — top censored domains in the
morning windows of the protest day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    allowed_mask,
    censored_mask,
    domain_column,
    percent,
)
from repro.frame import LogFrame
from repro.timeline import day_span

BIN_SECONDS = 300  # the paper's 5-minute granularity


@dataclass(frozen=True)
class TrafficTimeseries:
    """Fig. 5: per-bin counts plus normalized curves."""

    bin_epochs: np.ndarray
    allowed_counts: np.ndarray
    censored_counts: np.ndarray

    @property
    def allowed_normalized(self) -> np.ndarray:
        """Allowed counts normalized to sum to one (Fig. 5b)."""
        total = self.allowed_counts.sum()
        return self.allowed_counts / total if total else self.allowed_counts

    @property
    def censored_normalized(self) -> np.ndarray:
        """Censored counts normalized to sum to one (Fig. 5b)."""
        total = self.censored_counts.sum()
        return self.censored_counts / total if total else self.censored_counts


def traffic_timeseries(
    frame: LogFrame,
    start_epoch: int,
    end_epoch: int,
    bin_seconds: int = BIN_SECONDS,
) -> TrafficTimeseries:
    """Compute Fig. 5 over [start, end)."""
    if end_epoch <= start_epoch:
        raise ValueError("empty time range")
    epochs = frame.col("epoch")
    in_range = (epochs >= start_epoch) & (epochs < end_epoch)
    bins = np.arange(start_epoch, end_epoch + bin_seconds, bin_seconds)
    allowed = allowed_mask(frame) & in_range
    censored = censored_mask(frame) & in_range
    allowed_counts, _ = np.histogram(epochs[allowed], bins=bins)
    censored_counts, _ = np.histogram(epochs[censored], bins=bins)
    return TrafficTimeseries(
        bin_epochs=bins[:-1],
        allowed_counts=allowed_counts,
        censored_counts=censored_counts,
    )


@dataclass(frozen=True)
class RcvSeries:
    """Fig. 6: RCV per 5-minute bin of one day."""

    bin_epochs: np.ndarray
    rcv: np.ndarray  # censored / total per bin; NaN for empty bins

    def peak_bins(self, threshold: float) -> list[int]:
        """Epochs of bins whose RCV exceeds *threshold*."""
        valid = ~np.isnan(self.rcv)
        return [
            int(self.bin_epochs[i])
            for i in np.flatnonzero(valid & (self.rcv > threshold))
        ]


def relative_censored_volume(
    frame: LogFrame, day: str, bin_seconds: int = BIN_SECONDS
) -> RcvSeries:
    """Compute Fig. 6's RCV(t) for one day."""
    start, end = day_span(day)
    epochs = frame.col("epoch")
    in_day = (epochs >= start) & (epochs < end)
    bins = np.arange(start, end + bin_seconds, bin_seconds)
    total_counts, _ = np.histogram(epochs[in_day], bins=bins)
    censored = censored_mask(frame) & in_day
    censored_counts, _ = np.histogram(epochs[censored], bins=bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        rcv = np.where(
            total_counts > 0, censored_counts / np.maximum(total_counts, 1), np.nan
        )
    return RcvSeries(bin_epochs=bins[:-1], rcv=rcv)


@dataclass(frozen=True)
class WindowTopDomains:
    """One Table 5 column: a time window's top censored domains."""

    start_hour: int
    end_hour: int
    rows: tuple[tuple[str, float], ...]  # (domain, % of censored volume)


def top_censored_windows(
    frame: LogFrame,
    day: str,
    windows: tuple[tuple[int, int], ...] = ((6, 8), (8, 10), (10, 12)),
    top: int = 10,
) -> list[WindowTopDomains]:
    """Compute Table 5: top censored domains per morning window."""
    start, _ = day_span(day)
    epochs = frame.col("epoch")
    censored = censored_mask(frame)
    domains = domain_column(frame)
    results = []
    for start_hour, end_hour in windows:
        window = (
            censored
            & (epochs >= start + start_hour * 3600)
            & (epochs < start + end_hour * 3600)
        )
        subset = domains[window]
        total = len(subset)
        values, counts = np.unique(subset, return_counts=True)
        order = np.lexsort((values, -counts))[:top]
        rows = tuple(
            (str(values[i]), percent(int(counts[i]), total)) for i in order
        )
        results.append(WindowTopDomains(start_hour, end_hour, rows))
    return results
