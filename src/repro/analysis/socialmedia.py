"""Section 6: censorship of social media.

Table 13 — allowed/censored/proxied per watched social network;
Table 14 — the Facebook pages targeted by the custom category;
Table 15 — the social-plugin elements whose URLs trip the ``proxy``
keyword.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    censored_mask,
    domain_column,
    observed_allowed_mask,
    percent,
    proxied_mask,
)
from repro.catalog.socialnetworks import OSN_WATCHLIST
from repro.frame import LogFrame


@dataclass(frozen=True)
class OsnRow:
    """One Table 13 row."""

    network: str
    censored: int
    censored_share_pct: float  # of all censored traffic
    allowed: int
    proxied: int


def osn_breakdown(
    frame: LogFrame,
    watchlist: tuple[str, ...] = OSN_WATCHLIST,
    top: int | None = 10,
) -> list[OsnRow]:
    """Compute Table 13 over the watchlist.

    Watchlist entries are registered domains, except
    ``plus.google.com`` which is matched as a host prefix (otherwise
    google.com's traffic would swallow it).
    """
    domains = domain_column(frame)
    hosts = frame.col("cs_host")
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    proxied = proxied_mask(frame)
    total_censored = int(censored.sum())
    rows = []
    for network in watchlist:
        if "." in network and network.count(".") >= 2:
            of_network = hosts == network
        else:
            of_network = domains == network
        rows.append(OsnRow(
            network=network,
            censored=int((of_network & censored).sum()),
            censored_share_pct=percent(
                int((of_network & censored).sum()), total_censored
            ),
            allowed=int((of_network & allowed).sum()),
            proxied=int((of_network & proxied).sum()),
        ))
    rows.sort(key=lambda r: (-r.censored, r.network))
    if top is not None:
        rows = rows[:top]
    return rows


_FACEBOOK_HOSTS = ("www.facebook.com", "ar-ar.facebook.com", "facebook.com")


@dataclass(frozen=True)
class FacebookPageRow:
    """One Table 14 row."""

    page: str
    censored: int
    allowed: int
    proxied: int
    custom_category_hits: int  # rows labelled with the custom category


def facebook_pages(frame: LogFrame, min_requests: int = 1) -> list[FacebookPageRow]:
    """Compute Table 14: per-page outcomes for Facebook page visits.

    A page visit is a request to a Facebook host whose path is a
    single segment that is not a known application endpoint; matching
    is case-sensitive (``Syrian.Revolution`` and ``Syrian.revolution``
    are distinct pages in the logs).
    """
    hosts = frame.col("cs_host")
    of_facebook = np.isin(hosts, _FACEBOOK_HOSTS)
    paths = frame.col("cs_uri_path")
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    proxied = proxied_mask(frame)
    categories = frame.col("cs_categories")
    custom = np.char.startswith(categories.astype(str), "Blocked sites")

    page_rows: dict[str, list[int]] = {}
    for i in np.flatnonzero(of_facebook):
        page = _page_of(paths[i])
        if page is None:
            continue
        stats = page_rows.setdefault(page, [0, 0, 0, 0])
        if censored[i]:
            stats[0] += 1
        elif proxied[i]:
            stats[2] += 1
        elif allowed[i]:
            stats[1] += 1
        if custom[i]:
            stats[3] += 1
    rows = [
        FacebookPageRow(page, c, a, p, hits)
        for page, (c, a, p, hits) in page_rows.items()
        if c + a + p >= min_requests
    ]
    rows.sort(key=lambda r: (-r.censored, -r.allowed, r.page))
    return rows


_APP_ENDPOINTS = frozenset({
    "home.php", "profile.php", "photo.php", "friends", "groups", "notes",
    "plugins", "extern", "fbml", "connect", "ajax", "platform", "", "-",
})


def _page_of(path: str) -> str | None:
    """Extract a page name from a path, or None for app endpoints."""
    trimmed = path.strip("/")
    if "/" in trimmed:
        first = trimmed.split("/", 1)[0]
        if first in _APP_ENDPOINTS:
            return None
        return first if _looks_like_page(first) else None
    if trimmed in _APP_ENDPOINTS:
        return None
    return trimmed if _looks_like_page(trimmed) else None


def _looks_like_page(segment: str) -> bool:
    return bool(segment) and not segment.endswith(".php")


@dataclass(frozen=True)
class PluginRow:
    """One Table 15 row."""

    element: str  # the plugin path
    censored: int
    censored_share_pct: float  # of censored facebook traffic
    allowed: int
    proxied: int


def facebook_plugins(frame: LogFrame, top: int = 10) -> list[PluginRow]:
    """Compute Table 15: per-plugin-element outcomes on facebook.com."""
    hosts = frame.col("cs_host")
    of_facebook = np.isin(hosts, _FACEBOOK_HOSTS)
    paths = frame.col("cs_uri_path")
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    proxied = proxied_mask(frame)
    censored_fb_total = int((of_facebook & censored).sum())

    stats: dict[str, list[int]] = {}
    for i in np.flatnonzero(of_facebook):
        path = str(paths[i])
        if not _is_plugin_path(path):
            continue
        row = stats.setdefault(path, [0, 0, 0])
        if censored[i]:
            row[0] += 1
        elif proxied[i]:
            row[2] += 1
        elif allowed[i]:
            row[1] += 1
    rows = [
        PluginRow(
            element=path,
            censored=c,
            censored_share_pct=percent(c, censored_fb_total),
            allowed=a,
            proxied=p,
        )
        for path, (c, a, p) in stats.items()
    ]
    rows.sort(key=lambda r: (-r.censored, r.element))
    return rows[:top]


_PLUGIN_PREFIXES = (
    "/plugins/", "/extern/", "/fbml/", "/connect/", "/platform/",
    "/ajax/proxy.php",
)


def _is_plugin_path(path: str) -> bool:
    return any(path.startswith(prefix) for prefix in _PLUGIN_PREFIXES)
