"""The PROXIED-inconsistency analysis (Section 3.3 of the paper).

The paper observes that requests logged PROXIED with no exception are
unreliable: "when looking at requests similar to those that are
PROXIED (e.g., other requests from the same user accessing the same
URL), some are consistently denied, while others are sometimes or
always allowed."  This motivated treating PROXIED rows separately in
the string-recovery step.

This module makes the observation measurable: for every URL that
appears as an exception-free PROXIED row, compare against the
OBSERVED outcomes of the same URL and classify the cached row as
consistent (URL otherwise allowed), contradictory (URL otherwise
always censored — the stale-decision case), or undetermined (no
OBSERVED sibling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, percent
from repro.frame import LogFrame


@dataclass(frozen=True)
class ProxiedConsistency:
    """Classification of exception-free PROXIED rows."""

    proxied_rows: int
    clean_proxied_rows: int  # PROXIED with x-exception-id == '-'
    consistent: int  # URL otherwise allowed
    contradictory: int  # URL otherwise always censored
    undetermined: int  # URL never OBSERVED

    @property
    def contradictory_pct(self) -> float:
        """Share of clean PROXIED rows contradicted by OBSERVED rows —
        the paper's reason to distrust PROXIED evidence."""
        return percent(self.contradictory, self.clean_proxied_rows)

    @property
    def inconsistency_found(self) -> bool:
        """True when at least one cached row hides a censored URL."""
        return self.contradictory > 0


def _url_keys(frame: LogFrame, mask: np.ndarray) -> list[str]:
    hosts = frame.col("cs_host")[mask]
    paths = frame.col("cs_uri_path")[mask]
    queries = frame.col("cs_uri_query")[mask]
    return [f"{h}{p}?{q}" for h, p, q in zip(hosts, paths, queries)]


def proxied_consistency(frame: LogFrame) -> ProxiedConsistency:
    """Classify every exception-free PROXIED row against its URL's
    OBSERVED outcomes.

    Comparison is at the exact-URL level, like the paper's "same user
    accessing the same URL" check (our released logs have zeroed
    clients on most days, so the URL is the join key).
    """
    filter_results = frame.col("sc_filter_result")
    proxied = filter_results == "PROXIED"
    clean_proxied = proxied & (frame.col("x_exception_id") == "-")
    observed = filter_results == "OBSERVED"
    censored = censored_mask(frame)

    if not clean_proxied.any():
        return ProxiedConsistency(int(proxied.sum()), 0, 0, 0, 0)

    observed_allowed_urls = set(_url_keys(frame, observed & ~censored))
    observed_censored_urls = set(_url_keys(frame, observed & censored))
    # Denied (non-PROXIED) censored rows also witness the URL's fate.
    denied_censored_urls = set(
        _url_keys(frame, censored & ~proxied)
    ) | observed_censored_urls

    consistent = contradictory = undetermined = 0
    for url in _url_keys(frame, clean_proxied):
        ever_allowed = url in observed_allowed_urls
        ever_censored = url in denied_censored_urls
        if ever_censored and not ever_allowed:
            contradictory += 1
        elif ever_allowed:
            consistent += 1
        else:
            undetermined += 1
    return ProxiedConsistency(
        proxied_rows=int(proxied.sum()),
        clean_proxied_rows=int(clean_proxied.sum()),
        consistent=consistent,
        contradictory=contradictory,
        undetermined=undetermined,
    )


def proxied_consistency_by_domain(frame: LogFrame) -> ProxiedConsistency:
    """Same classification at registered-domain granularity.

    Exact-URL joins miss most cached rows (queries carry unique ids);
    the domain-level view is what Table 8's "Proxied" column reflects:
    metacafe.com shows 1,164 clean PROXIED rows against 1.28 M
    censored and zero allowed requests.
    """
    from repro.analysis.common import domain_column, observed_allowed_mask

    filter_results = frame.col("sc_filter_result")
    proxied = filter_results == "PROXIED"
    clean_proxied = proxied & (frame.col("x_exception_id") == "-")
    if not clean_proxied.any():
        return ProxiedConsistency(int(proxied.sum()), 0, 0, 0, 0)

    domains = domain_column(frame)
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    allowed_domains = set(np.unique(domains[allowed]).tolist())
    censored_domains = set(np.unique(domains[censored & ~proxied]).tolist())

    consistent = contradictory = undetermined = 0
    for domain in domains[clean_proxied]:
        ever_allowed = domain in allowed_domains
        ever_censored = domain in censored_domains
        if ever_censored and not ever_allowed:
            contradictory += 1
        elif ever_allowed:
            consistent += 1
        else:
            undetermined += 1
    return ProxiedConsistency(
        proxied_rows=int(proxied.sum()),
        clean_proxied_rows=int(clean_proxied.sum()),
        consistent=consistent,
        contradictory=contradictory,
        undetermined=undetermined,
    )
