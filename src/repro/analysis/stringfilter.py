"""Section 5.4: recovering the censorship policy from the logs.

The paper reverse-engineers the string-based filtering with an
iterative process: find a string frequent in censored URLs and absent
from allowed ones, attribute, remove, repeat — taking bare-domain
requests (``GET new-syria.com/``) as unambiguous evidence for
URL/domain rules and the remaining high-coverage strings as keywords.

This module automates that process:

* :func:`recover_censored_domains` — the 105-domain list (Table 8);
* :func:`recover_keywords` — the five keywords (Table 10), via greedy
  maximum-coverage selection over candidate tokens that never occur in
  allowed traffic;
* :func:`keyword_stats` / :func:`categorize_suspected` — the
  corresponding tables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    censored_mask,
    domain_column,
    observed_allowed_mask,
    percent,
    proxied_mask,
)
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame
from repro.net.url import is_ip_like

_TOKEN_RE = re.compile(r"[a-z0-9]{4,24}")


def _matchable_texts(frame: LogFrame, mask: np.ndarray) -> list[str]:
    hosts = frame.col("cs_host")[mask]
    paths = frame.col("cs_uri_path")[mask]
    queries = frame.col("cs_uri_query")[mask]
    return [
        f"{h}{p}?{q}".lower() for h, p, q in zip(hosts, paths, queries)
    ]


@dataclass(frozen=True)
class SuspectedDomain:
    """One Table 8 row."""

    domain: str
    censored: int
    censored_share_pct: float  # of all censored traffic
    allowed: int  # zero by construction
    proxied: int


def _looks_like_identifier(token: str) -> bool:
    """Random ids (hex blobs, numbers) that cannot be policy strings."""
    if token.isdigit():
        return True
    return len(token) >= 8 and all(c in "0123456789abcdef" for c in token)


def recover_censored_domains(
    frame: LogFrame,
    min_censored: int = 3,
) -> list[SuspectedDomain]:
    """Recover domains blocked by URL-based filtering (Table 8).

    A domain is *suspected* when no request to it is ever allowed
    (PROXIED rows, whose missing exceptions are unreliable, do not
    count as allowed) **and** at least one censored request is
    attributable to the domain itself rather than a keyword — either a
    bare-domain request (``GET new-syria.com/``, the paper's
    conservative evidence), or a request whose every path/query token
    also occurs in allowed traffic, so no keyword could have triggered
    it.  ``min_censored`` suppresses domains with too little traffic
    to judge.
    """
    domains = domain_column(frame)
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    proxied = proxied_mask(frame)
    paths = frame.col("cs_uri_path")
    queries = frame.col("cs_uri_query")
    # Bare request: nothing beyond the hostname to blame.  CONNECT
    # rows log path/query as '-'.
    path_strings = paths.astype(str)
    no_query = (queries == "") | (queries == "-")
    bare = (
        ((paths == "/") | (paths == "") | (paths == "-")) & no_query
    ) | (no_query & (np.char.count(path_strings, "/") <= 1))

    unique_domains, inverse = np.unique(domains, return_inverse=True)
    n = len(unique_domains)
    censored_counts = np.bincount(inverse, weights=censored, minlength=n).astype(int)
    allowed_counts = np.bincount(inverse, weights=allowed, minlength=n).astype(int)
    proxied_counts = np.bincount(inverse, weights=proxied, minlength=n).astype(int)
    bare_censored = np.bincount(
        inverse, weights=censored & bare, minlength=n
    ).astype(int)

    # Lazy fallback evidence for domains with no bare censored request:
    # an allowed-traffic corpus for substring checks, memoized per token.
    allowed_corpus: str | None = None
    token_seen: dict[str, bool] = {}

    def token_in_allowed(token: str) -> bool:
        nonlocal allowed_corpus
        if token not in token_seen:
            if allowed_corpus is None:
                allowed_corpus = "\n".join(
                    _matchable_texts(frame, observed_allowed_mask(frame))
                )
            token_seen[token] = token in allowed_corpus
        return token_seen[token]

    def domain_attributable(domain_index: int) -> bool:
        rows = np.flatnonzero((inverse == domain_index) & censored)
        for row in rows[:50]:  # a handful of requests decide it
            text = f"{paths[row]}?{queries[row]}".lower()
            tokens = [
                t for t in set(_TOKEN_RE.findall(text))
                if not _looks_like_identifier(t)
            ]
            if all(token_in_allowed(t) for t in tokens):
                return True
        return False

    total_censored = int(censored.sum())
    suspected = []
    for i, domain in enumerate(unique_domains):
        if is_ip_like(str(domain)):
            continue  # IP-based filtering is analyzed separately
        if censored_counts[i] < min_censored or allowed_counts[i] != 0:
            continue
        if bare_censored[i] >= 1 or domain_attributable(i):
            suspected.append(SuspectedDomain(
                domain=str(domain),
                censored=int(censored_counts[i]),
                censored_share_pct=percent(int(censored_counts[i]), total_censored),
                allowed=0,
                proxied=int(proxied_counts[i]),
            ))
    suspected.sort(key=lambda s: (-s.censored, s.domain))
    return suspected


@dataclass(frozen=True)
class SuspectedHost:
    """A host blocked individually while its domain stays reachable
    (e.g. the MSN Messenger gateway on the otherwise-allowed
    live.com)."""

    host: str
    censored: int


def recover_censored_hosts(
    frame: LogFrame,
    exclude_domains: set[str] | frozenset[str] = frozenset(),
    min_censored: int = 3,
) -> list[SuspectedHost]:
    """Recover hosts blocked individually (finer than Table 8).

    Same evidence standard as :func:`recover_censored_domains`, applied
    per hostname, restricted to hosts whose registered domain is *not*
    already suspected (those are explained by the domain rule).
    """
    hosts = frame.col("cs_host")
    domains = domain_column(frame)
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    paths = frame.col("cs_uri_path")
    queries = frame.col("cs_uri_query")
    no_query = (queries == "") | (queries == "-")
    bare = ((paths == "/") | (paths == "") | (paths == "-")) & no_query

    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    n = len(unique_hosts)
    censored_counts = np.bincount(inverse, weights=censored, minlength=n).astype(int)
    allowed_counts = np.bincount(inverse, weights=allowed, minlength=n).astype(int)
    bare_censored = np.bincount(inverse, weights=censored & bare, minlength=n).astype(int)
    domain_of_host = {}
    for host, domain in zip(hosts, domains):
        domain_of_host.setdefault(host, domain)

    results = []
    for i, host in enumerate(unique_hosts):
        if is_ip_like(str(host)):
            continue
        if domain_of_host.get(host) in exclude_domains:
            continue
        if (
            censored_counts[i] >= min_censored
            and allowed_counts[i] == 0
            and bare_censored[i] >= 1
        ):
            results.append(SuspectedHost(str(host), int(censored_counts[i])))
    results.sort(key=lambda s: (-s.censored, s.host))
    return results


@dataclass(frozen=True)
class RecoveredKeyword:
    """One recovered keyword with its censored coverage."""

    keyword: str
    coverage: int  # censored requests uniquely attributed to it


def never_allowed_domains(frame: LogFrame) -> frozenset[str]:
    """Domains with censored traffic and not a single allowed request.

    Their censored requests are *ambiguous* keyword evidence — the
    trigger could equally be a domain rule — so the conservative
    keyword hunter excludes them (the paper's step-2 caution).
    """
    domains = domain_column(frame)
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    unique_domains, inverse = np.unique(domains, return_inverse=True)
    n = len(unique_domains)
    censored_counts = np.bincount(inverse, weights=censored, minlength=n)
    allowed_counts = np.bincount(inverse, weights=allowed, minlength=n)
    return frozenset(
        str(domain)
        for domain, c, a in zip(unique_domains, censored_counts, allowed_counts)
        if c > 0 and a == 0
    )


def never_allowed_hosts(frame: LogFrame) -> frozenset[str]:
    """Hosts with censored traffic and no allowed request (the
    host-level analogue of :func:`never_allowed_domains`)."""
    hosts = frame.col("cs_host")
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    n = len(unique_hosts)
    censored_counts = np.bincount(inverse, weights=censored, minlength=n)
    allowed_counts = np.bincount(inverse, weights=allowed, minlength=n)
    return frozenset(
        str(host)
        for host, c, a in zip(unique_hosts, censored_counts, allowed_counts)
        if c > 0 and a == 0
    )


def recover_keywords(
    frame: LogFrame,
    exclude_domains: set[str] | frozenset[str] = frozenset(),
    exclude_hosts: set[str] | frozenset[str] = frozenset(),
    min_coverage: int = 5,
    max_keywords: int = 10,
    candidate_pool: int = 400,
    exclude_ambiguous: bool = True,
) -> list[RecoveredKeyword]:
    """Recover the keyword blacklist (the five strings of Table 10).

    Greedy maximum-coverage over candidate tokens: tokens of censored
    URLs that never occur — as substrings — anywhere in allowed
    traffic.  Each round selects the token covering the most remaining
    censored requests; covered requests are removed, mirroring the
    paper's iterative step.  Greedy selection naturally prefers
    ``proxy`` over correlated tokens like ``plugins``, because after
    ``proxy`` is chosen the correlated tokens cover nothing.

    With ``exclude_ambiguous`` (the default), requests to domains and
    hosts that are *never allowed* are dropped first: keyword evidence
    must come from mixed domains, where the contrast between censored
    and allowed URLs isolates the trigger string.
    """
    censored = censored_mask(frame)
    exclude_domains = set(exclude_domains)
    exclude_hosts = set(exclude_hosts)
    if exclude_ambiguous:
        exclude_domains |= never_allowed_domains(frame)
        exclude_hosts |= never_allowed_hosts(frame)
    if exclude_domains:
        domains = domain_column(frame)
        censored = censored & ~np.isin(
            domains, sorted(exclude_domains)
        )
    if exclude_hosts:
        censored = censored & ~np.isin(
            frame.col("cs_host"), sorted(exclude_hosts)
        )
    censored_texts = _matchable_texts(frame, censored)
    if not censored_texts:
        return []
    censored_hosts = frame.col("cs_host")[censored].tolist()
    allowed_corpus = "\n".join(
        _matchable_texts(frame, observed_allowed_mask(frame))
    )

    token_counts: dict[str, int] = {}
    for text in censored_texts:
        for token in set(_TOKEN_RE.findall(text)):
            token_counts[token] = token_counts.get(token, 0) + 1
    candidates = sorted(
        token_counts, key=lambda t: (-token_counts[t], t)
    )[:candidate_pool]
    # A blacklist string must never appear in allowed traffic.
    candidates = [c for c in candidates if c not in allowed_corpus]

    remaining = list(zip(censored_texts, censored_hosts))
    keywords: list[RecoveredKeyword] = []
    for _ in range(max_keywords):
        best_token = None
        best_score = (0, 0)
        for token in candidates:
            cover = sum(1 for text, _ in remaining if token in text)
            if cover == 0:
                continue
            # Tie-break on host diversity: a genuine policy string cuts
            # across hosts (toolbar + plugins + ads), whereas a merely
            # correlated token (e.g. 'plugins') is host-local.
            diversity = len({host for text, host in remaining if token in text})
            score = (cover, diversity)
            if score > best_score or (
                score == best_score
                and best_token is not None
                and token < best_token
            ):
                best_token, best_score = token, score
        if best_token is None or best_score[0] < min_coverage:
            break
        keywords.append(RecoveredKeyword(best_token, best_score[0]))
        remaining = [
            (text, host) for text, host in remaining if best_token not in text
        ]
        candidates.remove(best_token)
    return keywords


@dataclass(frozen=True)
class KeywordStats:
    """One Table 10 row."""

    keyword: str
    censored: int
    censored_share_pct: float  # of all censored traffic
    allowed: int
    proxied: int


def keyword_stats(
    frame: LogFrame, keywords: tuple[str, ...]
) -> list[KeywordStats]:
    """Compute Table 10 for a keyword list.

    Requests matching several keywords attribute to the first match in
    the given order.
    """
    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    proxied = proxied_mask(frame)
    hosts = frame.col("cs_host")
    paths = frame.col("cs_uri_path")
    queries = frame.col("cs_uri_query")
    counts = {k: [0, 0, 0] for k in keywords}  # censored, allowed, proxied
    for i in range(len(frame)):
        text = f"{hosts[i]}{paths[i]}?{queries[i]}".lower()
        for keyword in keywords:
            if keyword in text:
                if censored[i]:
                    counts[keyword][0] += 1
                elif proxied[i]:
                    counts[keyword][2] += 1
                elif allowed[i]:
                    counts[keyword][1] += 1
                break
    total_censored = int(censored.sum())
    rows = [
        KeywordStats(
            keyword=k,
            censored=c,
            censored_share_pct=percent(c, total_censored),
            allowed=a,
            proxied=p,
        )
        for k, (c, a, p) in counts.items()
    ]
    rows.sort(key=lambda r: (-r.censored, r.keyword))
    return rows


@dataclass(frozen=True)
class SuspectedCategoryRow:
    """One Table 9 row."""

    category: str
    domain_count: int
    censored_requests: int
    censored_share_pct: float


def categorize_suspected(
    suspected: list[SuspectedDomain],
    categorizer: TrustedSourceCategorizer,
    total_censored: int,
    top: int = 10,
) -> list[SuspectedCategoryRow]:
    """Compute Table 9: the suspected domains grouped by category."""
    by_category: dict[str, tuple[int, int]] = {}
    for domain in suspected:
        category = categorizer.categorize_domain(domain.domain)
        count, requests = by_category.get(category, (0, 0))
        by_category[category] = (count + 1, requests + domain.censored)
    rows = [
        SuspectedCategoryRow(
            category=category,
            domain_count=count,
            censored_requests=requests,
            censored_share_pct=percent(requests, total_censored),
        )
        for category, (count, requests) in by_category.items()
    ]
    rows.sort(key=lambda r: (-r.censored_requests, r.category))
    return rows[:top]
