"""Section 7.2: web proxies and VPNs.

Identifies "Anonymizer"-categorized hosts in the traffic, measures the
never-filtered share, and builds the two CDFs of Fig. 10: requests per
allowed anonymizer host, and the allowed/censored ratio of the
partially-filtered hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    censored_mask,
    observed_allowed_mask,
    percent,
)
from repro.categorizer import TrustedSourceCategorizer
from repro.frame import LogFrame


@dataclass(frozen=True)
class AnonymizerAnalysis:
    """Section 7.2's numbers plus Fig. 10 data."""

    hosts: int
    requests: int
    requests_share_pct: float  # of all traffic
    never_filtered_hosts: int
    never_filtered_hosts_pct: float
    never_filtered_requests_pct: float  # share of anonymizer requests
    partially_filtered_hosts: int
    #: Fig. 10(a): CDF of requests per never-filtered host.
    allowed_requests_cdf: tuple[tuple[float, float], ...]
    #: Fig. 10(b): CDF of allowed/censored ratio per filtered host.
    ratio_cdf: tuple[tuple[float, float], ...]
    majority_allowed_pct: float  # filtered hosts with ratio > 1


def anonymizer_analysis(
    frame: LogFrame, categorizer: TrustedSourceCategorizer
) -> AnonymizerAnalysis:
    """Compute Section 7.2 over one dataset (the paper uses D_sample
    for host discovery and D_full/D_denied for the ratio)."""
    from repro.stats.distributions import cdf_points

    hosts = frame.col("cs_host")
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    is_anonymizer_host = np.array(
        [categorizer.is_anonymizer(str(h)) for h in unique_hosts]
    )
    row_is_anonymizer = is_anonymizer_host[inverse]
    anonymizer_rows = int(row_is_anonymizer.sum())

    censored = censored_mask(frame)
    allowed = observed_allowed_mask(frame)
    n = len(unique_hosts)
    censored_per_host = np.bincount(
        inverse, weights=censored, minlength=n
    ).astype(int)
    allowed_per_host = np.bincount(
        inverse, weights=allowed, minlength=n
    ).astype(int)
    total_per_host = np.bincount(inverse, minlength=n)

    anonymizer_indices = np.flatnonzero(is_anonymizer_host)
    never_filtered = [
        i for i in anonymizer_indices if censored_per_host[i] == 0
    ]
    filtered = [i for i in anonymizer_indices if censored_per_host[i] > 0]

    never_requests = int(sum(total_per_host[i] for i in never_filtered))

    ratios = np.array(
        [
            allowed_per_host[i] / censored_per_host[i]
            for i in filtered
        ],
        dtype=float,
    )
    return AnonymizerAnalysis(
        hosts=len(anonymizer_indices),
        requests=anonymizer_rows,
        requests_share_pct=percent(anonymizer_rows, len(frame)),
        never_filtered_hosts=len(never_filtered),
        never_filtered_hosts_pct=percent(
            len(never_filtered), max(len(anonymizer_indices), 1)
        ),
        never_filtered_requests_pct=percent(
            never_requests, max(anonymizer_rows, 1)
        ),
        partially_filtered_hosts=len(filtered),
        allowed_requests_cdf=tuple(
            cdf_points(np.array([total_per_host[i] for i in never_filtered]))
        ),
        ratio_cdf=tuple(cdf_points(ratios)),
        majority_allowed_pct=percent(
            int((ratios > 1.0).sum()), max(len(ratios), 1)
        ),
    )
