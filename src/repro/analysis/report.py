"""Full-report orchestration: run every analysis of the paper over a
scenario and collect the results in one object.

This is what `examples/censorship_report.py` and several benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    anonymizers,
    categories,
    consistency,
    economics,
    googlecache,
    https_mitm,
    ipfilter,
    overview,
    p2p,
    proxies,
    redirects,
    socialmedia,
    stringfilter,
    temporal,
    toranalysis,
    users,
    weather,
)
from repro.bittorrent import TitleDatabase
from repro.datasets import ScenarioDatasets
from repro.geoip import builtin_registry
from repro.net.ip import parse_network
from repro.policy.syria import KEYWORDS
from repro.timeline import PROTEST_DAY, day_epoch


@dataclass
class CensorshipReport:
    """Every table/figure of the paper, computed over one scenario."""

    table1: list[overview.DatasetInventory]
    table3: dict[str, overview.TrafficBreakdown]
    table4: overview.TopDomains
    table5: list[temporal.WindowTopDomains]
    table6: proxies.ProxySimilarity
    table7: redirects.RedirectHosts
    table8: list[stringfilter.SuspectedDomain]
    table9: list[stringfilter.SuspectedCategoryRow]
    table10: list[stringfilter.KeywordStats]
    table11: list[ipfilter.CountryCensorship]
    table12: list[ipfilter.SubnetRow]
    table13: list[socialmedia.OsnRow]
    table14: list[socialmedia.FacebookPageRow]
    table15: list[socialmedia.PluginRow]
    fig1: overview.PortDistribution
    fig2: overview.DomainRequestDistribution
    fig3: list[categories.CategoryShare]
    fig4: users.UserAnalysis
    fig5: temporal.TrafficTimeseries
    fig6: temporal.RcvSeries
    fig7: proxies.ProxyLoadTimeseries
    fig8_hourly: toranalysis.HourlySeries
    fig8_proxy: toranalysis.ProxyCensoredShare
    fig9: toranalysis.RefilterSeries
    fig10: anonymizers.AnonymizerAnalysis
    https: overview.HttpsBreakdown
    tor: toranalysis.TorOverview
    bittorrent: p2p.BitTorrentAnalysis
    google_cache: googlecache.GoogleCacheAnalysis
    recovered_keywords: list[stringfilter.RecoveredKeyword] = field(
        default_factory=list
    )
    # Extension analyses (beyond the paper's numbered tables/figures).
    mitm: https_mitm.MitmCheck | None = None
    proxied_consistency: consistency.ProxiedConsistency | None = None
    keyword_weather: weather.KeywordWeather | None = None
    economics: economics.EconomicsIndices | None = None
    software_agents: list[users.SoftwareAgentRow] = field(default_factory=list)


def build_report(
    datasets: ScenarioDatasets,
    recover_keywords: bool = True,
) -> CensorshipReport:
    """Run the complete pipeline.

    ``recover_keywords=False`` skips the (slower) keyword-recovery
    search and reports Table 10 for the known keyword list only.
    """
    full = datasets.full
    geoip = builtin_registry()
    categorizer = datasets.categorizer

    aug_start = day_epoch("2011-08-01")
    aug_end = day_epoch("2011-08-06") + 86400

    table8 = stringfilter.recover_censored_domains(full)
    suspected_set = {row.domain for row in table8}
    breakdown_full = overview.traffic_breakdown(full)
    total_censored = breakdown_full.censored

    tor = toranalysis.identify_tor_traffic(full, datasets.generator.tor_directory)
    titledb = TitleDatabase(datasets.generator.torrent_catalog)
    ip_frame = ipfilter.ipv4_subset(full)

    recovered: list[stringfilter.RecoveredKeyword] = []
    if recover_keywords:
        # For keyword recovery, exclude every domain/host with
        # domain-level blocking evidence regardless of volume
        # (min_censored=1): a rarely-visited blocked domain would
        # otherwise leak its name tokens into the candidate pool.
        exclusion_set = {
            row.domain
            for row in stringfilter.recover_censored_domains(
                full, min_censored=1
            )
        }
        suspected_hosts = {
            row.host
            for row in stringfilter.recover_censored_hosts(
                full, exclude_domains=exclusion_set, min_censored=1
            )
        }
        recovered = stringfilter.recover_keywords(
            full,
            exclude_domains=exclusion_set,
            exclude_hosts=suspected_hosts,
        )

    return CensorshipReport(
        table1=overview.dataset_inventory({
            "Full": full,
            "Sample": datasets.sample,
            "User": datasets.user,
            "Denied": datasets.denied,
        }),
        table3={
            "full": breakdown_full,
            "sample": overview.traffic_breakdown(datasets.sample),
            "user": overview.traffic_breakdown(datasets.user),
            "denied": overview.traffic_breakdown(datasets.denied),
        },
        table4=overview.top_domains(full),
        table5=temporal.top_censored_windows(full, PROTEST_DAY),
        table6=proxies.proxy_similarity(full, day=PROTEST_DAY),
        table7=redirects.redirect_hosts(full),
        table8=table8,
        table9=stringfilter.categorize_suspected(
            table8, categorizer, total_censored
        ),
        table10=stringfilter.keyword_stats(full, KEYWORDS),
        table11=ipfilter.country_censorship_ratio(ip_frame, geoip),
        table12=ipfilter.israeli_subnets(
            ip_frame, datasets.policy.blocked_subnets + (
                # the paper's fifth subnet, mostly allowed:
                parse_network("212.150.0.0/16"),
            )
        ),
        table13=socialmedia.osn_breakdown(full),
        table14=socialmedia.facebook_pages(full),
        table15=socialmedia.facebook_plugins(full),
        fig1=overview.port_distribution(full),
        fig2=overview.domain_request_distribution(full),
        fig3=categories.censored_category_distribution(
            datasets.sample, categorizer
        ),
        fig4=users.user_analysis(datasets.user),
        fig5=temporal.traffic_timeseries(full, aug_start, aug_end),
        fig6=temporal.relative_censored_volume(full, PROTEST_DAY),
        fig7=proxies.proxy_load_timeseries(
            full, day_epoch("2011-08-03"), day_epoch("2011-08-04") + 86400
        ),
        fig8_hourly=toranalysis.tor_hourly_series(tor, aug_start, aug_end),
        fig8_proxy=toranalysis.proxy_censored_comparison(
            full, tor, "SG-44", aug_start, aug_end
        ),
        fig9=toranalysis.refilter_ratio(tor),
        fig10=anonymizers.anonymizer_analysis(full, categorizer),
        https=overview.https_breakdown(full),
        tor=toranalysis.tor_overview(tor),
        bittorrent=p2p.bittorrent_analysis(full, titledb),
        google_cache=googlecache.google_cache_analysis(
            full, suspected_set | {"panet.co.il", "free-syria.com"}
        ),
        recovered_keywords=recovered,
        mitm=https_mitm.https_mitm_check(full),
        proxied_consistency=consistency.proxied_consistency_by_domain(full),
        keyword_weather=weather.keyword_weather(full, KEYWORDS),
        economics=economics.censorship_economics(datasets.user),
        software_agents=users.software_agent_analysis(datasets.user),
    )
