"""Per-domain drill-down.

The tables aggregate; an investigator works domain by domain ("why is
wikimedia.org in the censored list?", "which facebook URLs get
through?").  :func:`domain_profile` assembles everything the logs say
about one registered domain: outcome counts, the exception mix, the
hosts underneath it, the most-blocked and most-allowed paths, and the
per-day censored series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    censored_mask,
    domain_column,
    observed_allowed_mask,
    percent,
    proxied_mask,
)
from repro.frame import LogFrame
from repro.timeline import epoch_day


@dataclass(frozen=True)
class PathStat:
    """One path's outcome counts within a domain."""

    path: str
    censored: int
    allowed: int


@dataclass(frozen=True)
class DomainProfile:
    """Everything the logs say about one registered domain."""

    domain: str
    requests: int
    allowed: int
    censored: int
    proxied: int
    errors: int
    censored_pct: float
    hosts: tuple[tuple[str, int], ...]  # (host, requests)
    exceptions: tuple[tuple[str, int], ...]
    top_censored_paths: tuple[PathStat, ...]
    top_allowed_paths: tuple[PathStat, ...]
    censored_by_day: tuple[tuple[str, int], ...]

    @property
    def fully_blocked(self) -> bool:
        """No allowed request ever — Table 8's evidence standard."""
        return self.allowed == 0 and self.censored > 0

    @property
    def mixed(self) -> bool:
        """Both outcomes observed — the keyword-collateral signature."""
        return self.allowed > 0 and self.censored > 0


def domain_profile(
    frame: LogFrame, domain: str, top_paths: int = 8
) -> DomainProfile:
    """Build the drill-down for one registered domain."""
    domains = domain_column(frame)
    of_domain = domains == domain
    sub = frame.where(of_domain)
    if len(sub) == 0:
        return DomainProfile(
            domain=domain, requests=0, allowed=0, censored=0, proxied=0,
            errors=0, censored_pct=0.0, hosts=(), exceptions=(),
            top_censored_paths=(), top_allowed_paths=(),
            censored_by_day=(),
        )

    censored = censored_mask(sub)
    allowed = observed_allowed_mask(sub)
    proxied = proxied_mask(sub)
    denied = sub.col("x_exception_id") != "-"
    errors = denied & ~censored

    hosts = tuple(
        (str(host), int(count)) for host, count in sub.value_counts("cs_host")
    )
    exceptions = tuple(
        (str(exc), int(count))
        for exc, count in sub.where(denied).value_counts("x_exception_id")
    ) if denied.any() else ()

    def path_stats(mask: np.ndarray) -> tuple[PathStat, ...]:
        selected = sub.where(mask)
        if len(selected) == 0:
            return ()
        stats = []
        paths = sub.col("cs_uri_path")
        for path, count in selected.value_counts("cs_uri_path")[:top_paths]:
            of_path = paths == path
            stats.append(PathStat(
                path=str(path),
                censored=int((of_path & censored).sum()),
                allowed=int((of_path & allowed).sum()),
            ))
        return tuple(stats)

    days = (sub.col("epoch") // 86400 * 86400)
    censored_days = days[censored]
    day_values, day_counts = np.unique(censored_days, return_counts=True)
    by_day = tuple(
        (epoch_day(int(day)), int(count))
        for day, count in zip(day_values, day_counts)
    )

    return DomainProfile(
        domain=domain,
        requests=len(sub),
        allowed=int(allowed.sum()),
        censored=int(censored.sum()),
        proxied=int(proxied.sum()),
        errors=int(errors.sum()),
        censored_pct=percent(int(censored.sum()), len(sub)),
        hosts=hosts,
        exceptions=exceptions,
        top_censored_paths=path_stats(censored),
        top_allowed_paths=path_stats(allowed),
        censored_by_day=by_day,
    )


def compare_domains(
    frame: LogFrame, domains: list[str]
) -> list[DomainProfile]:
    """Profiles for several domains, sorted by censored volume."""
    profiles = [domain_profile(frame, domain) for domain in domains]
    profiles.sort(key=lambda p: (-p.censored, p.domain))
    return profiles
