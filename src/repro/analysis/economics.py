"""Censorship-economics indices (extension of the paper's Section 8).

The paper frames the Syrian policy through Danezis & Anderson's
cost/benefit lens: blanket blocking is cheap but provokes unrest;
targeted blocking is subtle but leaks.  These indices quantify the
trade-off directly from the logs:

* **collateral index** — share of censored requests whose domain also
  serves allowed traffic (the request was caught by a substring, not by
  intent: Google toolbar, Facebook plugins, ads);
* **stealth index** — share of users who never see a censored
  response (high = censorship invisible to most of the population);
* **precision index** — share of censored requests attributable to a
  deliberate target (a never-allowed domain/host, an IP rule, or a
  redirect) rather than keyword collateral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import (
    censored_mask,
    domain_column,
    observed_allowed_mask,
    percent,
)
from repro.frame import LogFrame


@dataclass(frozen=True)
class EconomicsIndices:
    """The three indices plus their raw components."""

    censored_total: int
    collateral_requests: int
    collateral_index_pct: float
    targeted_requests: int
    precision_index_pct: float
    total_users: int
    unaffected_users: int
    stealth_index_pct: float


def censorship_economics(frame: LogFrame) -> EconomicsIndices:
    """Compute the indices over one dataset.

    The user-level stealth index needs client identities, so it is
    meaningful on D_user (hashed addresses); on zeroed datasets it
    degenerates to 0/1 and should be read accordingly.
    """
    censored = censored_mask(frame)
    censored_total = int(censored.sum())

    domains = domain_column(frame)
    allowed = observed_allowed_mask(frame)
    unique_domains, inverse = np.unique(domains, return_inverse=True)
    allowed_per_domain = np.bincount(
        inverse, weights=allowed, minlength=len(unique_domains)
    )
    domain_has_allowed = allowed_per_domain[inverse] > 0
    collateral = censored & domain_has_allowed
    targeted = censored & ~domain_has_allowed

    identities = np.array(
        [
            f"{c}\x00{a}"
            for c, a in zip(frame.col("c_ip"), frame.col("cs_user_agent"))
        ],
        dtype=object,
    )
    users, user_inverse = np.unique(identities, return_inverse=True)
    censored_per_user = np.bincount(
        user_inverse, weights=censored, minlength=len(users)
    )
    unaffected = int((censored_per_user == 0).sum())

    return EconomicsIndices(
        censored_total=censored_total,
        collateral_requests=int(collateral.sum()),
        collateral_index_pct=percent(int(collateral.sum()), censored_total),
        targeted_requests=int(targeted.sum()),
        precision_index_pct=percent(int(targeted.sum()), censored_total),
        total_users=len(users),
        unaffected_users=unaffected,
        stealth_index_pct=percent(unaffected, len(users)),
    )


def compare_policies(
    baseline: LogFrame, alternative: LogFrame
) -> dict[str, tuple[float, float]]:
    """Index-by-index comparison of two policy runs.

    Returns {index name: (baseline value, alternative value)} — the
    shape the what-if experiments report.
    """
    a = censorship_economics(baseline)
    b = censorship_economics(alternative)
    return {
        "collateral_index_pct": (a.collateral_index_pct, b.collateral_index_pct),
        "precision_index_pct": (a.precision_index_pct, b.precision_index_pct),
        "stealth_index_pct": (a.stealth_index_pct, b.stealth_index_pct),
    }
