"""Shared building blocks for the analyses."""

from __future__ import annotations

import numpy as np

from repro.frame import LogFrame
from repro.logmodel.classify import CENSOR_EXCEPTIONS, NO_EXCEPTION
from repro.net.url import is_ip_like, registered_domain

_CENSOR_LIST = sorted(CENSOR_EXCEPTIONS)


def censored_mask(frame: LogFrame) -> np.ndarray:
    """Requests denied by policy (policy_denied / policy_redirect)."""
    return np.isin(frame.col("x_exception_id"), _CENSOR_LIST)


def allowed_mask(frame: LogFrame) -> np.ndarray:
    """Requests with no exception."""
    return frame.col("x_exception_id") == NO_EXCEPTION


def denied_mask(frame: LogFrame) -> np.ndarray:
    """Requests with any exception (censored or error)."""
    return frame.col("x_exception_id") != NO_EXCEPTION


def error_mask(frame: LogFrame) -> np.ndarray:
    """Requests denied by a network error."""
    return denied_mask(frame) & ~censored_mask(frame)


def proxied_mask(frame: LogFrame) -> np.ndarray:
    """Requests answered from the proxy cache."""
    return frame.col("sc_filter_result") == "PROXIED"


def observed_allowed_mask(frame: LogFrame) -> np.ndarray:
    """Allowed *and* OBSERVED — the conservative allowed set the
    paper's string-recovery uses (PROXIED rows are excluded because a
    missing exception there does not prove the URL is allowed)."""
    return allowed_mask(frame) & (frame.col("sc_filter_result") == "OBSERVED")


def domain_column(frame: LogFrame) -> np.ndarray:
    """Registered domain of every row's ``cs_host``.

    IP-address hosts map to themselves.  Computed via the distinct
    hosts (cheap: hosts repeat massively).
    """
    hosts = frame.col("cs_host")
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    mapped = np.array(
        [registered_domain(host) for host in unique_hosts], dtype=object
    )
    return mapped[inverse]


def with_domain(frame: LogFrame) -> LogFrame:
    """The frame with a ``domain`` column added (cached pattern)."""
    if "domain" in frame:
        return frame
    return frame.with_column("domain", domain_column(frame))


def ip_host_mask(frame: LogFrame) -> np.ndarray:
    """Rows whose ``cs_host`` is a raw IPv4 address (the D_IPv4 set)."""
    hosts = frame.col("cs_host")
    unique_hosts, inverse = np.unique(hosts, return_inverse=True)
    flags = np.array([is_ip_like(host) for host in unique_hosts], dtype=bool)
    return flags[inverse]


def https_mask(frame: LogFrame) -> np.ndarray:
    """CONNECT/443 traffic (the paper's HTTPS slice)."""
    return (frame.col("cs_method") == "CONNECT") | (
        frame.col("cs_uri_port") == 443
    )


def percent(part: int | float, whole: int | float) -> float:
    """Percentage helper that tolerates empty denominators."""
    return 100.0 * part / whole if whole else 0.0
