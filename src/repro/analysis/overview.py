"""Section 4 of the paper: the statistical overview.

Covers Table 1 (dataset inventory), Table 3 (decision/exception
breakdown per dataset), Table 4 (top allowed/censored domains), Fig. 1
(destination-port distribution), Fig. 2 (requests-per-domain power
law) and the HTTPS paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.common import (
    allowed_mask,
    censored_mask,
    denied_mask,
    domain_column,
    https_mask,
    ip_host_mask,
    percent,
    proxied_mask,
)
from repro.frame import LogFrame
from repro.logmodel.classify import CENSOR_EXCEPTIONS, NO_EXCEPTION
from repro.stats.powerlaw import requests_per_domain_histogram
from repro.timeline import epoch_day


@dataclass(frozen=True)
class DatasetInventory:
    """Table 1: one row per dataset."""

    name: str
    requests: int
    days: tuple[str, ...]
    proxies: int


def dataset_inventory(datasets: dict[str, LogFrame]) -> list[DatasetInventory]:
    """Build Table 1 from named datasets."""
    rows = []
    for name, frame in datasets.items():
        if len(frame) == 0:
            rows.append(DatasetInventory(name, 0, (), 0))
            continue
        days = tuple(sorted({epoch_day(e) for e in np.unique(frame.col("epoch") // 86400 * 86400)}))
        proxies = frame.nunique("s_ip")
        rows.append(DatasetInventory(name, len(frame), days, proxies))
    return rows


@dataclass(frozen=True)
class ExceptionRow:
    """One Table 3 row: an exception id with count and share."""

    exception_id: str
    count: int
    share_pct: float


@dataclass(frozen=True)
class TrafficBreakdown:
    """Table 3 for one dataset: class totals plus per-exception rows."""

    total: int
    allowed: int
    proxied: int
    denied: int
    censored: int
    errors: int
    exception_rows: tuple[ExceptionRow, ...]

    @property
    def allowed_pct(self) -> float:
        """Allowed share of the dataset (%)."""
        return percent(self.allowed, self.total)

    @property
    def censored_pct(self) -> float:
        """Censored share of the dataset (%)."""
        return percent(self.censored, self.total)

    @property
    def denied_pct(self) -> float:
        """Denied (censored + errors) share of the dataset (%)."""
        return percent(self.denied, self.total)

    @property
    def proxied_pct(self) -> float:
        """PROXIED share of the dataset (%)."""
        return percent(self.proxied, self.total)


def traffic_breakdown(frame: LogFrame) -> TrafficBreakdown:
    """Compute Table 3 for one dataset."""
    total = len(frame)
    censored = int(censored_mask(frame).sum())
    denied = int(denied_mask(frame).sum())
    rows = []
    for exception_id, count in frame.value_counts("x_exception_id"):
        if exception_id == NO_EXCEPTION:
            continue
        rows.append(ExceptionRow(str(exception_id), count, percent(count, total)))
    rows.sort(key=lambda row: (-row.count, row.exception_id))
    return TrafficBreakdown(
        total=total,
        allowed=int(allowed_mask(frame).sum()),
        proxied=int(proxied_mask(frame).sum()),
        denied=denied,
        censored=censored,
        errors=denied - censored,
        exception_rows=tuple(rows),
    )


@dataclass(frozen=True)
class DomainRow:
    """One Table 4 row."""

    domain: str
    requests: int
    share_pct: float


@dataclass(frozen=True)
class TopDomains:
    """Table 4: top allowed and censored domains."""

    allowed: tuple[DomainRow, ...]
    censored: tuple[DomainRow, ...]


def top_domains(frame: LogFrame, n: int = 10) -> TopDomains:
    """Compute Table 4."""
    domains = domain_column(frame)
    with_dom = frame.with_column("domain", domains)

    def rows_for(mask: np.ndarray) -> tuple[DomainRow, ...]:
        subset = with_dom.where(mask)
        total = len(subset)
        return tuple(
            DomainRow(str(domain), count, percent(count, total))
            for domain, count in subset.groupby("domain").top(n)
        )

    return TopDomains(
        allowed=rows_for(allowed_mask(frame)),
        censored=rows_for(censored_mask(frame)),
    )


@dataclass(frozen=True)
class PortDistribution:
    """Fig. 1: per-port request counts for allowed and censored."""

    allowed: tuple[tuple[int, int], ...]  # (port, count), descending
    censored: tuple[tuple[int, int], ...]


def port_distribution(frame: LogFrame, top: int = 12) -> PortDistribution:
    """Compute Fig. 1's two distributions."""
    ports = frame.col("cs_uri_port")

    def rows_for(mask: np.ndarray) -> tuple[tuple[int, int], ...]:
        values, counts = np.unique(ports[mask], return_counts=True)
        order = np.argsort(-counts)[:top]
        return tuple((int(values[i]), int(counts[i])) for i in order)

    return PortDistribution(
        allowed=rows_for(allowed_mask(frame)),
        censored=rows_for(censored_mask(frame)),
    )


@dataclass(frozen=True)
class DomainRequestDistribution:
    """Fig. 2: (requests, #domains) histogram per traffic class."""

    allowed: tuple[tuple[int, int], ...]
    denied: tuple[tuple[int, int], ...]
    censored: tuple[tuple[int, int], ...]
    per_domain_counts: dict[str, np.ndarray] = field(repr=False, default_factory=dict)


def domain_request_distribution(frame: LogFrame) -> DomainRequestDistribution:
    """Compute Fig. 2's three curves."""
    domains = domain_column(frame)
    with_dom = frame.with_column("domain", domains)

    def counts_for(mask: np.ndarray) -> np.ndarray:
        subset = with_dom.where(mask)
        if len(subset) == 0:
            return np.empty(0, dtype=int)
        _, counts = np.unique(subset.col("domain"), return_counts=True)
        return counts

    allowed_counts = counts_for(allowed_mask(frame))
    denied_counts = counts_for(denied_mask(frame))
    censored_counts = counts_for(censored_mask(frame))
    return DomainRequestDistribution(
        allowed=tuple(requests_per_domain_histogram(allowed_counts)),
        denied=tuple(requests_per_domain_histogram(denied_counts)),
        censored=tuple(requests_per_domain_histogram(censored_counts)),
        per_domain_counts={
            "allowed": allowed_counts,
            "denied": denied_counts,
            "censored": censored_counts,
        },
    )


@dataclass(frozen=True)
class HttpsBreakdown:
    """Section 4's HTTPS paragraph."""

    https_requests: int
    https_share_pct: float  # of all traffic
    censored_https: int
    censored_share_pct: float  # of HTTPS traffic
    censored_to_ip: int
    censored_to_ip_pct: float  # of censored HTTPS


def https_breakdown(frame: LogFrame) -> HttpsBreakdown:
    """Compute the HTTPS statistics of Section 4."""
    https = https_mask(frame)
    censored = censored_mask(frame)
    censored_https = https & censored
    to_ip = censored_https & ip_host_mask(frame)
    n_https = int(https.sum())
    n_censored_https = int(censored_https.sum())
    return HttpsBreakdown(
        https_requests=n_https,
        https_share_pct=percent(n_https, len(frame)),
        censored_https=n_censored_https,
        censored_share_pct=percent(n_censored_https, n_https),
        censored_to_ip=int(to_ip.sum()),
        censored_to_ip_pct=percent(int(to_ip.sum()), n_censored_https),
    )
