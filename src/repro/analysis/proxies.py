"""Section 5.2: comparing the seven proxies.

Fig. 7 — per-proxy share of total and censored traffic over time;
Table 6 — cosine similarity between the proxies' censored-domain
vectors; plus the category-label observation (``none`` vs
``unavailable`` per proxy) the paper uses as configuration evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import censored_mask, domain_column
from repro.frame import LogFrame
from repro.logmodel.fields import PROXY_NAMES, proxy_name_from_ip
from repro.stats.similarity import pairwise_cosine
from repro.timeline import day_span


def proxy_names_column(frame: LogFrame) -> np.ndarray:
    """Map ``s_ip`` to SG-NN names, vectorized over distinct values."""
    ips = frame.col("s_ip")
    unique_ips, inverse = np.unique(ips, return_inverse=True)
    names = np.array([proxy_name_from_ip(ip) for ip in unique_ips], dtype=object)
    return names[inverse]


@dataclass(frozen=True)
class ProxyLoadTimeseries:
    """Fig. 7: per-proxy request share per time bin."""

    bin_epochs: np.ndarray
    proxies: tuple[str, ...]
    total_shares: np.ndarray  # shape (proxies, bins), percent
    censored_shares: np.ndarray  # same, censored traffic only


def proxy_load_timeseries(
    frame: LogFrame,
    start_epoch: int,
    end_epoch: int,
    bin_seconds: int = 3600,
) -> ProxyLoadTimeseries:
    """Compute Fig. 7 over [start, end)."""
    epochs = frame.col("epoch")
    in_range = (epochs >= start_epoch) & (epochs < end_epoch)
    names = proxy_names_column(frame)
    censored = censored_mask(frame)
    bins = np.arange(start_epoch, end_epoch + bin_seconds, bin_seconds)
    n_bins = len(bins) - 1

    total_counts = np.zeros((len(PROXY_NAMES), n_bins))
    censored_counts = np.zeros((len(PROXY_NAMES), n_bins))
    for i, proxy in enumerate(PROXY_NAMES):
        of_proxy = in_range & (names == proxy)
        total_counts[i], _ = np.histogram(epochs[of_proxy], bins=bins)
        censored_counts[i], _ = np.histogram(
            epochs[of_proxy & censored], bins=bins
        )

    def shares(counts: np.ndarray) -> np.ndarray:
        totals = counts.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(totals > 0, 100.0 * counts / np.maximum(totals, 1), 0.0)

    return ProxyLoadTimeseries(
        bin_epochs=bins[:-1],
        proxies=PROXY_NAMES,
        total_shares=shares(total_counts),
        censored_shares=shares(censored_counts),
    )


def censored_domain_vectors(
    frame: LogFrame, day: str | None = None
) -> dict[str, dict[str, int]]:
    """Per-proxy censored-request counts by domain (Table 6 input)."""
    mask = censored_mask(frame)
    if day is not None:
        start, end = day_span(day)
        epochs = frame.col("epoch")
        mask &= (epochs >= start) & (epochs < end)
    censored = frame.where(mask)
    names = proxy_names_column(censored)
    domains = domain_column(censored)
    vectors: dict[str, dict[str, int]] = {name: {} for name in PROXY_NAMES}
    for name, domain in zip(names, domains):
        vector = vectors[name]
        vector[domain] = vector.get(domain, 0) + 1
    return vectors


@dataclass(frozen=True)
class ProxySimilarity:
    """Table 6: the similarity matrix."""

    proxies: tuple[str, ...]
    matrix: tuple[tuple[float, ...], ...]

    def value(self, a: str, b: str) -> float:
        """Similarity between proxies *a* and *b*."""
        return self.matrix[self.proxies.index(a)][self.proxies.index(b)]


def proxy_similarity(frame: LogFrame, day: str | None = None) -> ProxySimilarity:
    """Compute Table 6 (optionally restricted to one day, as the paper
    does for 2011-08-03)."""
    vectors = censored_domain_vectors(frame, day)
    names, matrix = pairwise_cosine(vectors, order=list(PROXY_NAMES))
    return ProxySimilarity(
        proxies=tuple(names),
        matrix=tuple(tuple(row) for row in matrix),
    )


def category_labels_by_proxy(frame: LogFrame) -> dict[str, dict[str, int]]:
    """Distinct ``cs_categories`` values per proxy with counts.

    Reproduces the paper's observation that the default category is
    named ``none`` on two proxies and ``unavailable`` on the rest.
    """
    names = proxy_names_column(frame)
    labels = frame.col("cs_categories")
    result: dict[str, dict[str, int]] = {}
    for proxy in PROXY_NAMES:
        mask = names == proxy
        values, counts = np.unique(labels[mask], return_counts=True)
        result[proxy] = {
            str(value): int(count) for value, count in zip(values, counts)
        }
    return result
