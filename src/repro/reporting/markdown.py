"""Markdown rendering of a full censorship report.

Turns a :class:`~repro.analysis.report.CensorshipReport` into one
self-contained Markdown document — the shareable artifact of a
simulation run (``repro report`` and the examples print ASCII; this is
the file-output path).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += [
        "| " + " | ".join(str(value) for value in row) + " |" for row in rows
    ]
    return "\n".join(lines)


def report_to_markdown(
    report, title: str = "Censorship report", metrics=None
) -> str:
    """Render the full report as Markdown.

    A :class:`~repro.metrics.MetricsRegistry` collected during the run
    appends a human-readable "Pipeline metrics" section (shard
    throughput, hot-path counters, timers).
    """
    parts: list[str] = [f"# {title}", ""]

    full = report.table3["full"]
    parts += [
        "## Overview",
        "",
        f"{full.total:,} requests — allowed {full.allowed_pct:.2f} %, "
        f"censored {full.censored_pct:.2f} %, errors "
        f"{full.denied_pct - full.censored_pct:.2f} %, proxied "
        f"{full.proxied_pct:.2f} %.",
        "",
        "### Exceptions",
        "",
        _md_table(
            ["Exception", "Requests", "% of traffic"],
            [
                [row.exception_id, row.count, f"{row.share_pct:.2f}"]
                for row in full.exception_rows
            ],
        ),
        "",
        "### Top domains",
        "",
        _md_table(
            ["Allowed", "%", "Censored", "%"],
            [
                [
                    a.domain, f"{a.share_pct:.2f}",
                    c.domain, f"{c.share_pct:.2f}",
                ]
                for a, c in zip(report.table4.allowed, report.table4.censored)
            ],
        ),
        "",
    ]

    parts += [
        "## Recovered policy",
        "",
        f"Suspected always-blocked domains: {len(report.table8)}.",
        "",
        _md_table(
            ["Domain", "Censored requests", "% of censored"],
            [
                [row.domain, row.censored, f"{row.censored_share_pct:.2f}"]
                for row in report.table8[:12]
            ],
        ),
        "",
        "Keywords (recovered: "
        + ", ".join(f"`{k.keyword}`" for k in report.recovered_keywords)
        + "):",
        "",
        _md_table(
            ["Keyword", "Censored", "% of censored", "Allowed"],
            [
                [row.keyword, row.censored,
                 f"{row.censored_share_pct:.2f}", row.allowed]
                for row in report.table10
            ],
        ),
        "",
    ]

    parts += [
        "## Censored categories",
        "",
        _md_table(
            ["Category", "Requests", "%"],
            [[s.category, s.requests, f"{s.share_pct:.2f}"] for s in report.fig3],
        ),
        "",
        "## Proxies",
        "",
        _md_table(
            ["", *report.table6.proxies],
            [
                [a, *(f"{report.table6.value(a, b):.2f}"
                      for b in report.table6.proxies)]
                for a in report.table6.proxies
            ],
        ),
        "",
    ]

    parts += [
        "## Circumvention",
        "",
        f"- **Tor**: {report.tor.total_requests} requests, "
        f"{report.tor.http_share_pct:.1f} % directory traffic, "
        f"{report.tor.censored} censored by "
        f"{sorted(report.tor.censored_by_proxy) or 'nobody'}.",
        f"- **BitTorrent**: {report.bittorrent.announce_requests} announces, "
        f"{report.bittorrent.allowed_share_pct:.2f} % allowed; "
        f"{report.bittorrent.circumvention_announces} circumvention-tool "
        "announces.",
        f"- **Google cache**: {report.google_cache.requests} fetches, "
        f"{report.google_cache.censored_content_fetches} reached otherwise-"
        "censored content.",
        f"- **Anonymizers**: {report.fig10.hosts} hosts, "
        f"{report.fig10.never_filtered_hosts_pct:.1f} % never filtered.",
        "",
    ]

    values = report.fig9.rfilter[~np.isnan(report.fig9.rfilter)]
    if len(values):
        parts += [
            f"Tor R_filter: mean {values.mean():.2f}, std {values.std():.2f} "
            f"over {len(values)} bins.",
            "",
        ]

    if metrics is not None:
        from repro.metrics import metrics_to_markdown

        parts += [metrics_to_markdown(metrics), ""]
    return "\n".join(parts)
