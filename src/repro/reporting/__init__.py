"""ASCII rendering of analysis results.

Used by the examples and the benchmark harness to print the same rows
and series the paper's tables and figures report.
"""

from repro.reporting.tables import format_pct, render_series, render_table

__all__ = ["render_table", "render_series", "format_pct"]
