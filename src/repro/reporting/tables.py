"""Plain-text table and series rendering."""

from __future__ import annotations

from collections.abc import Sequence


def format_pct(value: float, digits: int = 2) -> str:
    """Format a percentage the way the paper prints them."""
    return f"{value:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for i, value in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def render_series(
    points: Sequence[tuple[object, object]],
    title: str | None = None,
    max_points: int = 30,
) -> str:
    """Render an (x, y) series, downsampled for readability."""
    parts = []
    if title:
        parts.append(title)
    if not points:
        parts.append("(empty series)")
        return "\n".join(parts)
    step = max(1, len(points) // max_points)
    for x, y in list(points)[::step]:
        y_text = f"{y:.4f}" if isinstance(y, float) else str(y)
        parts.append(f"  {x}: {y_text}")
    return "\n".join(parts)


def render_bar_chart(
    items: Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render labelled horizontal bars (for the figure benches)."""
    parts = []
    if title:
        parts.append(title)
    if not items:
        parts.append("(no data)")
        return "\n".join(parts)
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    for label, value in items:
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        parts.append(f"  {label.ljust(label_width)}  {bar} {value:.2f}")
    return "\n".join(parts)
