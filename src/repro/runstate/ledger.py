"""The durable run ledger: manifest, journal, artifacts, lock.

A checkpoint directory makes a sharded run survive process death.  Its
layout:

``MANIFEST.json``
    The run's identity, written atomically when the ledger is first
    opened: ledger schema version, the caller's *fingerprint* (seed,
    request volume, config digest, command — whatever determines the
    shard results), and the shard plan (the ordered shard labels).  A
    resume whose fingerprint or plan differs is refused: a ledger only
    ever completes the run it was started for.

``journal.jsonl``
    Append-only, fsync'd after every line.  One JSON object per
    completed shard: the shard label, the artifact's relative path,
    its SHA-256, and the shard's record count and wall time.  A crash
    can tear at most the final line, which the reader skips; a shard
    re-recorded by a later attempt simply appends again (last entry
    wins).

``artifacts/<label-slug>-<hash8>.pkl``
    One pickled :class:`ShardArtifact` per completed shard, written
    via tmp + ``os.replace`` + fsync, so an artifact either exists in
    full or not at all.  The journal's SHA-256 is over these exact
    bytes; resume re-hashes before trusting them, and a tampered or
    truncated artifact is treated as not-done and re-run.

``LOCK``
    Holds the owning pid.  A second run on the same directory is
    refused while the owner is alive; a lock whose pid is dead is
    stale and silently reclaimed.  Reclaim is atomic: a contender
    renames the stale lock aside to a pid-unique tomb name before
    re-competing on the ``O_EXCL`` create, so when two processes race
    for the same stale lock exactly one ends up holding the directory
    and the other sees :class:`CheckpointLocked`.

:class:`RunCheckpoint` is the engine-facing object
(``run_sharded(checkpoint=...)``): :meth:`begin` verifies the
fingerprint and returns the verified completed shards, :meth:`record`
persists one freshly completed shard, :meth:`close` releases the
lock.  :func:`audit_run` is the read-only integrity check behind
``repro verify-run``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.atomicio import atomic_write_bytes, atomic_write_text

#: Version tag of the ledger layout; a manifest with a different tag
#: is refused rather than misread.
LEDGER_SCHEMA = "repro.runstate/1"

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
ARTIFACT_DIR = "artifacts"
LOCK_NAME = "LOCK"

#: Pickle protocol pinned so artifact bytes (and their recorded
#: hashes) do not depend on the writing interpreter's default.
PICKLE_PROTOCOL = 4


class RunStateError(RuntimeError):
    """Base class for checkpoint/ledger failures."""


class FingerprintMismatch(RunStateError):
    """The ledger was started for a different run than this one."""


class CheckpointLocked(RunStateError):
    """Another live process owns this checkpoint directory."""


class LedgerExists(RunStateError):
    """The directory already holds a ledger and resume was not
    requested."""


@dataclass
class ShardArtifact:
    """What the ledger persists for one completed shard.

    ``result`` is the shard's merge-ready value (a pipeline sink, a
    ``(StreamingAnalysis, ReadStats)`` pair, a frame — whatever the
    task returned); ``registry`` carries the shard's worker-local
    metrics when the run was instrumented, so a resumed run's
    aggregate counters match an uninterrupted one.
    """

    result: Any
    records: int = 0
    wall_seconds: float = 0.0
    registry: Any = None


def _canonical(value):
    """JSON-normalize *value* so fingerprints compare structurally
    (tuples become lists, keys sort)."""
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def config_digest(config) -> str:
    """A stable SHA-256 over a dataclass config's full field set."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fingerprint(command: str, **facets) -> dict:
    """Assemble a fingerprint dict for :class:`RunCheckpoint`.

    *facets* are whatever determines the shard results: the config
    digest and seed for simulate/report, the input paths and sizes for
    analyze.  The shard plan itself is recorded separately at
    :meth:`RunCheckpoint.begin`.
    """
    return _canonical({"command": command, **facets})


def artifact_name(label: str) -> str:
    """The artifact filename for a shard label.

    Labels contain ``:`` and arbitrary file-name characters; the slug
    keeps them readable and the label-hash suffix keeps distinct
    labels collision-free.
    """
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_") or "shard"
    token = hashlib.sha256(label.encode("utf-8")).hexdigest()[:8]
    return f"{slug}-{token}.pkl"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def read_journal(path: Path) -> dict[str, dict]:
    """Parse the journal into ``{shard_id: entry}``, last entry wins.

    A torn final line (the one write a crash can interrupt) and any
    malformed line are skipped rather than fatal — the artifacts they
    would have pointed at simply count as not-done.
    """
    entries: dict[str, dict] = {}
    if not path.exists():
        return entries
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        shard_id = entry.get("shard_id")
        if isinstance(shard_id, str) and "artifact" in entry:
            entries[shard_id] = entry
    return entries


def append_journal_entry(path: Path, entry: Mapping) -> None:
    """Append one fsync'd JSON line to a journal at *path*.

    Safe for concurrent appenders: the line lands via a single
    ``os.write`` on an ``O_APPEND`` descriptor, which POSIX makes
    atomic for line-sized writes — distributed workers share one
    journal without a lock, and a reader sees whole lines (or one torn
    tail, which :func:`read_journal` skips).
    """
    data = (json.dumps(dict(entry)) + "\n").encode("utf-8")
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        os.write(fd, data)
        try:
            os.fsync(fd)
        except OSError:
            pass
    finally:
        os.close(fd)


class RunCheckpoint:
    """Durable checkpoint/resume for one :func:`run_sharded` dispatch.

    Construct with the checkpoint *directory* and the run's
    *fingerprint* (see :func:`run_fingerprint`).  ``resume=False``
    (the default) starts a fresh ledger and refuses a directory that
    already holds one; ``resume=True`` verifies the existing ledger's
    fingerprint and shard plan against this run and loads every
    journaled shard whose artifact still hashes clean.
    """

    def __init__(
        self,
        directory: Path | str,
        fingerprint: Mapping,
        *,
        resume: bool = False,
    ):
        self.directory = Path(directory)
        self.fingerprint = _canonical(dict(fingerprint))
        self.resume = resume
        self._locked = False

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    @property
    def lock_path(self) -> Path:
        return self.directory / LOCK_NAME

    @property
    def artifact_dir(self) -> Path:
        return self.directory / ARTIFACT_DIR

    # -- the lockfile ------------------------------------------------------

    def _acquire_lock(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        # The lock is created by hard-linking a pid-unique tmp file
        # that already contains our pid: like O_EXCL, link picks
        # exactly one winner, but the lock becomes visible with its
        # owner already recorded — no window where a contender can
        # read a freshly created, still-empty lock and misjudge it
        # stale.
        tmp = self.lock_path.with_name(f"{LOCK_NAME}.{os.getpid()}.tmp")
        tmp.write_text(str(os.getpid()))
        try:
            while True:
                try:
                    os.link(tmp, self.lock_path)
                except FileExistsError:
                    pass
                else:
                    self._locked = True
                    return
                owner = self._lock_owner()
                if owner is not None:
                    raise CheckpointLocked(
                        f"checkpoint directory {self.directory} is in use "
                        f"by pid {owner} (lockfile {self.lock_path}); "
                        "refusing a concurrent run"
                    ) from None
                # Stale lock: the recorded pid is gone (that is the
                # crash this module exists for) — reclaim it.  The
                # reclaim must be atomic: a bare unlink would let two
                # contenders each remove-and-create, both believing
                # they won.  Renaming the stale file aside to a
                # pid-unique tomb succeeds for exactly one contender
                # (the other gets ENOENT), and either way the winner is
                # decided by the link create on the next loop pass.
                tomb = self.lock_path.with_name(
                    f"{LOCK_NAME}.stale-{os.getpid()}"
                )
                try:
                    os.rename(self.lock_path, tomb)
                except FileNotFoundError:
                    continue  # lost the rename race; re-compete
                # The lock we tombed may not be the stale one we
                # inspected: a rival can reclaim the stale lock and
                # install its own between our staleness check and our
                # rename.  The tomb's content says whose lock we took —
                # a live owner means we must put it back (link never
                # clobbers a newer lock) and re-compete, which raises
                # CheckpointLocked against the restored owner.
                if self._lock_owner(tomb) is not None:
                    try:
                        os.link(tomb, self.lock_path)
                    except FileExistsError:
                        # A third contender locked meanwhile.  Leave
                        # the tomb so the displaced owner's lock stays
                        # inspectable rather than silently vanishing.
                        continue
                tomb.unlink(missing_ok=True)
        finally:
            tmp.unlink(missing_ok=True)

    def _lock_owner(self, path: Path | None = None) -> int | None:
        """The live pid holding the lock at *path* (default: the run's
        lockfile), or None if the lock is stale/unreadable."""
        try:
            pid = int((path or self.lock_path).read_text().strip())
        except (OSError, ValueError):
            return None
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, OverflowError):
            # No such process (or a pid no real process could have):
            # the lock is stale.
            return None
        except PermissionError:
            pass  # alive, just not ours to signal
        return pid

    # -- lifecycle ---------------------------------------------------------

    def begin(self, labels: Sequence[str]) -> dict[str, ShardArtifact]:
        """Open the ledger for a run over *labels*.

        Acquires the lock, writes or verifies the manifest, and
        returns the verified completed shards as ``{label:
        ShardArtifact}`` — empty for a fresh run.  Raises
        :class:`FingerprintMismatch` when the existing ledger belongs
        to a different run, :class:`LedgerExists` when the directory
        already holds a ledger and ``resume`` was not requested, and
        :class:`CheckpointLocked` on a live concurrent run.
        """
        labels = [str(label) for label in labels]
        if len(set(labels)) != len(labels):
            raise RunStateError(
                "checkpointing requires unique shard labels; got "
                f"duplicates in {labels!r}"
            )
        self._acquire_lock()
        try:
            if self.manifest_path.exists():
                if not self.resume:
                    raise LedgerExists(
                        f"{self.directory} already holds a run ledger; "
                        "pass --resume to continue it or choose a fresh "
                        "--checkpoint-dir"
                    )
                self._verify_manifest(labels)
                return self._load_verified(labels)
            self._write_manifest(labels)
            return {}
        except BaseException:
            self.close()
            raise

    def load_completed(self, labels: Sequence[str]) -> dict[str, ShardArtifact]:
        """Re-read the journal and return every verified completed
        shard among *labels*.

        Unlike :meth:`begin`, this can be called repeatedly while a
        run is in flight — the distributed coordinator polls it to
        watch workers append to the shared journal.
        """
        return self._load_verified([str(label) for label in labels])

    def _write_manifest(self, labels: list[str]) -> None:
        manifest = {
            "schema": LEDGER_SCHEMA,
            "fingerprint": self.fingerprint,
            "shards": labels,
        }
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2) + "\n"
        )

    def _verify_manifest(self, labels: list[str]) -> None:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise RunStateError(
                f"unreadable run manifest {self.manifest_path}: {error}"
            ) from error
        if manifest.get("schema") != LEDGER_SCHEMA:
            raise FingerprintMismatch(
                f"{self.directory} uses ledger schema "
                f"{manifest.get('schema')!r}, this build writes "
                f"{LEDGER_SCHEMA!r}"
            )
        stored = manifest.get("fingerprint")
        if stored != self.fingerprint:
            diff = sorted(
                key
                for key in set(stored or {}) | set(self.fingerprint)
                if (stored or {}).get(key) != self.fingerprint.get(key)
            )
            raise FingerprintMismatch(
                f"{self.directory} belongs to a different run — "
                f"fingerprint differs on {diff}: ledger has "
                f"{ {k: (stored or {}).get(k) for k in diff} }, this run "
                f"has { {k: self.fingerprint.get(k) for k in diff} }"
            )
        if manifest.get("shards") != labels:
            raise FingerprintMismatch(
                f"{self.directory} was planned over "
                f"{manifest.get('shards')!r}, this run shards into "
                f"{labels!r}"
            )

    def _load_verified(self, labels: list[str]) -> dict[str, ShardArtifact]:
        wanted = set(labels)
        loaded: dict[str, ShardArtifact] = {}
        for shard_id, entry in read_journal(self.journal_path).items():
            if shard_id not in wanted:
                continue
            artifact = self._read_artifact(entry)
            if artifact is not None:
                loaded[shard_id] = artifact
        return loaded

    def _read_artifact(self, entry: dict) -> ShardArtifact | None:
        """Load one journaled artifact, or None if it fails
        verification (missing, hash mismatch, unpicklable)."""
        path = self.directory / entry["artifact"]
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if _sha256(data) != entry.get("sha256"):
            return None
        try:
            artifact = pickle.loads(data)
        except Exception:
            return None
        if not isinstance(artifact, ShardArtifact):
            return None
        return artifact

    def record(
        self,
        label: str,
        result,
        *,
        records: int = 0,
        wall_seconds: float = 0.0,
        registry=None,
    ) -> None:
        """Persist one completed shard: atomic artifact, then a
        fsync'd journal line pointing at it.

        Ordering is the durability argument: the artifact is fully on
        disk (tmp + replace + fsync) before the journal names it, so a
        journal entry always points at complete bytes, and a crash
        between the two merely re-runs one shard.
        """
        artifact = ShardArtifact(
            result=result,
            records=records,
            wall_seconds=wall_seconds,
            registry=registry,
        )
        data = pickle.dumps(artifact, protocol=PICKLE_PROTOCOL)
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        relative = f"{ARTIFACT_DIR}/{artifact_name(label)}"
        atomic_write_bytes(self.directory / relative, data, unique_tmp=True)
        append_journal_entry(self.journal_path, {
            "shard_id": label,
            "artifact": relative,
            "sha256": _sha256(data),
            "records": records,
            "wall_seconds": wall_seconds,
        })

    def close(self) -> None:
        """Release the lock (idempotent)."""
        if self._locked:
            self.lock_path.unlink(missing_ok=True)
            self._locked = False

    def __enter__(self) -> "RunCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the read-only audit (repro verify-run) ----------------------------------

@dataclass
class ShardAuditEntry:
    """One shard's verdict in a ledger audit."""

    shard_id: str
    status: str  # "ok" | "pending" | "missing" | "hash-mismatch" | "unreadable"
    detail: str = ""

    @property
    def damaged(self) -> bool:
        return self.status in ("missing", "hash-mismatch", "unreadable")


@dataclass
class RunAudit:
    """The full result of auditing one checkpoint directory."""

    directory: Path
    errors: list[str] = field(default_factory=list)
    entries: list[ShardAuditEntry] = field(default_factory=list)
    #: the manifest's recorded run identity (command, config digest,
    #: regime, …) — None when the manifest was unreadable.
    fingerprint: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the ledger is readable and undamaged (pending
        shards are not damage — they are simply not done yet)."""
        return not self.errors and not any(
            entry.damaged for entry in self.entries
        )

    @property
    def completed(self) -> int:
        return sum(1 for entry in self.entries if entry.status == "ok")

    def to_json(self) -> dict:
        """The machine-readable audit (``repro verify-run --json``).

        Groups shards by verdict so CI drills can assert on structure
        — ``completed``/``pending`` are plain label lists, ``damaged``
        keeps the per-shard status and detail.
        """
        return {
            "schema": "repro.verify/1",
            "directory": str(self.directory),
            "ok": self.ok,
            "fingerprint": self.fingerprint,
            "errors": list(self.errors),
            "counts": {
                "planned": len(self.entries),
                "completed": self.completed,
                "pending": sum(
                    1 for e in self.entries if e.status == "pending"
                ),
                "damaged": sum(1 for e in self.entries if e.damaged),
            },
            "shards": {
                "completed": [
                    e.shard_id for e in self.entries if e.status == "ok"
                ],
                "pending": [
                    e.shard_id for e in self.entries if e.status == "pending"
                ],
                "damaged": [
                    {
                        "shard_id": e.shard_id,
                        "status": e.status,
                        "detail": e.detail,
                    }
                    for e in self.entries
                    if e.damaged
                ],
            },
        }


def audit_run(directory: Path | str) -> RunAudit:
    """Audit a checkpoint directory: manifest readability, journal
    integrity, and every journaled artifact's SHA-256.

    Never mutates the directory.  Shards planned in the manifest but
    absent from the journal report as ``pending``; a journal entry
    whose artifact is missing, fails its hash, or does not unpickle
    reports as damage.
    """
    directory = Path(directory)
    audit = RunAudit(directory=directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        audit.errors.append(f"unreadable manifest {manifest_path}: {error}")
        return audit
    if manifest.get("schema") != LEDGER_SCHEMA:
        audit.errors.append(
            f"unknown ledger schema {manifest.get('schema')!r} "
            f"(expected {LEDGER_SCHEMA!r})"
        )
        return audit
    stored = manifest.get("fingerprint")
    audit.fingerprint = stored if isinstance(stored, dict) else None
    planned = manifest.get("shards") or []
    journal = read_journal(directory / JOURNAL_NAME)
    for shard_id in planned:
        entry = journal.pop(shard_id, None)
        audit.entries.append(_audit_entry(directory, shard_id, entry))
    for shard_id, entry in journal.items():  # journaled but unplanned
        checked = _audit_entry(directory, shard_id, entry)
        checked.detail = (checked.detail + " (not in the shard plan)").strip()
        audit.entries.append(checked)
    return audit


def _audit_entry(
    directory: Path, shard_id: str, entry: dict | None
) -> ShardAuditEntry:
    if entry is None:
        return ShardAuditEntry(shard_id, "pending", "no journal entry")
    path = directory / entry["artifact"]
    try:
        data = path.read_bytes()
    except OSError as error:
        return ShardAuditEntry(shard_id, "missing", str(error))
    digest = _sha256(data)
    if digest != entry.get("sha256"):
        return ShardAuditEntry(
            shard_id,
            "hash-mismatch",
            f"journal records {str(entry.get('sha256'))[:12]}…, "
            f"artifact hashes {digest[:12]}…",
        )
    try:
        artifact = pickle.loads(data)
    except Exception as error:
        return ShardAuditEntry(shard_id, "unreadable", repr(error))
    if not isinstance(artifact, ShardArtifact):
        return ShardAuditEntry(
            shard_id, "unreadable", f"not a ShardArtifact: {type(artifact)}"
        )
    return ShardAuditEntry(
        shard_id, "ok", f"{artifact.records} records, sha256 {digest[:12]}…"
    )
