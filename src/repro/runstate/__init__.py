"""Durable run state: crash-safe checkpoint/resume for sharded runs.

PR 4's resilience layer keeps a run alive through *in-process* faults
(retries, quarantine, corrupted reads); this package covers the
failure those cannot: the process itself dying mid-run.  A checkpoint
directory holds an atomic, checksummed run ledger — manifest
(fingerprint + shard plan), an append-only fsync'd journal, and one
pickled artifact per completed shard — and
``run_sharded(checkpoint=...)`` loads verified completed shards into
the merge instead of re-running them.  Because every shard replays a
deterministic stream and every sink round-trips through pickle, a
killed-and-resumed run produces byte-identical output to an
uninterrupted one.

The CLI surface is ``--checkpoint-dir``/``--resume`` on
``simulate``/``analyze``/``report`` and ``repro verify-run DIR``
(:func:`audit_run`) for offline integrity checks.
"""

from repro.runstate.ledger import (
    ARTIFACT_DIR,
    JOURNAL_NAME,
    LEDGER_SCHEMA,
    LOCK_NAME,
    MANIFEST_NAME,
    CheckpointLocked,
    FingerprintMismatch,
    LedgerExists,
    RunAudit,
    RunCheckpoint,
    RunStateError,
    ShardArtifact,
    ShardAuditEntry,
    append_journal_entry,
    artifact_name,
    audit_run,
    config_digest,
    read_journal,
    run_fingerprint,
)

__all__ = [
    "append_journal_entry",
    "ARTIFACT_DIR",
    "JOURNAL_NAME",
    "LEDGER_SCHEMA",
    "LOCK_NAME",
    "MANIFEST_NAME",
    "CheckpointLocked",
    "FingerprintMismatch",
    "LedgerExists",
    "RunAudit",
    "RunCheckpoint",
    "RunStateError",
    "ShardArtifact",
    "ShardAuditEntry",
    "artifact_name",
    "audit_run",
    "config_digest",
    "read_journal",
    "run_fingerprint",
]
