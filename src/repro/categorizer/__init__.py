"""URL categorization substrate (McAfee TrustedSource stand-in).

The paper uses McAfee's TrustedSource to characterize censored websites
(Fig. 3, Table 9) because the proxies' own category database was absent.
This package provides the equivalent offline tool: a URL-aware
categorizer built from the site universe, with path-level overrides
(e.g. Facebook social-plugin endpoints categorize as "Content Server",
matching how infrastructure URLs are categorized in practice).
"""

from repro.categorizer.trustedsource import TrustedSourceCategorizer

__all__ = ["TrustedSourceCategorizer"]
