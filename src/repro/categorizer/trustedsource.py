"""The URL categorizer."""

from __future__ import annotations

from collections.abc import Iterable

from repro.catalog.categories import Category as C
from repro.catalog.domains import SiteSpec
from repro.net.url import is_ip_like, registered_domain

# Path prefixes that re-categorize a URL regardless of the host's own
# category: plugin/infrastructure endpoints read as content-serving
# infrastructure to a URL categorizer.
_PATH_OVERRIDES: tuple[tuple[str, str], ...] = (
    ("/plugins/", C.CONTENT_SERVER),
    ("/extern/", C.CONTENT_SERVER),
    ("/fbml/", C.CONTENT_SERVER),
    ("/connect/", C.CONTENT_SERVER),
    ("/platform/", C.CONTENT_SERVER),
    ("/ajax/proxy.php", C.CONTENT_SERVER),
    ("/gadgets/proxy", C.CONTENT_SERVER),
)

# Hostname heuristics for hosts absent from the database.
_HOST_HINTS: tuple[tuple[str, str], ...] = (
    ("cdn", C.CONTENT_SERVER),
    ("static", C.CONTENT_SERVER),
    ("img", C.CONTENT_SERVER),
    ("cache", C.CONTENT_SERVER),
    ("tracker", C.P2P),
    ("torrent", C.P2P),
    ("ads", C.WEB_ADS),
    ("news", C.GENERAL_NEWS),
    ("forum", C.FORUM),
    ("proxy", C.ANONYMIZER),
    ("vpn", C.ANONYMIZER),
    ("tunnel", C.ANONYMIZER),
    ("mail", C.INTERNET_SERVICES),
    ("games", C.GAMES),
)


class TrustedSourceCategorizer:
    """URL → category lookup.

    Built from the site universe (exact-host entries) plus a registered
    -domain fallback, path-level overrides, hostname heuristics, and an
    optional table of IP-address entries (used to categorize hosts that
    are raw addresses, e.g. anonymizer endpoints).
    """

    def __init__(
        self,
        sites: Iterable[SiteSpec] = (),
        ip_entries: dict[str, str] | None = None,
    ):
        self._by_host: dict[str, str] = {}
        self._by_domain: dict[str, str] = {}
        for site in sites:
            self._by_host[site.host] = site.category
            domain = registered_domain(site.host)
            # First registration wins: named sites precede synthetics,
            # and a domain's flagship host defines its category.
            self._by_domain.setdefault(domain, site.category)
        self._ip_entries = dict(ip_entries or {})

    def add_host(self, host: str, category: str) -> None:
        """Register an extra host (or IP) entry."""
        if is_ip_like(host):
            self._ip_entries[host] = category
        else:
            self._by_host[host] = category
            self._by_domain.setdefault(registered_domain(host), category)

    def categorize(self, host: str, path: str = "") -> str:
        """Categorize a URL.

        Path overrides are applied first (plugin endpoints), then exact
        host, then registered domain, then hostname heuristics; raw IP
        hosts consult the IP table.  Unknown URLs map to ``"NA"``.
        """
        for prefix, category in _PATH_OVERRIDES:
            if path.startswith(prefix):
                return category
        if is_ip_like(host):
            return self._ip_entries.get(host, C.NA)
        if host in self._by_host:
            return self._by_host[host]
        domain = registered_domain(host)
        if domain in self._by_domain:
            return self._by_domain[domain]
        lowered = host.lower()
        for token, category in _HOST_HINTS:
            if token in lowered:
                return category
        return C.NA

    def categorize_domain(self, domain: str) -> str:
        """Categorize a registered domain (Table 9's unit of analysis)."""
        if is_ip_like(domain):
            return self._ip_entries.get(domain, C.NA)
        if domain in self._by_domain:
            return self._by_domain[domain]
        return self.categorize(domain)

    def is_anonymizer(self, host: str) -> bool:
        """Convenience predicate used by the Section 7.2 analysis."""
        return self.categorize(host) == C.ANONYMIZER
