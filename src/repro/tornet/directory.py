"""Synthetic Tor relay directory."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.ip import format_ipv4, parse_network

# Address pools relays are drawn from (synthetic allocations in the
# built-in GeoIP registry, so relays geolocate to plausible countries).
_RELAY_POOLS = (
    ("US", "8.8.0.0/16"),
    ("US", "64.12.0.0/16"),
    ("DE", "91.10.0.0/16"),
    ("FR", "90.20.0.0/16"),
    ("NL", "145.10.0.0/16"),
    ("SE", "78.70.0.0/16"),
)

# OR-port mix observed in the wild circa 2011: the default 9001
# dominates, with 443 used by relays dodging egress filtering.
_OR_PORTS = (9001, 443, 9090, 8080)
_OR_PORT_WEIGHTS = (0.62, 0.26, 0.07, 0.05)

_DIR_PORTS = (9030, 80, 0)  # 0 = no directory port
_DIR_PORT_WEIGHTS = (0.65, 0.20, 0.15)

#: Directory-protocol request paths (HTTP signaling, "Tor_http").
DIRECTORY_PATHS: tuple[str, ...] = (
    "/tor/server/authority.z",
    "/tor/status-vote/current/consensus.z",
    "/tor/server/all.z",
    "/tor/keys/all.z",
    "/tor/server/fp/{fingerprint}.z",
    "/tor/extra/recent.z",
)


@dataclass(frozen=True, slots=True)
class Relay:
    """One Tor relay: endpoints plus a consensus bandwidth weight."""

    nickname: str
    fingerprint: str
    ip: str
    or_port: int
    dir_port: int
    bandwidth: float

    @property
    def or_endpoint(self) -> tuple[str, int]:
        return (self.ip, self.or_port)

    @property
    def dir_endpoint(self) -> tuple[str, int] | None:
        if self.dir_port == 0:
            return None
        return (self.ip, self.dir_port)


class TorDirectory:
    """A deterministic synthetic relay population.

    The paper matches 95 K requests against 1,111 distinct relays; the
    default population size matches.  Construction is fully determined
    by the seed, so the generator and the analysis can independently
    reconstruct the same directory — mirroring how both the censor's
    victims and the researchers consult the same public consensus.
    """

    def __init__(self, relay_count: int = 1111, seed: int = 9001):
        rng = np.random.default_rng(seed)
        self.relays: list[Relay] = []
        used: set[tuple[str, int]] = set()
        pools = [parse_network(block) for _, block in _RELAY_POOLS]
        while len(self.relays) < relay_count:
            pool = pools[int(rng.integers(len(pools)))]
            address = format_ipv4(pool.nth(int(rng.integers(1, pool.size - 1))))
            or_port = int(rng.choice(_OR_PORTS, p=_OR_PORT_WEIGHTS))
            if (address, or_port) in used:
                continue
            used.add((address, or_port))
            dir_port = int(rng.choice(_DIR_PORTS, p=_DIR_PORT_WEIGHTS))
            index = len(self.relays)
            self.relays.append(Relay(
                nickname=f"relay{index:04d}",
                fingerprint=format(int(rng.integers(16**10)), "010x").upper(),
                ip=address,
                or_port=or_port,
                dir_port=dir_port,
                # Consensus weights are heavy-tailed; exit/guard relays
                # carry most traffic.
                bandwidth=float(rng.pareto(1.3) + 0.1),
            ))
        total = sum(relay.bandwidth for relay in self.relays)
        self._selection_weights = np.array(
            [relay.bandwidth / total for relay in self.relays]
        )
        self._or_endpoints = {relay.or_endpoint for relay in self.relays}
        self._dir_endpoints = {
            relay.dir_endpoint
            for relay in self.relays
            if relay.dir_endpoint is not None
        }

    def __len__(self) -> int:
        return len(self.relays)

    def or_endpoints(self) -> set[tuple[str, int]]:
        """All ``(ip, or-port)`` pairs — the paper's matching triplets."""
        return self._or_endpoints

    def dir_endpoints(self) -> set[tuple[str, int]]:
        return self._dir_endpoints

    def relay_ips(self) -> set[str]:
        return {relay.ip for relay in self.relays}

    def sample_relay(self, rng: np.random.Generator) -> Relay:
        """Bandwidth-weighted relay choice (how clients pick relays)."""
        index = rng.choice(len(self.relays), p=self._selection_weights)
        return self.relays[int(index)]

    def sample_directory_path(self, rng: np.random.Generator) -> str:
        """A directory-protocol path for a Tor_http request."""
        template = DIRECTORY_PATHS[int(rng.integers(len(DIRECTORY_PATHS)))]
        if "{fingerprint}" in template:
            relay = self.relays[int(rng.integers(len(self.relays)))]
            return template.format(fingerprint=relay.fingerprint)
        return template

    def is_tor_endpoint(self, host: str, port: int) -> bool:
        """True when (host, port) is a known relay OR or Dir endpoint."""
        return (host, port) in self._or_endpoints or (host, port) in self._dir_endpoints
