"""Synthetic Tor network substrate (Section 7.1 of the paper).

The paper identifies Tor traffic by matching log rows against
``<relay ip, port, date>`` triplets extracted from the Tor project's
server descriptors and network-status archives.  Those archives are
not available offline, so this package provides the equivalent:
a deterministic synthetic relay population with OR/Dir endpoints,
descriptor-style directory paths, and the Tor_http / Tor_onion traffic
split used by both the traffic generator and the analysis.
"""

from repro.tornet.directory import Relay, TorDirectory

__all__ = ["Relay", "TorDirectory"]
