"""Tests for the policy engine: rules, ordering, Syrian config, error
and cache models."""

import numpy as np
import pytest

from repro.catalog.domains import build_domain_universe
from repro.net.ip import parse_network
from repro.policy import (
    Action,
    DomainBlacklistRule,
    FacebookPageRule,
    HostBlacklistRule,
    IPBlacklistRule,
    KeywordRule,
    PolicyEngine,
    RedirectHostRule,
    RequestView,
    TorOnionRule,
)
from repro.policy.cache import CacheModel
from repro.policy.errors import DEFAULT_ERROR_RATES, ErrorModel
from repro.policy.rules import TorBlockSchedule
from repro.policy.syria import (
    KEYWORDS,
    build_syrian_policy,
    default_tor_schedule,
)
from repro.timeline import day_epoch
from repro.tornet import TorDirectory
from tests.helpers import rng


def view(host="example.com", path="/", query="", **kw) -> RequestView:
    return RequestView(host=host, path=path, query=query, **kw)


class TestKeywordRule:
    rule = KeywordRule(["proxy", "israel"])

    def test_matches_in_path(self):
        verdict = self.rule.evaluate(view(path="/tbproxy/af/query"))
        assert verdict is not None
        assert verdict.action is Action.DENY
        assert verdict.exception_id == "policy_denied"
        assert "proxy" in verdict.rule

    def test_matches_in_query(self):
        assert self.rule.evaluate(view(query="u=xd_proxy.php")) is not None

    def test_matches_in_host(self):
        assert self.rule.evaluate(view(host="myproxy.com")) is not None

    def test_case_insensitive(self):
        assert self.rule.evaluate(view(path="/Israel-News")) is not None

    def test_abstains_on_clean_request(self):
        assert self.rule.evaluate(view(path="/news")) is None

    def test_connect_request_matches_host_only(self):
        # HTTPS CONNECT: only the host is visible.
        assert self.rule.evaluate(
            RequestView(host="proxy.example.com", method="CONNECT")
        ) is not None


class TestDomainBlacklistRule:
    rule = DomainBlacklistRule(["metacafe.com"], suffixes=[".il"])

    def test_blocks_domain_and_subdomains(self):
        assert self.rule.evaluate(view(host="metacafe.com")) is not None
        assert self.rule.evaluate(view(host="www.metacafe.com")) is not None

    def test_blocks_tld_suffix(self):
        assert self.rule.evaluate(view(host="www.panet.co.il")) is not None

    def test_abstains_on_other_domains(self):
        assert self.rule.evaluate(view(host="metacafe.org")) is None
        assert self.rule.evaluate(view(host="ilsite.com")) is None

    def test_ignores_ip_hosts(self):
        assert self.rule.evaluate(view(host="1.2.3.4")) is None


class TestHostAndRedirectRules:
    def test_host_blacklist_exact_only(self):
        rule = HostBlacklistRule(["messenger.live.com"])
        assert rule.evaluate(view(host="messenger.live.com")) is not None
        assert rule.evaluate(view(host="mail.live.com")) is None

    def test_redirect_rule(self):
        rule = RedirectHostRule(["upload.youtube.com"])
        verdict = rule.evaluate(view(host="upload.youtube.com"))
        assert verdict.action is Action.REDIRECT
        assert verdict.exception_id == "policy_redirect"
        assert rule.evaluate(view(host="www.youtube.com")) is None


class TestFacebookPageRule:
    rule = FacebookPageRule(
        pages=["Syrian.Revolution"],
        hosts=["www.facebook.com"],
        query_forms=["", "ref=ts"],
    )

    def test_blocked_form_redirects_with_custom_category(self):
        verdict = self.rule.evaluate(
            view(host="www.facebook.com", path="/Syrian.Revolution", query="ref=ts")
        )
        assert verdict.action is Action.REDIRECT
        assert verdict.category == "Blocked sites"

    def test_extended_query_escapes(self):
        assert self.rule.evaluate(
            view(host="www.facebook.com", path="/Syrian.Revolution",
                 query="ref=ts&ajaxpipe=1")
        ) is None

    def test_page_matching_is_case_sensitive(self):
        assert self.rule.evaluate(
            view(host="www.facebook.com", path="/syrian.revolution", query="")
        ) is None

    def test_other_hosts_unaffected(self):
        assert self.rule.evaluate(
            view(host="fb.example.com", path="/Syrian.Revolution", query="")
        ) is None


class TestIPBlacklistRule:
    rule = IPBlacklistRule(
        subnets=[parse_network("84.229.0.0/16")],
        addresses=["212.150.13.20"],
    )

    def test_blocks_subnet_member(self):
        assert self.rule.evaluate(view(host="84.229.7.7")) is not None

    def test_blocks_listed_address(self):
        assert self.rule.evaluate(view(host="212.150.13.20")) is not None

    def test_allows_neighbouring_address(self):
        assert self.rule.evaluate(view(host="212.150.13.21")) is None

    def test_ignores_hostnames(self):
        assert self.rule.evaluate(view(host="example.il.com")) is None


class TestTorOnionRule:
    def schedule(self, prob):
        start = day_epoch("2011-08-03")
        return TorBlockSchedule([(start, start + 86400, prob)])

    def rule(self, prob=1.0):
        return TorOnionRule([("1.2.3.4", 9001)], self.schedule(prob))

    def test_blocks_or_connection_in_window(self):
        verdict = self.rule().evaluate(RequestView(
            host="1.2.3.4", port=9001, method="CONNECT",
            epoch=day_epoch("2011-08-03") + 100,
        ))
        assert verdict is not None

    def test_ignores_outside_window(self):
        assert self.rule().evaluate(RequestView(
            host="1.2.3.4", port=9001, method="CONNECT",
            epoch=day_epoch("2011-08-04") + 100,
        )) is None

    def test_ignores_non_connect(self):
        assert self.rule().evaluate(RequestView(
            host="1.2.3.4", port=9001, method="GET",
            epoch=day_epoch("2011-08-03") + 100,
        )) is None

    def test_ignores_unknown_endpoint(self):
        assert self.rule().evaluate(RequestView(
            host="1.2.3.4", port=9030, method="CONNECT",
            epoch=day_epoch("2011-08-03") + 100,
        )) is None

    def test_partial_probability_is_deterministic(self):
        rule = self.rule(0.5)
        request = RequestView(
            host="1.2.3.4", port=9001, method="CONNECT",
            epoch=day_epoch("2011-08-03") + 100,
        )
        outcomes = {rule.evaluate(request) is None for _ in range(5)}
        assert len(outcomes) == 1  # same request, same outcome

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            TorBlockSchedule([(10, 5, 0.5)])
        with pytest.raises(ValueError):
            TorBlockSchedule([(0, 10, 1.5)])


class TestPolicyEngine:
    def test_first_match_wins(self):
        engine = PolicyEngine([
            RedirectHostRule(["both.example.com"]),
            HostBlacklistRule(["both.example.com"]),
        ])
        verdict = engine.evaluate(view(host="both.example.com"))
        assert verdict.action is Action.REDIRECT

    def test_allows_when_nothing_matches(self):
        engine = PolicyEngine([KeywordRule(["proxy"])])
        verdict = engine.evaluate(view(host="clean.example.com"))
        assert verdict.action is Action.ALLOW
        assert verdict.exception_id == "-"

    def test_with_rules(self):
        engine = PolicyEngine([KeywordRule(["proxy"])])
        extended = engine.with_rules([HostBlacklistRule(["x.com"])])
        assert extended.evaluate(view(host="x.com")).action is Action.DENY
        assert engine.evaluate(view(host="x.com")).action is Action.ALLOW

    def test_rejects_non_rules(self):
        with pytest.raises(TypeError):
            PolicyEngine(["not a rule"])


class TestSyrianPolicy:
    @pytest.fixture(scope="class")
    def policy(self):
        sites = build_domain_universe(tail_count=20)
        return build_syrian_policy(
            sites, tor_directory=TorDirectory(50, seed=1)
        )

    def test_keywords_are_the_paper_five(self, policy):
        assert set(policy.keywords) == {
            "proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf",
        }
        assert KEYWORDS == policy.keywords

    def test_suspected_domains_blocked(self, policy):
        for domain in ("metacafe.com", "skype.com", "wikimedia.org",
                       "amazon.com", "badoo.com", "netlog.com"):
            assert domain in policy.blocked_domains
            verdict = policy.base_engine.evaluate(view(host=f"www.{domain}"))
            assert verdict.action is Action.DENY

    def test_il_suffix_blocked(self, policy):
        verdict = policy.base_engine.evaluate(view(host="www.anything.co.il"))
        assert verdict.action is Action.DENY

    def test_facebook_mostly_allowed(self, policy):
        verdict = policy.base_engine.evaluate(
            view(host="www.facebook.com", path="/home.php")
        )
        assert verdict.action is Action.ALLOW

    def test_facebook_plugin_censored_by_keyword(self, policy):
        verdict = policy.base_engine.evaluate(view(
            host="www.facebook.com",
            path="/plugins/like.php",
            query="channel_url=xd_proxy.php",
        ))
        assert verdict.action is Action.DENY
        assert "proxy" in verdict.rule

    def test_messenger_host_blocked(self, policy):
        verdict = policy.base_engine.evaluate(view(host="messenger.live.com"))
        assert verdict.action is Action.DENY
        verdict = policy.base_engine.evaluate(view(host="mail.live.com"))
        assert verdict.action is Action.ALLOW

    def test_only_sg44_gets_tor_rule(self, policy):
        assert policy.engine_for("SG-44") is not policy.base_engine
        for name in ("SG-42", "SG-43", "SG-45", "SG-46", "SG-47", "SG-48"):
            assert policy.engine_for(name) is policy.base_engine

    def test_israeli_subnets_blocked(self, policy):
        verdict = policy.base_engine.evaluate(view(host="84.229.1.1"))
        assert verdict.action is Action.DENY
        # the mostly-allowed /16 of Table 12:
        verdict = policy.base_engine.evaluate(view(host="212.150.99.99"))
        assert verdict.action is Action.ALLOW

    def test_default_schedule_within_bounds(self):
        schedule = default_tor_schedule()
        for start, end, prob in schedule.windows:
            assert start < end
            assert 0.0 <= prob <= 1.0


class TestErrorModel:
    def test_rates_preserved(self):
        model = ErrorModel()
        assert model.rates == DEFAULT_ERROR_RATES

    def test_rejects_rates_over_one(self):
        with pytest.raises(ValueError):
            ErrorModel({"tcp_error": 1.5})

    def test_sample_distribution_roughly_matches(self):
        model = ErrorModel({"tcp_error": 0.5})
        draws = model.sample_many(4000, rng(1))
        share = float(np.mean(draws == "tcp_error"))
        assert 0.45 < share < 0.55

    def test_sample_scalar(self):
        model = ErrorModel({"tcp_error": 1.0 - 1e-9})
        assert model.sample(rng(0)) == "tcp_error"


class TestCacheModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(cache_rate=1.5)
        with pytest.raises(ValueError):
            CacheModel(clear_exception_share=-0.1)

    def test_rates(self):
        model = CacheModel(cache_rate=0.25, clear_exception_share=1.0)
        hits = sum(model.is_cached(rng(i)) for i in range(400))
        assert 60 < hits < 140
        assert model.exception_cleared(rng(0))
