"""Tests for the stats helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    cdf_points,
    cosine_similarity,
    fit_power_law,
    log_histogram,
    pairwise_cosine,
    requests_per_domain_histogram,
)
from repro.stats.distributions import fraction_at_or_below


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 3, "b": 4}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1}, {"b": 1}) == 0.0

    def test_known_value(self):
        # cos between (1,1) and (1,0) = 1/sqrt(2)
        assert cosine_similarity({"a": 1, "b": 1}, {"a": 1}) == pytest.approx(
            1 / math.sqrt(2)
        )

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1}) == 0.0

    def test_scale_invariant(self):
        a = {"x": 2, "y": 5}
        b = {"x": 20, "y": 50}
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_pairwise_matrix(self):
        vectors = {"p": {"a": 1}, "q": {"a": 1, "b": 1}, "r": {"b": 1}}
        names, matrix = pairwise_cosine(vectors, order=["p", "q", "r"])
        assert names == ["p", "q", "r"]
        assert matrix[0][0] == pytest.approx(1.0)
        assert matrix[0][2] == 0.0
        assert matrix[0][1] == pytest.approx(matrix[1][0])

    @given(
        st.dictionaries(
            st.sampled_from("abcdef"), st.floats(0.1, 100), min_size=1, max_size=6
        ),
        st.dictionaries(
            st.sampled_from("abcdef"), st.floats(0.1, 100), min_size=1, max_size=6
        ),
    )
    def test_bounds_property(self, a, b):
        value = cosine_similarity(a, b)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestPowerLaw:
    def test_histogram(self):
        counts = np.array([1, 1, 1, 2, 2, 5])
        assert requests_per_domain_histogram(counts) == [(1, 3), (2, 2), (5, 1)]

    def test_histogram_drops_zeros(self):
        assert requests_per_domain_histogram(np.array([0, 0, 3])) == [(3, 1)]

    def test_histogram_empty(self):
        assert requests_per_domain_histogram(np.array([])) == []

    def test_fit_recovers_exponent(self):
        rng = np.random.default_rng(0)
        # continuous samples from a power law with alpha = 2.5; fit in
        # the tail where the continuous-approximation MLE is unbiased
        samples = rng.pareto(1.5, size=50_000) + 1
        alpha = fit_power_law(samples, xmin=5, discrete=False)
        assert 2.35 < alpha < 2.65

    def test_fit_respects_xmin(self):
        rng = np.random.default_rng(1)
        samples = rng.pareto(1.5, size=20_000) + 1
        # adding sub-xmin noise must not change the tail fit much
        noisy = np.concatenate([samples, np.full(5_000, 2.0)])
        assert abs(
            fit_power_law(samples, xmin=5, discrete=False)
            - fit_power_law(noisy, xmin=5, discrete=False)
        ) < 0.05

    def test_fit_needs_data(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1]))


class TestDistributions:
    def test_cdf_points_monotone(self):
        points = cdf_points(np.array([3, 1, 2, 2]))
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_collapses_duplicates(self):
        points = cdf_points(np.array([1, 1, 1]))
        assert points == [(1.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points(np.array([])) == []

    def test_fraction_at_or_below(self):
        values = np.array([1, 2, 3, 4])
        assert fraction_at_or_below(values, 2) == 0.5
        assert fraction_at_or_below(values, 0) == 0.0
        assert fraction_at_or_below(np.array([]), 5) == 0.0

    def test_log_histogram_covers_all_positive(self):
        values = np.array([1, 10, 100, 1000])
        bins = log_histogram(values, bins=6)
        assert sum(count for _, count in bins) == 4

    def test_log_histogram_single_value(self):
        assert log_histogram(np.array([5, 5])) == [(5.0, 2)]

    def test_log_histogram_empty(self):
        assert log_histogram(np.array([0, -1])) == []

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=50))
    def test_cdf_ends_at_one_property(self, values):
        points = cdf_points(np.array(values))
        assert points[-1][1] == pytest.approx(1.0)
