"""Corrupted-input coverage: gzip logs that die mid-read.

The Telecomix leak is full of files the proxies never finished
writing.  These tests pin the reader's contract for byte-level
corruption — distinct from malformed *rows*, which a well-formed
stream can carry:

* lenient mode keeps every record read before the stream died, counts
  the file into ``ReadStats.corrupted``, and carries on;
* strict mode raises :class:`LogFormatError` naming the file and the
  byte offset reached;
* zero-byte files read as empty (gzip yields no output and no error) —
  graceful, not corrupt.
"""

from __future__ import annotations

import pytest

from repro.engine import ShardError, analyze_logs, load_frames
from repro.faults import ShardFailureReport
from repro.logmodel.elff import (
    LogFormatError,
    ReadStats,
    read_log,
    write_log,
)
from repro.pipeline import ElffSource
from tests.helpers import make_record

RECORDS = [
    make_record(cs_host=f"host-{index}.example.com", epoch=10_000 + index)
    # enough rows that half the compressed bytes still decode a prefix
    for index in range(300)
]


@pytest.fixture()
def good_gz(tmp_path):
    path = tmp_path / "good.log.gz"
    write_log(RECORDS, path)
    return path


def _truncated(tmp_path, source) -> "Path":
    """A gzip member cut off mid-stream (EOFError territory)."""
    path = tmp_path / "truncated.log.gz"
    payload = source.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    return path


def _bad_crc(tmp_path, source) -> "Path":
    """A complete stream whose CRC trailer was flipped."""
    path = tmp_path / "badcrc.log.gz"
    payload = bytearray(source.read_bytes())
    payload[-5] ^= 0xFF  # inside the 8-byte crc32+isize trailer
    path.write_bytes(bytes(payload))
    return path


def _garbage(tmp_path) -> "Path":
    """Bytes that were never gzip at all."""
    path = tmp_path / "garbage.log.gz"
    path.write_bytes(b"\x00\xffnot a gzip stream\x13\x37" * 40)
    return path


class TestLenientReads:
    def test_truncated_keeps_prefix_and_counts_the_file(
        self, tmp_path, good_gz
    ):
        path = _truncated(tmp_path, good_gz)
        stats = ReadStats()
        records = list(read_log(path, lenient=True, stats=stats))
        assert 0 < len(records) < len(RECORDS)
        assert records == RECORDS[: len(records)]
        assert stats.corrupted == 1
        assert stats.skipped == 0
        assert str(path) in stats.first_error

    def test_bad_crc_keeps_all_rows_and_counts_the_file(
        self, tmp_path, good_gz
    ):
        # The CRC mismatch only surfaces at end-of-stream, after every
        # row already decompressed.
        path = _bad_crc(tmp_path, good_gz)
        stats = ReadStats()
        records = list(read_log(path, lenient=True, stats=stats))
        assert records == RECORDS
        assert stats.corrupted == 1

    def test_garbage_bytes_yield_nothing_but_count(self, tmp_path):
        path = _garbage(tmp_path)
        stats = ReadStats()
        assert list(read_log(path, lenient=True, stats=stats)) == []
        assert stats.corrupted == 1

    def test_zero_byte_file_is_empty_not_corrupt(self, tmp_path):
        path = tmp_path / "empty.log.gz"
        path.write_bytes(b"")
        stats = ReadStats()
        assert list(read_log(path, lenient=True, stats=stats)) == []
        assert stats.corrupted == 0
        assert stats.first_error is None

    def test_elff_source_surfaces_the_same_bookkeeping(
        self, tmp_path, good_gz
    ):
        path = _truncated(tmp_path, good_gz)
        stats = ReadStats()
        records = list(ElffSource(path, lenient=True, stats=stats))
        assert records == RECORDS[: len(records)]
        assert stats.corrupted == 1

    def test_malformed_row_is_skipped_not_corrupted(self, tmp_path):
        # A well-formed stream carrying a bad row exercises the other
        # counter: skipped, not corrupted.
        path = tmp_path / "badrow.log"
        write_log(RECORDS[:2], path)
        with open(path, "a") as handle:
            handle.write("definitely,not,a,log,row\n")
        stats = ReadStats()
        assert list(read_log(path, lenient=True, stats=stats)) == RECORDS[:2]
        assert stats.skipped == 1
        assert stats.corrupted == 0


class TestStrictReads:
    @pytest.mark.parametrize("corrupt", [_truncated, _bad_crc])
    def test_raises_with_file_and_offset(
        self, tmp_path, good_gz, corrupt
    ):
        path = corrupt(tmp_path, good_gz)
        with pytest.raises(LogFormatError, match="corrupted log stream"):
            list(read_log(path))
        with pytest.raises(LogFormatError, match=str(path)):
            list(read_log(path))
        with pytest.raises(LogFormatError, match="byte "):
            list(read_log(path))

    def test_garbage_raises_too(self, tmp_path):
        with pytest.raises(LogFormatError, match="corrupted log stream"):
            list(read_log(_garbage(tmp_path)))

    def test_cause_is_the_underlying_stream_error(self, tmp_path, good_gz):
        path = _truncated(tmp_path, good_gz)
        with pytest.raises(LogFormatError) as excinfo:
            list(read_log(path))
        assert isinstance(excinfo.value.__cause__, EOFError)


class TestAnalyzeOverCorruption:
    def test_lenient_analyze_skips_and_counts(self, tmp_path, good_gz):
        bad = _truncated(tmp_path, good_gz)
        analysis, stats = analyze_logs([good_gz, bad], workers=1)
        clean, _ = analyze_logs([good_gz], workers=1)
        assert stats.corrupted == 1
        # the truncated file still contributed its readable prefix
        assert analysis.total > clean.total

    def test_strict_frame_load_raises_shard_error(self, tmp_path, good_gz):
        bad = _bad_crc(tmp_path, good_gz)
        with pytest.raises(ShardError) as excinfo:
            load_frames([good_gz, bad], workers=1)
        assert excinfo.value.shard_id == f"log:{bad.name}"
        assert isinstance(excinfo.value.error, LogFormatError)

    def test_partial_frame_load_quarantines_the_bad_file(
        self, tmp_path, good_gz
    ):
        bad = _bad_crc(tmp_path, good_gz)
        failures = ShardFailureReport()
        frame = load_frames(
            [good_gz, bad], workers=1, allow_partial=True,
            failures=failures,
        )
        assert len(frame) == len(RECORDS)
        assert failures.shard_ids() == [f"log:{bad.name}"]
