"""Tests for the BitTorrent substrate."""

from repro.bittorrent import TRACKERS, TitleDatabase, TorrentCatalog
from repro.bittorrent.catalog import make_peer_id
from tests.helpers import rng


class TestTorrentCatalog:
    def test_population_size(self):
        assert len(TorrentCatalog(200, seed=1)) == 200

    def test_deterministic(self):
        a = TorrentCatalog(100, seed=2)
        b = TorrentCatalog(100, seed=2)
        assert [c.info_hash for c in a.contents] == [
            c.info_hash for c in b.contents
        ]

    def test_info_hashes_are_40_hex_and_unique(self):
        catalog = TorrentCatalog(300, seed=3)
        hashes = [c.info_hash for c in catalog.contents]
        assert len(set(hashes)) == 300
        for info_hash in hashes:
            assert len(info_hash) == 40
            assert all(ch in "0123456789abcdef" for ch in info_hash)

    def test_kind_mix(self):
        catalog = TorrentCatalog(500, seed=4)
        kinds = {}
        for content in catalog.contents:
            kinds[content.kind] = kinds.get(content.kind, 0) + 1
        assert kinds["media"] > 400
        assert kinds.get("anticensor", 0) >= 5
        assert kinds.get("im-software", 0) >= 5

    def test_circumvention_titles_named(self):
        catalog = TorrentCatalog(500, seed=5)
        titles = " ".join(
            c.title for c in catalog.contents if c.kind == "anticensor"
        ).lower()
        assert "ultrasurf" in titles
        assert "hidemyass" in titles

    def test_tracker_proxy_host_present(self):
        hosts = [host for host, _ in TRACKERS]
        assert "tracker-proxy.furk.net" in hosts

    def test_sampling(self):
        catalog = TorrentCatalog(50, seed=6)
        generator = rng(0)
        content = catalog.sample_content(generator)
        assert content in catalog.contents
        host, port = catalog.sample_tracker(generator)
        assert (host, port) in TRACKERS

    def test_peer_id_format(self):
        assert make_peer_id(7).startswith("-UT2210-")
        assert make_peer_id(7) != make_peer_id(8)


class TestTitleDatabase:
    def test_resolve_rate_close_to_target(self):
        catalog = TorrentCatalog(1000, seed=7)
        db = TitleDatabase(catalog, resolve_rate=0.774)
        assert 0.70 < len(db) / 1000 < 0.85

    def test_resolution_consistency(self):
        catalog = TorrentCatalog(100, seed=8)
        db = TitleDatabase(catalog)
        for content in catalog.contents:
            title = db.resolve(content.info_hash)
            assert title is None or title == content.title

    def test_unknown_hash_unresolved(self):
        db = TitleDatabase(TorrentCatalog(10, seed=9))
        assert db.resolve("f" * 40) is None

    def test_resolve_many(self):
        catalog = TorrentCatalog(60, seed=10)
        db = TitleDatabase(catalog)
        hashes = [c.info_hash for c in catalog.contents]
        resolved, unresolved = db.resolve_many(hashes)
        assert len(resolved) + len(unresolved) == 60
        assert len(resolved) == len(db)

    def test_rate_validation(self):
        import pytest

        with pytest.raises(ValueError):
            TitleDatabase(TorrentCatalog(10, seed=11), resolve_rate=1.5)

    def test_full_rate_resolves_everything(self):
        catalog = TorrentCatalog(40, seed=12)
        db = TitleDatabase(catalog, resolve_rate=1.0)
        assert len(db) == 40
