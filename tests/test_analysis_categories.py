"""Tests for analysis.categories (Fig. 3)."""

import pytest

from repro.analysis.categories import (
    OTHER_LABEL,
    censored_category_distribution,
)
from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from tests.helpers import allowed_row, censored_row, make_frame


def categorizer_with(entries: dict[str, str]) -> TrustedSourceCategorizer:
    categorizer = TrustedSourceCategorizer()
    for host, category in entries.items():
        categorizer.add_host(host, category)
    return categorizer


class TestFig3:
    def test_distribution(self):
        categorizer = categorizer_with({
            "cdn.example.com": C.CONTENT_SERVER,
            "video.example.org": C.STREAMING_MEDIA,
        })
        frame = make_frame(
            [censored_row(cs_host="cdn.example.com")] * 3
            + [censored_row(cs_host="video.example.org")]
            + [allowed_row(cs_host="cdn.example.com")] * 10
        )
        shares = censored_category_distribution(frame, categorizer)
        assert shares[0].category == C.CONTENT_SERVER
        assert shares[0].share_pct == pytest.approx(75.0)
        assert shares[1].category == C.STREAMING_MEDIA

    def test_small_categories_fold_into_other(self):
        categorizer = categorizer_with({
            "big.example.com": C.CONTENT_SERVER,
            "tiny.example.org": C.GAMES,
        })
        frame = make_frame(
            [censored_row(cs_host="big.example.com")] * 999
            + [censored_row(cs_host="tiny.example.org")]
        )
        shares = censored_category_distribution(
            frame, categorizer, other_threshold_pct=1.0
        )
        labels = [s.category for s in shares]
        assert labels == [C.CONTENT_SERVER, OTHER_LABEL]

    def test_empty_frame(self):
        frame = make_frame([allowed_row()])
        assert censored_category_distribution(
            frame.where(frame.col("x_exception_id") != "-"),
            TrustedSourceCategorizer(),
        ) == []

    def test_path_override_applies(self):
        categorizer = categorizer_with({
            "www.facebook.com": C.SOCIAL_NETWORKING,
        })
        frame = make_frame([
            censored_row(cs_host="www.facebook.com",
                         cs_uri_path="/plugins/like.php"),
        ])
        shares = censored_category_distribution(frame, categorizer)
        assert shares[0].category == C.CONTENT_SERVER

    def test_scenario_content_server_leads(self, scenario):
        """Fig. 3's headline: Content Server ranks first (plugin and
        CDN URLs), Streaming Media close behind; Social Networking
        ranks low despite facebook's censored volume."""
        shares = censored_category_distribution(
            scenario.full, scenario.categorizer
        )
        by_category = {s.category: s.share_pct for s in shares}
        top = shares[0].category
        assert top in (C.CONTENT_SERVER, C.STREAMING_MEDIA)
        assert by_category.get(C.CONTENT_SERVER, 0) > 15.0
        assert by_category.get(C.INSTANT_MESSAGING, 0) > 5.0
        assert by_category.get(C.SOCIAL_NETWORKING, 0) < by_category[
            C.CONTENT_SERVER
        ]
