"""Tests for the GeoIP substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geoip import GeoIPDatabase, ISRAELI_SUBNETS, builtin_registry
from repro.geoip.database import UNKNOWN_COUNTRY
from repro.net.ip import parse_ipv4, parse_network


def tiny_db() -> GeoIPDatabase:
    return GeoIPDatabase([
        (parse_network("10.0.0.0/8"), "AA"),
        (parse_network("20.0.0.0/16"), "BB"),
    ])


class TestGeoIPDatabase:
    def test_lookup_inside(self):
        db = tiny_db()
        assert db.lookup("10.1.2.3") == "AA"
        assert db.lookup("20.0.255.1") == "BB"

    def test_lookup_outside(self):
        assert tiny_db().lookup("30.0.0.1") == UNKNOWN_COUNTRY
        assert tiny_db().lookup("20.1.0.0") == UNKNOWN_COUNTRY

    def test_lookup_boundaries(self):
        db = tiny_db()
        assert db.lookup("10.0.0.0") == "AA"
        assert db.lookup("10.255.255.255") == "AA"
        assert db.lookup("9.255.255.255") == UNKNOWN_COUNTRY
        assert db.lookup("11.0.0.0") == UNKNOWN_COUNTRY

    def test_lookup_accepts_int(self):
        assert tiny_db().lookup(parse_ipv4("10.0.0.1")) == "AA"

    def test_lookup_many_matches_scalar(self):
        db = tiny_db()
        addrs = [parse_ipv4(a) for a in
                 ("10.0.0.1", "20.0.0.1", "30.0.0.1", "0.0.0.0")]
        many = db.lookup_many(np.array(addrs))
        assert many.tolist() == [db.lookup(a) for a in addrs]

    def test_rejects_overlaps(self):
        with pytest.raises(ValueError):
            GeoIPDatabase([
                (parse_network("10.0.0.0/8"), "AA"),
                (parse_network("10.1.0.0/16"), "BB"),
            ])

    def test_networks_of(self):
        assert tiny_db().networks_of("AA") == [parse_network("10.0.0.0/8")]

    def test_countries(self):
        assert tiny_db().countries == {"AA", "BB"}


class TestBuiltinRegistry:
    def test_builds_without_overlap(self):
        db = builtin_registry()
        assert len(db) > 10

    def test_israeli_subnets_resolve_to_il(self):
        db = builtin_registry()
        for net in ISRAELI_SUBNETS:
            assert db.lookup(net.first) == "IL"
            assert db.lookup(net.last) == "IL"

    def test_table11_countries_present(self):
        countries = builtin_registry().countries
        for code in ("IL", "KW", "RU", "GB", "NL", "SG", "BG"):
            assert code in countries

    def test_syrian_clients_resolve_to_sy(self):
        assert builtin_registry().lookup("31.9.1.2") == "SY"

    def test_proxy_addresses_resolve_to_sy(self):
        assert builtin_registry().lookup("82.137.200.42") == "SY"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_lookup_many_consistent_property(self, addr):
        db = builtin_registry()
        assert db.lookup_many(np.array([addr]))[0] == db.lookup(addr)
