"""Tests for the workload package: config, population, calendar,
components, generator."""

import numpy as np
import pytest

from repro.catalog.domains import build_domain_universe
from repro.timeline import LOG_DAYS, PROTEST_DAY, day_epoch, day_span
from repro.tornet import TorDirectory
from repro.bittorrent import TorrentCatalog
from repro.workload import DEFAULT_BOOSTS, ScenarioConfig, TrafficGenerator
from repro.workload.bittraffic import BitTorrentComponent
from repro.workload.browsing import BrowsingComponent
from repro.workload.config import COMPONENT_SHARES, small_config
from repro.workload.diurnal import (
    BINS_PER_DAY,
    DEFAULT_SURGES,
    TrafficCalendar,
)
from repro.workload.fbpages import RedirectTargetsComponent
from repro.workload.gcache import GoogleCacheComponent
from repro.workload.iphosts import (
    IPHostsComponent,
    blocked_endpoint_addresses,
    build_address_pools,
)
from repro.workload.population import ClientPopulation, population_size_for
from repro.workload.tortraffic import TorComponent
from tests.helpers import rng


@pytest.fixture(scope="module")
def population():
    return ClientPopulation(400, seed=5)


@pytest.fixture(scope="module")
def calendar():
    return TrafficCalendar()


class TestConfig:
    def test_component_request_counts(self):
        config = ScenarioConfig(total_requests=1_000_000)
        weight = 1.0
        tor = config.component_requests("tor", weight)
        assert tor == round(1_000_000 * COMPONENT_SHARES["tor"])

    def test_boost_scales_component(self):
        config = ScenarioConfig(total_requests=1_000_000).with_boosts(tor=10)
        assert config.component_requests("tor", 1.0) == round(
            1_000_000 * COMPONENT_SHARES["tor"] * 10
        )

    def test_browsing_absorbs_remainder(self):
        config = ScenarioConfig(total_requests=100_000)
        total = config.browsing_requests(1.0) + sum(
            config.component_requests(c, 1.0) for c in COMPONENT_SHARES
        )
        assert abs(total - 100_000) <= len(COMPONENT_SHARES) + 1

    def test_day_weights_normalized(self):
        config = ScenarioConfig()
        weights = config.day_weights()
        assert set(weights) == set(LOG_DAYS)
        assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_friday_slowdown(self):
        weights = ScenarioConfig().day_weights()
        assert weights["2011-08-05"] < weights["2011-08-03"] * 0.7

    def test_user_day_boost(self):
        base = ScenarioConfig().day_weights()["2011-07-22"]
        boosted = ScenarioConfig(user_day_boost=10).day_weights()["2011-07-22"]
        assert boosted > base * 5

    def test_small_config_has_boosts(self):
        boosts = small_config().boosts
        for component, factor in DEFAULT_BOOSTS.items():
            if component == "redirect-targets":
                assert boosts[component] >= factor  # extra test boost
            else:
                assert boosts[component] == factor


class TestPopulation:
    def test_size(self, population):
        assert len(population) == 400

    def test_clients_have_syrian_addresses(self, population):
        assert all(c.c_ip.startswith("31.9.") for c in population.clients)

    def test_activity_normalized(self, population):
        total = sum(c.activity for c in population.clients)
        assert abs(total - 1.0) < 1e-6

    def test_sampling_prefers_active_users(self, population):
        sampled = population.sample_many(3000, rng(0))
        top_user = max(population.clients, key=lambda c: c.activity)
        hits = sum(1 for c in sampled if c is top_user)
        assert hits > 3000 / 400  # above uniform expectation

    def test_nat_shares_addresses(self, population):
        addresses = [c.c_ip for c in population.clients]
        assert len(set(addresses)) < len(addresses)

    def test_risk_pool_sampling(self, population):
        risk = population.sample_risk_users(50, rng(1))
        assert len(risk) == 50
        distinct = {(c.c_ip, c.user_agent) for c in risk}
        assert len(distinct) <= max(2, int(400 * 0.025))

    def test_population_size_for(self):
        assert population_size_for(45_000) == 1000
        assert population_size_for(10) == 50  # floor

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClientPopulation(0)


class TestCalendar:
    def test_bin_weights_normalized(self, calendar):
        weights = calendar.bin_weights("2011-08-02")
        assert len(weights) == BINS_PER_DAY
        assert abs(weights.sum() - 1.0) < 1e-9

    def test_morning_busier_than_night(self, calendar):
        weights = calendar.bin_weights("2011-08-02")
        morning = weights[9 * 12: 11 * 12].sum()
        night = weights[2 * 12: 4 * 12].sum()
        assert morning > night * 3

    def test_dip_reduces_window(self, calendar):
        weights = calendar.bin_weights(PROTEST_DAY)
        plain = calendar.bin_weights("2011-08-02")
        dip_bin = int(13.2 * 12)
        assert weights[dip_bin] < plain[dip_bin] * 0.5

    def test_sample_epochs_within_day(self, calendar):
        epochs = calendar.sample_epochs("2011-08-03", 500, rng(0))
        start, end = day_span("2011-08-03")
        assert len(epochs) == 500
        assert epochs.min() >= start and epochs.max() < end

    def test_sample_zero(self, calendar):
        assert len(calendar.sample_epochs("2011-08-03", 0, rng(0))) == 0

    def test_surges_only_on_protest_day(self, calendar):
        assert calendar.surge_requests("2011-08-02", 100_000) == []
        surges = calendar.surge_requests(PROTEST_DAY, 100_000)
        assert len(surges) == len(DEFAULT_SURGES)
        assert all(count > 0 for _, count in surges)

    def test_surge_epochs_within_window(self, calendar):
        surge = DEFAULT_SURGES[1]
        epochs = calendar.sample_window_epochs(surge, 200, rng(0))
        base = day_epoch(surge.day)
        assert epochs.min() >= base + surge.start_hour * 3600
        assert epochs.max() < base + surge.end_hour * 3600


class TestBrowsingComponent:
    @pytest.fixture(scope="class")
    def component(self, population, calendar):
        sites = build_domain_universe(tail_count=50)
        return BrowsingComponent(sites, population, calendar)

    def test_generates_requested_count_plus_surges(self, component):
        requests = component.generate("2011-08-02", 800, rng(0))
        assert len(requests) == 800  # no surge on a plain day

    def test_protest_day_adds_surge_requests(self, component):
        requests = component.generate(PROTEST_DAY, 3000, rng(0))
        assert len(requests) > 3000

    def test_requests_well_formed(self, component):
        for request in component.generate("2011-08-02", 300, rng(1)):
            assert request.host
            assert request.component == "browsing"
            if request.method == "CONNECT":
                assert request.port == 443
                assert request.path == ""
            else:
                assert request.path.startswith("/")
                assert "{" not in request.path and "{" not in request.query

    def test_popular_sites_dominate(self, component):
        requests = component.generate("2011-08-02", 4000, rng(2))
        google = sum(1 for r in requests if r.host == "www.google.com")
        assert google > 100

    def test_excludes_special_component_sites(self, component):
        requests = component.generate("2011-08-02", 4000, rng(3))
        hosts = {r.host for r in requests}
        assert "webcache.googleusercontent.com" not in hosts
        assert "upload.youtube.com" not in hosts


class TestIPHosts:
    def test_pools_normalized(self):
        pools = build_address_pools(seed=1)
        assert abs(sum(p.share for p in pools) - 1.0) < 1e-9

    def test_blocked_endpoints_exclude_il_subnet_pools(self):
        pools = build_address_pools(seed=1)
        blocked = blocked_endpoint_addresses(pools)
        assert "212.150.13.20" in blocked
        for pool in pools:
            if pool.name.startswith("il-84"):
                assert not any(a in blocked for a in pool.addresses)

    def test_generates_ip_hosts(self, population, calendar):
        component = IPHostsComponent(population, calendar)
        requests = component.generate("2011-08-02", 400, rng(0))
        assert len(requests) == 400
        for request in requests:
            parts = request.host.split(".")
            assert len(parts) == 4 and all(p.isdigit() for p in parts)
            assert request.component == "iphosts"


class TestTorComponent:
    @pytest.fixture(scope="class")
    def component(self, population, calendar):
        return TorComponent(TorDirectory(80, seed=2), population, calendar)

    def test_http_share(self, component):
        requests = component.generate("2011-08-02", 600, rng(0))
        http = sum(1 for r in requests if r.component == "tor-http")
        assert 0.6 < http / len(requests) < 0.85

    def test_http_requests_use_directory_paths(self, component):
        for request in component.generate("2011-08-02", 200, rng(1)):
            if request.component == "tor-http":
                assert request.path.startswith("/tor/")
                assert request.method == "GET"
            else:
                assert request.method == "CONNECT"

    def test_protest_day_boost(self, component):
        plain = component.generate("2011-08-02", 300, rng(2))
        protest = component.generate(PROTEST_DAY, 300, rng(2))
        assert len(protest) > len(plain) * 1.5


class TestBitTorrentComponent:
    def test_announce_requests(self, population, calendar):
        component = BitTorrentComponent(
            TorrentCatalog(100, seed=3), population, calendar
        )
        requests = component.generate("2011-08-02", 250, rng(0))
        assert len(requests) == 250
        for request in requests:
            assert request.path == "/announce"
            assert "info_hash=" in request.query
            assert "peer_id=-UT" in request.query


class TestRedirectTargets:
    def test_mix(self, population, calendar):
        component = RedirectTargetsComponent(population, calendar)
        requests = component.generate("2011-08-02", 600, rng(0))
        uploads = sum(1 for r in requests if r.host == "upload.youtube.com")
        pages = sum(1 for r in requests if "facebook" in r.host)
        assert uploads > pages  # Table 7 dominance
        assert pages > 50


class TestGoogleCache:
    def test_cache_requests(self, population, calendar):
        sites = build_domain_universe(tail_count=10)
        component = GoogleCacheComponent(sites, population, calendar)
        requests = component.generate("2011-08-02", 100, rng(0))
        assert all(
            r.host == "webcache.googleusercontent.com" for r in requests
        )
        assert all("q=cache:" in r.query for r in requests)


class TestGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return TrafficGenerator(small_config(8000, seed=3))

    def test_generates_every_day(self, generator):
        days = [day for day, _ in generator.generate()]
        assert days == list(LOG_DAYS)

    def test_day_stream_sorted(self, generator):
        _, requests = next(iter(generator.generate()))
        epochs = [r.epoch for r in requests]
        assert epochs == sorted(epochs)

    def test_total_volume_close_to_configured(self, generator):
        total = sum(len(reqs) for _, reqs in generator.generate())
        assert 0.9 * 8000 < total < 1.25 * 8000

    def test_blocked_anonymizer_addresses_exposed(self, generator):
        blocked = generator.blocked_anonymizer_addresses()
        assert len(blocked) > 10
