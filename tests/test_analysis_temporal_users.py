"""Tests for analysis.temporal (Fig 5/6, Table 5) and analysis.users
(Fig 4)."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    relative_censored_volume,
    top_censored_windows,
    traffic_timeseries,
)
from repro.analysis.users import user_analysis
from repro.timeline import PROTEST_DAY, day_epoch, day_span
from tests.helpers import allowed_row, censored_row, make_frame


def at(day: str, hour: float) -> int:
    return day_epoch(day) + int(hour * 3600)


class TestTimeseries:
    def test_fig5_counts(self):
        day = "2011-08-02"
        frame = make_frame([
            allowed_row(epoch=at(day, 9.0)),
            allowed_row(epoch=at(day, 9.01)),
            censored_row(epoch=at(day, 9.02)),
            allowed_row(epoch=at(day, 15.0)),
        ])
        start, end = day_span(day)
        series = traffic_timeseries(frame, start, end)
        assert series.allowed_counts.sum() == 3
        assert series.censored_counts.sum() == 1
        bin_9am = int(9 * 12)
        assert series.allowed_counts[bin_9am] == 2
        assert series.censored_counts[bin_9am] == 1

    def test_normalized_sums_to_one(self):
        day = "2011-08-02"
        frame = make_frame([allowed_row(epoch=at(day, h)) for h in (1, 5, 9)])
        start, end = day_span(day)
        series = traffic_timeseries(frame, start, end)
        assert series.allowed_normalized.sum() == pytest.approx(1.0)

    def test_rejects_empty_range(self):
        frame = make_frame([allowed_row()])
        with pytest.raises(ValueError):
            traffic_timeseries(frame, 100, 100)

    def test_friday_slowdown_visible(self, scenario):
        start = day_epoch("2011-08-01")
        end = day_epoch("2011-08-06") + 86400
        series = traffic_timeseries(scenario.full, start, end, bin_seconds=86400)
        volumes = series.allowed_counts
        friday = volumes[4]  # Aug 5
        wednesday = volumes[2]  # Aug 3
        assert friday < wednesday * 0.75


class TestRcv:
    def test_fig6_values(self):
        day = PROTEST_DAY
        rows = [allowed_row(epoch=at(day, 8.0) + i) for i in range(9)]
        rows.append(censored_row(epoch=at(day, 8.0) + 9))
        series = relative_censored_volume(make_frame(rows), day)
        bin_8am = int(8 * 12)
        assert series.rcv[bin_8am] == pytest.approx(0.1)

    def test_empty_bins_are_nan(self):
        series = relative_censored_volume(
            make_frame([allowed_row(epoch=at(PROTEST_DAY, 8.0))]), PROTEST_DAY
        )
        assert np.isnan(series.rcv[0])

    def test_peak_bins(self):
        day = PROTEST_DAY
        rows = [censored_row(epoch=at(day, 8.0))]
        series = relative_censored_volume(make_frame(rows), day)
        peaks = series.peak_bins(0.5)
        assert at(day, 8.0) // 300 * 300 in peaks

    def test_protest_morning_peak_on_scenario(self, scenario):
        """Fig. 6: the 8:00-9:30 surge roughly doubles RCV."""
        series = relative_censored_volume(scenario.full, PROTEST_DAY)
        rcv = series.rcv
        surge = np.nanmean(rcv[int(8 * 12): int(9.5 * 12)])
        baseline = np.nanmean(rcv[int(13.5 * 12): int(20 * 12)])
        assert surge > baseline * 1.4


class TestTable5:
    def test_window_shares(self):
        day = PROTEST_DAY
        rows = (
            [censored_row(cs_host="www.skype.com", epoch=at(day, 8.5))] * 3
            + [censored_row(cs_host="www.metacafe.com", epoch=at(day, 8.5))]
            + [censored_row(cs_host="www.metacafe.com", epoch=at(day, 11.0))]
        )
        windows = top_censored_windows(make_frame(rows), day)
        eight_to_ten = windows[1]
        assert eight_to_ten.start_hour == 8
        assert eight_to_ten.rows[0][0] == "skype.com"
        assert eight_to_ten.rows[0][1] == pytest.approx(75.0)

    def test_skype_peaks_in_morning_window_on_scenario(self, scenario):
        windows = top_censored_windows(scenario.full, PROTEST_DAY)
        eight_to_ten = {domain: share for domain, share in windows[1].rows}
        assert "skype.com" in eight_to_ten
        # Skype's share during the surge beats its all-day share (6.8 %)
        assert eight_to_ten["skype.com"] > 10.0


class TestUsers:
    def test_fig4_identities(self):
        rows = [
            allowed_row(c_ip="u1", cs_user_agent="A"),
            allowed_row(c_ip="u1", cs_user_agent="A"),
            censored_row(c_ip="u1", cs_user_agent="A"),
            allowed_row(c_ip="u1", cs_user_agent="B"),  # distinct user
            allowed_row(c_ip="u2", cs_user_agent="A"),
        ]
        result = user_analysis(make_frame(rows))
        assert result.total_users == 3
        assert result.censored_users == 1
        assert result.censored_user_pct == pytest.approx(100 / 3)

    def test_censored_histogram(self):
        rows = [censored_row(c_ip="u1", cs_user_agent="A")] * 2 + [
            censored_row(c_ip="u2", cs_user_agent="A")
        ]
        result = user_analysis(make_frame(rows))
        histogram = dict(result.censored_requests_histogram)
        assert histogram[1] == pytest.approx(50.0)
        assert histogram[2] == pytest.approx(50.0)

    def test_empty_frame(self):
        from repro.frame.io import empty_frame

        result = user_analysis(empty_frame())
        assert result.total_users == 0

    def test_activity_threshold(self):
        rows = [allowed_row(c_ip="busy", cs_user_agent="A")] * 10 + [
            censored_row(c_ip="busy", cs_user_agent="A"),
            allowed_row(c_ip="quiet", cs_user_agent="A"),
        ]
        result = user_analysis(make_frame(rows), active_threshold=5)
        assert result.active_share_censored_pct == 100.0
        assert result.active_share_noncensored_pct == 0.0

    def test_censored_users_more_active_on_scenario(self, scenario):
        """The paper's Fig. 4(b) finding."""
        result = user_analysis(scenario.user, active_threshold=20)
        assert result.total_users > 100
        assert 0.3 < result.censored_user_pct < 12.0
        assert (
            result.active_share_censored_pct
            > result.active_share_noncensored_pct * 3
        )
