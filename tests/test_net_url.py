"""Tests for repro.net.url."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.url import (
    URL,
    extension_of,
    is_ip_like,
    parse_url,
    registered_domain,
    registered_domains,
)


class TestParseUrl:
    def test_basic(self):
        url = parse_url("http://www.example.com/path/page.php?q=1")
        assert url.host == "www.example.com"
        assert url.path == "/path/page.php"
        assert url.query == "q=1"
        assert url.scheme == "http"
        assert url.ext == "php"

    def test_no_scheme_defaults_http(self):
        url = parse_url("example.com/")
        assert url.scheme == "http"
        assert url.effective_port == 80

    def test_explicit_port(self):
        url = parse_url("http://tracker.example.com:6969/announce?x=1")
        assert url.port == 6969
        assert url.effective_port == 6969

    def test_https_default_port(self):
        assert parse_url("https://example.com/").effective_port == 443

    def test_bare_host_gets_root_path(self):
        url = parse_url("http://example.com")
        assert url.path == "/"
        assert url.query == ""

    def test_host_is_lowercased(self):
        assert parse_url("http://ExAmPle.COM/").host == "example.com"

    @pytest.mark.parametrize("bad", ["http:///nopath", "http://host:bad/"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_url(bad)

    def test_full_roundtrip(self):
        text = "http://example.com:8080/a/b.gif?x=1"
        assert parse_url(text).full() == text

    def test_matchable_text_is_host_path_query(self):
        url = URL(host="h.com", path="/p", query="q=2")
        assert url.matchable_text() == "h.com/p?q=2"


class TestRegisteredDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("www.facebook.com", "facebook.com"),
            ("ar-ar.facebook.com", "facebook.com"),
            ("facebook.com", "facebook.com"),
            ("upload.youtube.com", "youtube.com"),
            ("www.bbc.co.uk", "bbc.co.uk"),
            ("www.panet.co.il", "panet.co.il"),
            ("www.mtn.com.sy", "mtn.com.sy"),
            ("profile.ak.fbcdn.net", "fbcdn.net"),
            ("plus.google.com", "google.com"),
            ("localhost", "localhost"),
        ],
    )
    def test_known_cases(self, host, expected):
        assert registered_domain(host) == expected

    def test_ip_hosts_map_to_themselves(self):
        assert registered_domain("84.229.1.2") == "84.229.1.2"

    def test_case_insensitive(self):
        assert registered_domain("WWW.Example.COM") == "example.com"

    def test_trailing_dot_is_stripped(self):
        assert registered_domain("www.facebook.com.") == "facebook.com"

    def test_spelling_variants_share_one_cache_entry(self):
        """The lru_cache used to key on the raw host, so case and
        trailing-dot variants each burned their own slot."""
        from repro.net.url import _registered_domain

        _registered_domain.cache_clear()
        variants = ["WWW.Facebook.COM", "www.facebook.com",
                    "www.facebook.com.", "WWW.FACEBOOK.COM."]
        assert {registered_domain(v) for v in variants} == {"facebook.com"}
        assert _registered_domain.cache_info().currsize == 1


class TestRegisteredDomainsBatch:
    """The array fast path used by the batched analyses — it must be
    an exact broadcast of the scalar function, including lowercase and
    trailing-dot normalization, and must not fall back to one cached
    call per row."""

    def test_matches_scalar_map(self):
        hosts = np.array(
            ["www.facebook.com", "ar-ar.facebook.com", "www.bbc.co.uk",
             "84.229.1.2", "localhost", "www.mtn.com.sy"],
            dtype=object,
        )
        result = registered_domains(hosts)
        assert result.dtype == object
        assert result.tolist() == [registered_domain(h) for h in hosts]

    def test_normalization_matches_scalar(self):
        """Regression: the batch path once skipped the lowercase /
        trailing-dot normalization the scalar path applies, splitting
        one domain across several counter keys."""
        hosts = np.array(
            ["WWW.Facebook.COM", "www.facebook.com.",
             "WWW.FACEBOOK.COM.", "www.facebook.com"],
            dtype=object,
        )
        assert registered_domains(hosts).tolist() == ["facebook.com"] * 4

    def test_distinct_spellings_share_one_cache_slot(self):
        from repro.net.url import _registered_domain

        _registered_domain.cache_clear()
        hosts = np.array(
            ["WWW.Example.COM", "www.example.com", "www.example.com."],
            dtype=object,
        )
        registered_domains(hosts)
        assert _registered_domain.cache_info().currsize == 1

    def test_results_are_native_strings(self):
        """Counter keys and their JSON must not become numpy scalars."""
        result = registered_domains(np.array(["www.a.com"], dtype=object))
        assert type(result[0]) is str

    def test_empty_input(self):
        result = registered_domains(np.empty(0, dtype=object))
        assert result.dtype == object and len(result) == 0
        assert registered_domains([]).tolist() == []

    def test_accepts_plain_lists(self):
        assert registered_domains(["www.a.com", "b.co.uk"]).tolist() == [
            "a.com", "b.co.uk"
        ]

    @given(st.lists(st.sampled_from([
        "www.a.com", "A.COM", "sub.b.co.uk", "b.co.uk.", "10.0.0.1",
        "localhost", "deep.sub.domain.example.org",
    ])))
    def test_broadcast_equals_scalar_property(self, hosts):
        result = registered_domains(np.array(hosts, dtype=object))
        assert result.tolist() == [registered_domain(h) for h in hosts]


class TestExtension:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/a/b.gif", "gif"),
            ("/watch", ""),
            ("/", ""),
            ("/archive.tar.gz", "gz"),
            ("/dir.d/file", ""),
        ],
    )
    def test_cases(self, path, expected):
        assert extension_of(path) == expected


class TestIsIpLike:
    def test_positive(self):
        assert is_ip_like("1.2.3.4")

    def test_negative(self):
        assert not is_ip_like("a.b.c.d")
        assert not is_ip_like("1.2.3")


@given(
    st.from_regex(r"[a-z]{1,10}(\.[a-z]{2,5}){1,3}", fullmatch=True),
    st.from_regex(r"(/[a-z0-9]{0,8}){0,4}", fullmatch=True),
)
def test_parse_url_roundtrip_property(host, path):
    text = f"http://{host}{path or '/'}"
    url = parse_url(text)
    assert url.host == host
    reparsed = parse_url(url.full())
    assert reparsed == url
