"""Tests for the pluggable censorship-regime profiles (repro.regimes).

Three layers:

* **registry** — lookup, failure modes, registration guards;
* **rule models** — the Pakistani DNS-injection/block-page rules and
  the Turkmen DPI/subnet rules at the verdict level;
* **end-to-end** — each regime through the real build path, pinning
  the distinct log signatures, the sharded/batched byte-identity, and
  the regime-aware checkpoint fingerprint.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import build_scenario
from repro.engine import simulate_to_logs
from repro.logmodel.classify import CENSOR_EXCEPTIONS
from repro.policy.rules import Action, RequestView
from repro.regimes import (
    PAKISTAN,
    SYRIA,
    TURKMENISTAN,
    RegimeProfile,
    RuleRecovery,
    UnknownRegimeError,
    available_regimes,
    get_regime,
    register_regime,
)
from repro.regimes.pakistan import (
    BLOCKPAGE,
    BLOCKPAGE_HOST,
    DNS_INJECTED,
    BlockpageRule,
    DnsInjectionRule,
)
from repro.regimes.turkmenistan import (
    RST_TEARDOWN,
    TM_KEYWORDS,
    DpiKeywordRule,
    SubnetRstRule,
    recover_blocked_prefixes,
    widen_to_prefixes,
)
from repro.workload.config import small_config

#: Same tiny scenario as test_engine/test_chaos_engine, so the cached
#: per-process scenario context is shared across modules.
TINY = small_config(6_000, seed=5)
TINY_PK = replace(TINY, regime="pakistan")
TINY_TM = replace(TINY, regime="turkmenistan")


def view(**kw) -> RequestView:
    defaults = dict(host="example.com", path="/")
    defaults.update(kw)
    return RequestView(**defaults)


# -- registry ----------------------------------------------------------------

class TestRegistry:
    def test_all_three_regimes_registered(self):
        names = available_regimes()
        assert {"syria", "pakistan", "turkmenistan"} <= set(names)
        assert names == tuple(sorted(names))

    def test_get_regime_returns_registered_profiles(self):
        assert get_regime("syria") is SYRIA
        assert get_regime("pakistan") is PAKISTAN
        assert get_regime("turkmenistan") is TURKMENISTAN

    def test_unknown_regime_names_the_alternatives(self):
        with pytest.raises(UnknownRegimeError, match="pakistan"):
            get_regime("atlantis")

    def test_reregistering_same_object_is_idempotent(self):
        assert register_regime(SYRIA) is SYRIA
        assert get_regime("syria") is SYRIA

    def test_replacing_under_existing_name_requires_opt_in(self):
        impostor = replace(SYRIA, description="not the real one")
        with pytest.raises(ValueError, match="replace=True"):
            register_regime(impostor)
        try:
            assert register_regime(impostor, replace=True) is impostor
            assert get_regime("syria") is impostor
        finally:
            register_regime(SYRIA, replace=True)

    def test_censor_exceptions_are_classifiable(self):
        """Every signature a profile emits must be a member of the
        shared CENSOR_EXCEPTIONS set, or classify would miscount it."""
        for name in available_regimes():
            profile = get_regime(name)
            assert profile.censor_exceptions <= CENSOR_EXCEPTIONS, name

    def test_profile_is_frozen(self):
        with pytest.raises(AttributeError):
            SYRIA.name = "syria-2"


class TestRuleRecovery:
    def test_precision_and_recall(self):
        recovery = RuleRecovery(
            kind="k", recovered=("a", "b", "x"), truth=("a", "b", "c", "d")
        )
        assert recovery.true_positives == 2
        assert recovery.precision == pytest.approx(2 / 3)
        assert recovery.recall == pytest.approx(2 / 4)

    def test_empty_recovered_has_perfect_precision(self):
        recovery = RuleRecovery(kind="k", recovered=(), truth=("a",))
        assert recovery.precision == 1.0
        assert recovery.recall == 0.0

    def test_empty_truth_has_perfect_recall(self):
        recovery = RuleRecovery(kind="k", recovered=("a",), truth=())
        assert recovery.precision == 0.0
        assert recovery.recall == 1.0


# -- rule models -------------------------------------------------------------

class TestPakistanRules:
    rule = DnsInjectionRule({"banned.com"})

    def test_dns_injection_matches_registered_domain(self):
        verdict = self.rule.evaluate(view(host="www.banned.com"))
        assert verdict is not None
        assert verdict.action is Action.DENY
        assert verdict.exception_id == DNS_INJECTED

    def test_dns_injection_applies_to_https_too(self):
        verdict = self.rule.evaluate(
            view(host="banned.com", scheme="https", method="CONNECT")
        )
        assert verdict is not None and verdict.exception_id == DNS_INJECTED

    def test_raw_ip_requests_bypass_dns(self):
        assert self.rule.evaluate(view(host="10.1.2.3")) is None

    def test_blockpage_redirects_plain_http_only(self):
        rule = BlockpageRule({"page.banned.com"})
        verdict = rule.evaluate(view(host="page.banned.com"))
        assert verdict is not None
        assert verdict.action is Action.REDIRECT
        assert verdict.exception_id == BLOCKPAGE
        assert rule.evaluate(
            view(host="page.banned.com", scheme="https", method="CONNECT")
        ) is None

    def test_unlisted_hosts_pass(self):
        assert self.rule.evaluate(view(host="fine.org")) is None
        assert BlockpageRule({"x.com"}).evaluate(view(host="fine.org")) is None


class TestTurkmenistanRules:
    def test_dpi_keyword_matches_host_path_and_query(self):
        rule = DpiKeywordRule(TM_KEYWORDS)
        for request in (
            view(host="myproxy.example.com"),
            view(path="/get-vpn-now"),
            view(path="/dl", query="tool=psiphon"),
        ):
            verdict = rule.evaluate(request)
            assert verdict is not None
            assert verdict.exception_id == RST_TEARDOWN

    def test_dpi_keyword_case_insensitive_and_abstains(self):
        rule = DpiKeywordRule(["VPN"])
        assert rule.evaluate(view(host="vpn.example.com")) is not None
        assert rule.evaluate(view(host="plain.example.com")) is None

    def test_widen_to_prefixes_canonicalizes_and_dedups(self):
        prefixes = widen_to_prefixes(
            ["77.160.10.5", "77.160.200.9", "212.150.1.1"]
        )
        assert tuple(str(p) for p in prefixes) == (
            "77.160.0.0/16", "212.150.0.0/16"
        )

    def test_subnet_rule_blocks_the_whole_sixteen(self):
        rule = SubnetRstRule(widen_to_prefixes(["77.160.10.5"]))
        verdict = rule.evaluate(view(host="77.160.250.1"))
        assert verdict is not None
        assert verdict.exception_id == RST_TEARDOWN
        assert rule.evaluate(view(host="77.161.0.1")) is None
        assert rule.evaluate(view(host="named.example.com")) is None


# -- end to end --------------------------------------------------------------

@pytest.fixture(scope="module")
def pakistan_datasets():
    return build_scenario(TINY_PK)


@pytest.fixture(scope="module")
def turkmenistan_datasets():
    return build_scenario(TINY_TM)


class TestPakistanEndToEnd:
    def test_censor_signature_is_regime_specific(self, pakistan_datasets):
        exceptions = set(pakistan_datasets.full.col("x_exception_id"))
        censored = exceptions & CENSOR_EXCEPTIONS
        assert censored
        assert censored <= {DNS_INJECTED, BLOCKPAGE}

    def test_no_cache_means_no_proxied_rows(self, pakistan_datasets):
        results = pakistan_datasets.full.col("sc_filter_result")
        assert not np.any(results == "PROXIED")

    def test_no_categorizer_means_dash_categories(self, pakistan_datasets):
        assert set(pakistan_datasets.full.col("cs_categories")) == {"-"}

    def test_nxdomain_rows_carry_the_injector_signature(
        self, pakistan_datasets
    ):
        frame = pakistan_datasets.full
        mask = frame.col("x_exception_id") == DNS_INJECTED
        assert mask.any()
        assert set(frame.col("sc_status")[mask]) == {0}
        assert set(frame.col("s_action")[mask]) == {"DNS_INJECT_NXDOMAIN"}

    def test_blockpage_rows_redirect_to_the_notice_host(
        self, pakistan_datasets
    ):
        frame = pakistan_datasets.full
        mask = frame.col("x_exception_id") == BLOCKPAGE
        assert mask.any()
        assert set(frame.col("sc_status")[mask]) == {302}
        assert set(frame.col("s_action")[mask]) == {"TCP_BLOCKPAGE_REDIRECT"}
        assert set(frame.col("cs_uri_scheme")[mask]) == {"http"}

    def test_blockpage_record_names_the_supplier(self, pakistan_datasets):
        """Record-level fields the frame doesn't materialize: the 302
        is served by the notice host, with an HTML body."""
        from repro.regimes.pakistan import DnsInjectorFleet
        from repro.traffic import Request

        policy = pakistan_datasets.policy
        fleet = DnsInjectorFleet(policy)
        host = sorted(policy.blockpage_hosts)[0]
        record = fleet.process(
            Request(epoch=1312329600, c_ip="10.0.0.1", user_agent="UA",
                    host=host),
            np.random.default_rng(0),
        )
        assert record.x_exception_id == BLOCKPAGE
        assert record.s_supplier_name == BLOCKPAGE_HOST
        assert record.rs_content_type == "text/html"
        assert record.sc_status == 302

    def test_recovery_is_exact_on_observed_rules(self, pakistan_datasets):
        recoveries = PAKISTAN.recover_rules(
            pakistan_datasets.full, pakistan_datasets.policy
        )
        by_kind = {r.kind: r for r in recoveries}
        assert set(by_kind) == {"dns-domains", "blockpage-hosts"}
        for recovery in recoveries:
            # Every recovered name really is in the deployed blocklist
            # (the mechanisms identify themselves in the logs).
            assert recovery.precision == 1.0
            assert recovery.recovered


class TestTurkmenistanEndToEnd:
    def test_censor_signature_is_regime_specific(
        self, turkmenistan_datasets
    ):
        exceptions = set(turkmenistan_datasets.full.col("x_exception_id"))
        censored = exceptions & CENSOR_EXCEPTIONS
        assert censored == {RST_TEARDOWN}

    def test_rst_rows_have_no_response(self, turkmenistan_datasets):
        frame = turkmenistan_datasets.full
        mask = frame.col("x_exception_id") == RST_TEARDOWN
        assert mask.any()
        assert set(frame.col("sc_status")[mask]) == {0}
        assert set(frame.col("s_action")[mask]) == {"TCP_RST_INJECT"}

    def test_rst_record_serves_zero_bytes(self, turkmenistan_datasets):
        from repro.regimes.turkmenistan import DpiFleet
        from repro.traffic import Request

        fleet = DpiFleet(turkmenistan_datasets.policy)
        record = fleet.process(
            Request(epoch=1312329600, c_ip="10.0.0.1", user_agent="UA",
                    host="ultrasurf.example.com"),
            np.random.default_rng(0),
        )
        assert record.x_exception_id == RST_TEARDOWN
        assert record.sc_bytes == 0
        assert record.sc_status == 0

    def test_keyword_rows_contain_a_keyword(self, turkmenistan_datasets):
        frame = turkmenistan_datasets.full
        mask = frame.col("x_exception_id") == RST_TEARDOWN
        for host, path, query in zip(
            frame.col("cs_host")[mask],
            frame.col("cs_uri_path")[mask],
            frame.col("cs_uri_query")[mask],
        ):
            text = f"{host}{path}{query}".lower()
            matched = any(keyword in text for keyword in TM_KEYWORDS)
            blocked_ip = SubnetRstRule(
                turkmenistan_datasets.policy.blocked_prefixes
            ).evaluate(view(host=host)) is not None
            assert matched or blocked_ip, host

    def test_recovered_keywords_are_deployed_keywords(
        self, turkmenistan_datasets
    ):
        recoveries = TURKMENISTAN.recover_rules(
            turkmenistan_datasets.full, turkmenistan_datasets.policy
        )
        by_kind = {r.kind: r for r in recoveries}
        assert set(by_kind) == {"dpi-keywords", "blocked-prefixes"}
        keywords = by_kind["dpi-keywords"]
        assert keywords.recovered
        assert keywords.precision == 1.0

    def test_prefix_recovery_never_names_a_clean_sixteen(
        self, turkmenistan_datasets
    ):
        """Recovered prefixes are always a subset of the truth — the
        recovery refuses a /16 with any allowed raw-IP traffic, which
        is exactly the overblocking shadow."""
        recovered = recover_blocked_prefixes(turkmenistan_datasets.full)
        truth = {
            str(p) for p in turkmenistan_datasets.policy.blocked_prefixes
        }
        assert set(recovered) <= truth


class TestSyriaUnchanged:
    def test_default_regime_emits_only_sgos_signatures(self):
        datasets = build_scenario(TINY)
        censored = set(datasets.full.col("x_exception_id")) & CENSOR_EXCEPTIONS
        assert censored <= {"policy_denied", "policy_redirect"}
        assert datasets.config.regime == "syria"

    def test_syria_profile_matches_direct_construction(self):
        from repro.policy.syria import SyrianPolicy
        from repro.proxy import ProxyFleet

        generator = SYRIA.build_workload(TINY)
        policy = SYRIA.build_policy(generator)
        fleet = SYRIA.build_fleet(policy)
        assert isinstance(policy, SyrianPolicy)
        assert isinstance(fleet, ProxyFleet)


class TestShardedAndBatchedIdentity:
    @pytest.mark.parametrize("config", [TINY_PK, TINY_TM],
                             ids=["pakistan", "turkmenistan"])
    def test_workers_and_batch_size_leave_no_fingerprint(
        self, tmp_path, config
    ):
        simulate_to_logs(config, tmp_path / "serial", workers=1)
        simulate_to_logs(
            config, tmp_path / "sharded", workers=2, batch_size=64
        )
        assert (tmp_path / "sharded" / "proxies.log").read_bytes() == (
            tmp_path / "serial" / "proxies.log"
        ).read_bytes()


class TestRegimeCheckpointing:
    def test_resume_refuses_cross_regime_ledger(self, tmp_path):
        assert main([
            "simulate", "--requests", "2000", "--seed", "3",
            "--out", str(tmp_path / "a"),
            "--checkpoint-dir", str(tmp_path / "ledger"),
        ]) == 0
        with pytest.raises(SystemExit, match="regime"):
            main([
                "simulate", "--requests", "2000", "--seed", "3",
                "--regime", "pakistan",
                "--out", str(tmp_path / "b"),
                "--checkpoint-dir", str(tmp_path / "ledger"), "--resume",
            ])

    def test_verify_run_reports_the_regime_fingerprint(
        self, tmp_path, capsys
    ):
        assert main([
            "simulate", "--requests", "2000", "--seed", "3",
            "--regime", "turkmenistan", "--out", str(tmp_path / "logs"),
            "--checkpoint-dir", str(tmp_path / "ledger"),
        ]) == 0
        assert main(["verify-run", str(tmp_path / "ledger")]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert "regime=turkmenistan" in out
        assert "command=simulate" in out

    def test_unknown_regime_is_a_clean_usage_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown regime"):
            main([
                "simulate", "--requests", "100", "--regime", "atlantis",
                "--out", str(tmp_path),
            ])


class TestRegimeProfileShape:
    def test_register_requires_a_profile_like_object(self):
        """The registry stores RegimeProfile instances; the dataclass
        is frozen so registered entries cannot drift."""
        profile = get_regime("pakistan")
        assert isinstance(profile, RegimeProfile)
        assert profile.mechanisms == ("dns-injection", "http-blockpage")
        assert get_regime("turkmenistan").mechanisms == (
            "keyword-dpi", "rst-teardown", "subnet-overblocking"
        )


class TestSyriaDifferentialPin:
    """`--regime syria` is the pre-regime engine, pinned differentially:
    same bytes as the flagless default at every worker count and batch
    size, and the same --metrics document modulo timing."""

    ARGS = ["simulate", "--requests", "2000", "--seed", "3"]

    @staticmethod
    def _stable(path):
        import json

        document = json.loads(path.read_text())
        return {
            "command": document["command"],
            "counters": document["counters"],
            "schema": document["schema"],
            "totals": {
                key: value
                for key, value in document["totals"].items()
                if "seconds" not in key and "per_sec" not in key
            },
        }

    def test_flag_is_byte_identical_to_default(self, tmp_path):
        assert main([*self.ARGS, "--out", str(tmp_path / "default")]) == 0
        for workers, batch in ((1, 1), (2, 64), (4, 64)):
            out = tmp_path / f"syria-w{workers}-b{batch}"
            assert main([
                *self.ARGS, "--regime", "syria", "--out", str(out),
                "--workers", str(workers), "--batch-size", str(batch),
            ]) == 0
            assert (out / "proxies.log").read_bytes() == (
                tmp_path / "default" / "proxies.log"
            ).read_bytes(), (workers, batch)

    def test_metrics_modulo_timers_match_default(self, tmp_path):
        assert main([
            *self.ARGS, "--out", str(tmp_path / "default"),
            "--metrics", str(tmp_path / "default.json"),
        ]) == 0
        assert main([
            *self.ARGS, "--regime", "syria", "--workers", "2",
            "--batch-size", "64", "--out", str(tmp_path / "flagged"),
            "--metrics", str(tmp_path / "flagged.json"),
        ]) == 0
        assert self._stable(tmp_path / "flagged.json") == self._stable(
            tmp_path / "default.json"
        )
