"""Tests for dataset construction and the sampling math."""

import numpy as np
import pytest

from repro.datasets import proportion_confidence_interval
from repro.datasets.sampling import half_width
from repro.logmodel.anonymize import ZEROED_CLIENT_IP
from repro.timeline import USER_SLICE_DAYS, day_span


class TestScenarioDatasets:
    def test_sizes(self, scenario):
        summary = scenario.summary()
        assert summary["full"] > 0
        assert summary["denied"] < summary["full"]
        assert summary["user"] < summary["full"]
        # D_sample is a 4 % sample of D_full
        assert abs(summary["sample"] - summary["full"] * 0.04) < 3

    def test_denied_has_only_exceptions(self, scenario):
        assert (scenario.denied.col("x_exception_id") != "-").all()

    def test_user_slice_covers_july_22_23(self, scenario):
        epochs = scenario.user.col("epoch")
        spans = [day_span(day) for day in USER_SLICE_DAYS]
        for epoch in np.unique(epochs // 86400 * 86400):
            assert any(start <= epoch < end for start, end in spans)

    def test_user_slice_has_hashed_clients(self, scenario):
        clients = np.unique(scenario.user.col("c_ip"))
        assert ZEROED_CLIENT_IP not in clients
        assert all("." not in c for c in clients)  # pseudonyms, not IPs
        assert len(clients) > 1

    def test_other_days_have_zeroed_clients(self, scenario):
        full = scenario.full
        epochs = full.col("epoch")
        start, end = day_span("2011-08-03")
        in_aug = (epochs >= start) & (epochs < end)
        clients = np.unique(full.col("c_ip")[in_aug])
        assert list(clients) == [ZEROED_CLIENT_IP]

    def test_user_slice_uses_sg42_only(self, scenario):
        assert np.unique(scenario.user.col("s_ip")).tolist() == ["82.137.200.42"]

    def test_sample_rows_come_from_full(self, scenario):
        full_hosts = set(scenario.full.col("cs_host").tolist())
        sample_hosts = set(scenario.sample.col("cs_host").tolist())
        assert sample_hosts <= full_hosts

    def test_records_by_day_accounts_for_everything(self, scenario):
        assert sum(scenario.records_by_day.values()) == len(scenario.full)

    def test_build_is_deterministic(self, scenario):
        from repro.datasets import build_scenario

        rebuilt = build_scenario(scenario.config)
        assert rebuilt.summary() == scenario.summary()
        assert (
            rebuilt.full.col("cs_host")[:100].tolist()
            == scenario.full.col("cs_host")[:100].tolist()
        )


class TestSamplingTheory:
    def test_paper_bound(self):
        """The paper: n = 32 M gives ±0.0001 at 95 % confidence."""
        assert half_width(0.01, 32_000_000) < 0.0001

    def test_interval_contains_proportion(self):
        low, high = proportion_confidence_interval(0.3, 1000)
        assert low < 0.3 < high

    def test_narrower_with_more_samples(self):
        assert half_width(0.3, 10_000) < half_width(0.3, 100)

    def test_clipping(self):
        low, high = proportion_confidence_interval(0.0001, 100)
        assert low == 0.0
        low, high = proportion_confidence_interval(0.9999, 100)
        assert high == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_confidence_interval(1.5, 100)
        with pytest.raises(ValueError):
            proportion_confidence_interval(0.5, 0)
        with pytest.raises(ValueError):
            proportion_confidence_interval(0.5, 100, confidence=0.42)

    def test_confidence_levels_ordered(self):
        assert half_width(0.5, 100, 0.90) < half_width(0.5, 100, 0.99)
