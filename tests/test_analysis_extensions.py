"""Tests for the extension analyses: the HTTPS MITM check, the
keyword weather report, and the software-agent study."""

import numpy as np
import pytest

from repro.analysis.https_mitm import https_mitm_check
from repro.analysis.users import software_agent_analysis
from repro.analysis.weather import keyword_weather
from repro.policy.syria import KEYWORDS
from repro.timeline import day_epoch
from tests.helpers import allowed_row, censored_row, make_frame


class TestMitmCheck:
    def test_clean_https_shows_no_evidence(self):
        frame = make_frame([
            allowed_row(cs_method="CONNECT", cs_uri_port=443,
                        cs_uri_path="-", cs_uri_query="-"),
        ])
        result = https_mitm_check(frame)
        assert result.https_requests == 1
        assert not result.interception_evidence

    def test_decrypted_fields_are_flagged(self):
        frame = make_frame([
            allowed_row(cs_method="CONNECT", cs_uri_port=443,
                        cs_host="www.facebook.com",
                        cs_uri_path="/login.php", cs_uri_query="email=x"),
        ])
        result = https_mitm_check(frame)
        assert result.interception_evidence
        assert result.suspicious_hosts == ("www.facebook.com",)

    def test_http_traffic_ignored(self):
        frame = make_frame([allowed_row(cs_uri_path="/page")])
        result = https_mitm_check(frame)
        assert result.https_requests == 0

    def test_scenario_shows_no_interception(self, scenario):
        """Like the paper: the simulated proxies do not intercept TLS,
        and the logs prove it."""
        result = https_mitm_check(scenario.full)
        assert result.https_requests > 0
        assert not result.interception_evidence


class TestKeywordWeather:
    def make_frame(self):
        day1 = day_epoch("2011-08-01") + 100
        day2 = day_epoch("2011-08-02") + 100
        rows = (
            [censored_row(cs_uri_query="u=proxy", epoch=day1)] * 2
            + [censored_row(cs_uri_query="u=proxy", epoch=day2)] * 6
            + [censored_row(cs_uri_path="/israel-x", epoch=day1)]
            + [allowed_row(epoch=day1)] * 5
        )
        return make_frame(rows)

    def test_series(self):
        weather = keyword_weather(self.make_frame(), ("proxy", "israel"))
        assert weather.series("proxy") == [
            ("2011-08-01", 2), ("2011-08-02", 6),
        ]
        assert weather.series("israel") == [
            ("2011-08-01", 1), ("2011-08-02", 0),
        ]

    def test_share_series(self):
        weather = keyword_weather(self.make_frame(), ("proxy",))
        shares = dict(weather.share_series("proxy"))
        assert shares["2011-08-01"] == pytest.approx(2 / 3)
        assert shares["2011-08-02"] == pytest.approx(1.0)

    def test_anomaly_detection(self):
        day1 = day_epoch("2011-08-01") + 100
        rows = []
        # a keyword with steady small shares, then a burst
        for offset, count in enumerate((2, 2, 2, 20)):
            epoch = day1 + offset * 86400
            rows += [censored_row(cs_uri_query="u=proxy", epoch=epoch)] * count
            rows += [censored_row(cs_host="www.blocked.org", epoch=epoch)] * 20
        weather = keyword_weather(make_frame(rows), ("proxy",))
        anomalies = weather.anomalies(factor=2.5)
        assert ("proxy", "2011-08-04", pytest.approx(20 / 22 / (2 / 22), rel=0.01)) in [
            (k, d, pytest.approx(r, rel=0.01)) for k, d, r in anomalies
        ] or any(d == "2011-08-04" for _, d, _ in anomalies)

    def test_scenario_proxy_every_day(self, scenario):
        weather = keyword_weather(scenario.full, KEYWORDS)
        proxy_series = weather.series("proxy")
        assert len(proxy_series) == 9  # all log days
        august = [count for day, count in proxy_series if day.startswith("2011-08")]
        assert all(count > 0 for count in august)


class TestSoftwareAgents:
    def test_identifies_software_retries(self):
        rows = (
            [censored_row(c_ip="u1", cs_user_agent="Skype WISPr",
                          cs_host="ui.skype.com")] * 5
            + [allowed_row(c_ip="u2",
                           cs_user_agent="Mozilla/5.0 (Windows NT 6.1) "
                                         "AppleWebKit/534.30 (KHTML, like Gecko)"
                                         " Chrome/12.0.742.122 Safari/534.30")]
        )
        result = software_agent_analysis(make_frame(rows))
        assert result
        top = result[0]
        assert top.user_agent == "Skype WISPr"
        assert top.censored == 5
        assert top.censored_pct == 100.0
        assert top.top_censored_host == "ui.skype.com"

    def test_browsers_excluded(self):
        rows = [allowed_row(cs_user_agent="CustomBot/1.0")]
        result = software_agent_analysis(
            make_frame(rows), interactive_agents=frozenset({"CustomBot/1.0"})
        )
        assert result == []

    def test_scenario_skype_updater_visible(self, scenario):
        """The paper's Section 4 note: software agents repeatedly
        hitting censored endpoints."""
        rows = software_agent_analysis(scenario.user)
        by_agent = {row.user_agent: row for row in rows}
        skype = by_agent.get("Skype WISPr")
        if skype is not None and skype.requests >= 3:
            assert skype.censored_pct > 90.0
            assert "skype" in (skype.top_censored_host or "")
