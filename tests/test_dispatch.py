"""Tests for the lease-based distributed work queue (repro.dispatch).

The load-bearing invariants:

* a lease can be claimed by exactly one worker (``O_EXCL``), and an
  expired lease is reclaimed by exactly one contender (tomb rename);
* attempts are derived from the durable grant history, so a reclaimed
  shard re-runs with an incremented attempt no matter which process
  wins the re-claim;
* a distributed run's merged output is byte-identical to a single-box
  serial run, at every worker count and under worker churn (a real
  SIGKILL mid-shard, recovered via lease reclaim);
* lease lifecycle counters (grant/renew/expire/reclaim/requeue) land
  in the metrics registry of a coordinated run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.dispatch import (
    AdaptiveChunker,
    DispatchError,
    LeaseLost,
    QueueMismatch,
    SimulateJob,
    WorkQueue,
    config_from_spec,
    heartbeat_interval_from_env,
    job_from_spec,
    lease_ttl_from_env,
    run_distributed,
    run_worker,
    simulate_job_for,
)
from repro.engine.simulate import simulate_to_logs
from repro.metrics import MetricsRegistry
from repro.workload import ScenarioConfig


def small_job(tmp_path: Path, out: str = "out", **overrides) -> SimulateJob:
    config = ScenarioConfig(
        total_requests=overrides.pop("total_requests", 300),
        seed=overrides.pop("seed", 11),
        days=overrides.pop("days", ("2011-08-03", "2011-08-04")),
    )
    return simulate_job_for(config, tmp_path / out, **overrides)


def seeded_queue(tmp_path: Path, worker_id: str = "w0",
                 ttl: float = 30.0) -> WorkQueue:
    queue = WorkQueue(tmp_path / "run", worker_id=worker_id)
    job = small_job(tmp_path)
    queue.seed(job.to_spec(), ttl=ttl)
    return queue


# -- lease mechanics ---------------------------------------------------------

class TestLeases:
    def test_claim_is_single_winner(self, tmp_path):
        a = seeded_queue(tmp_path, "a")
        b = WorkQueue(tmp_path / "run", worker_id="b")
        lease = a.try_claim("day:2011-08-03")
        assert lease is not None and lease.worker == "a"
        assert b.try_claim("day:2011-08-03") is None

    def test_renew_pushes_deadline(self, tmp_path):
        queue = seeded_queue(tmp_path, ttl=30.0)
        lease = queue.try_claim("s1")
        renewed = queue.renew(lease)
        assert renewed.deadline >= lease.deadline
        on_disk = queue.read_lease("s1")
        assert on_disk.deadline == renewed.deadline

    def test_renew_after_reclaim_raises_lease_lost(self, tmp_path):
        mine = seeded_queue(tmp_path, "mine", ttl=0.05)
        lease = mine.try_claim("s1")
        time.sleep(0.06)
        thief = WorkQueue(tmp_path / "run", worker_id="thief")
        assert thief.reclaim_expired("s1")
        assert thief.try_claim("s1", attempt=1) is not None
        with pytest.raises(LeaseLost, match="thief"):
            mine.renew(lease)

    def test_release_completed_and_requeue_events(self, tmp_path):
        queue = seeded_queue(tmp_path)
        assert queue.release(queue.try_claim("s1"), completed=True)
        assert queue.release(queue.try_claim("s2"), completed=False)
        counters = queue.event_counters()
        assert counters["dispatch.shards.completed"] == 1
        assert counters["dispatch.shards.requeued"] == 1

    def test_release_of_stolen_lease_is_a_noop(self, tmp_path):
        mine = seeded_queue(tmp_path, "mine", ttl=0.05)
        lease = mine.try_claim("s1")
        time.sleep(0.06)
        thief = WorkQueue(tmp_path / "run", worker_id="thief")
        thief.reclaim_expired("s1")
        stolen = thief.try_claim("s1", attempt=1)
        assert mine.release(lease) is False
        # The thief's lease survived the attempted release.
        assert thief.read_lease("s1").worker == "thief"
        assert stolen is not None

    def test_live_lease_is_not_reclaimable(self, tmp_path):
        queue = seeded_queue(tmp_path, ttl=30.0)
        queue.try_claim("s1")
        assert queue.reclaim_expired("s1") is False

    def test_reclaim_race_has_one_winner(self, tmp_path):
        """Many threads spot the same expired lease; the tomb rename
        hands it to exactly one, so expire/reclaim events stay 1:1
        with incarnations."""
        queue = seeded_queue(tmp_path, ttl=0.01)
        queue.try_claim("s1")
        time.sleep(0.02)
        contenders = [
            WorkQueue(tmp_path / "run", worker_id=f"c{i}") for i in range(8)
        ]
        barrier = threading.Barrier(len(contenders))
        wins = []

        def contend(contender):
            barrier.wait()
            if contender.reclaim_expired("s1"):
                wins.append(contender.worker_id)

        threads = [
            threading.Thread(target=contend, args=(c,)) for c in contenders
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        counters = queue.event_counters()
        assert counters["dispatch.lease.expired"] == 1
        assert counters["dispatch.lease.reclaimed"] == 1

    def test_unparseable_lease_ages_out(self, tmp_path):
        """A claimant killed between O_EXCL create and write leaves an
        empty lease file; it must age out, not wedge the shard."""
        queue = seeded_queue(tmp_path, ttl=0.05)
        queue.lease_path("s1").touch()
        lease = queue.read_lease("s1")
        assert lease.worker == "?"
        assert not lease.expired(lease.granted_at)
        time.sleep(0.06)
        assert queue.reclaim_expired("s1")
        assert queue.try_claim("s1", attempt=1) is not None

    def test_claim_chunk_increments_attempt_after_reclaim(self, tmp_path):
        queue = seeded_queue(tmp_path, ttl=0.05)
        first = queue.claim_chunk(["s1", "s2"], limit=1)
        assert [lease.attempt for lease in first] == [0]
        time.sleep(0.06)
        second = queue.claim_chunk(["s1", "s2"], limit=2)
        by_shard = {lease.shard_id: lease.attempt for lease in second}
        assert by_shard == {"s1": 1, "s2": 0}

    def test_event_log_survives_torn_lines(self, tmp_path):
        queue = seeded_queue(tmp_path)
        queue.try_claim("s1")
        with queue.events_path.open("a") as handle:
            handle.write('{"event": "grant", "shard_id": "torn')
        assert queue.event_counters()["dispatch.lease.granted"] == 1


# -- queue manifest ----------------------------------------------------------

class TestQueueManifest:
    def test_reseed_without_resume_refused(self, tmp_path):
        queue = seeded_queue(tmp_path)
        with pytest.raises(DispatchError, match="--resume"):
            queue.seed(small_job(tmp_path).to_spec(), ttl=30.0)

    def test_reseed_with_different_job_refused(self, tmp_path):
        queue = seeded_queue(tmp_path)
        other = small_job(tmp_path, seed=99)
        with pytest.raises(QueueMismatch, match="different job"):
            queue.seed(other.to_spec(), ttl=30.0, resume=True)

    def test_reseed_same_job_on_resume_ok(self, tmp_path):
        queue = seeded_queue(tmp_path)
        queue.seed(small_job(tmp_path).to_spec(), ttl=30.0, resume=True)

    def test_foreign_schema_refused(self, tmp_path):
        queue = seeded_queue(tmp_path)
        manifest = json.loads(queue.manifest_path.read_text())
        manifest["schema"] = "repro.dispatch/99"
        queue.manifest_path.write_text(json.dumps(manifest))
        fresh = WorkQueue(tmp_path / "run")
        with pytest.raises(QueueMismatch, match="repro.dispatch/1"):
            fresh.manifest()

    def test_wait_for_manifest_times_out(self, tmp_path):
        queue = WorkQueue(tmp_path / "empty")
        with pytest.raises(DispatchError, match="coordinator"):
            queue.wait_for_manifest(timeout=0.05, poll=0.01)

    def test_job_spec_round_trips(self, tmp_path):
        job = small_job(tmp_path, batch_size=64)
        rebuilt = job_from_spec(json.loads(json.dumps(job.to_spec())))
        assert rebuilt == job
        assert rebuilt.labels() == job.labels()
        assert rebuilt.fingerprint() == job.fingerprint()

    def test_unknown_job_kind_refused(self):
        with pytest.raises(DispatchError, match="nonsense"):
            job_from_spec({"kind": "nonsense"})

    def test_unknown_config_field_refused(self):
        with pytest.raises(DispatchError, match="warp_factor"):
            config_from_spec({"total_requests": 10, "warp_factor": 9})


# -- env knobs ---------------------------------------------------------------

class TestEnvKnobs:
    def test_ttl_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
        assert lease_ttl_from_env() == 30.0
        monkeypatch.setenv("REPRO_LEASE_TTL", "2.5")
        assert lease_ttl_from_env() == 2.5

    @pytest.mark.parametrize("text", ["soon", "0", "-3"])
    def test_bad_ttl_names_variable(self, monkeypatch, text):
        monkeypatch.setenv("REPRO_LEASE_TTL", text)
        with pytest.raises(ValueError) as excinfo:
            lease_ttl_from_env()
        assert "REPRO_LEASE_TTL" in str(excinfo.value)
        assert repr(text) in str(excinfo.value)

    def test_heartbeat_interval_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_INTERVAL", raising=False)
        assert heartbeat_interval_from_env(1.5) == 1.5
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.2")
        assert heartbeat_interval_from_env(1.5) == 0.2


# -- adaptive shard sizing ---------------------------------------------------

class TestAdaptiveChunker:
    def test_starts_minimal_until_seeded(self):
        chunker = AdaptiveChunker(target_seconds=1.0, min_chunk=1,
                                  max_chunk=8)
        assert chunker.chunk_size() == 1

    def test_fast_shards_grow_the_chunk(self):
        chunker = AdaptiveChunker(target_seconds=1.0, max_chunk=8)
        for _ in range(5):
            chunker.observe(0.1)
        assert chunker.chunk_size() == 8

    def test_slow_shards_shrink_the_chunk(self):
        chunker = AdaptiveChunker(target_seconds=1.0, max_chunk=8)
        chunker.observe(0.01)
        assert chunker.chunk_size() > 1
        for _ in range(10):
            chunker.observe(5.0)
        assert chunker.chunk_size() == 1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(target_seconds=0.0)
        with pytest.raises(ValueError):
            AdaptiveChunker(target_seconds=1.0, min_chunk=4, max_chunk=2)


# -- in-process distributed runs ---------------------------------------------

class TestRunDistributed:
    def _serial(self, tmp_path, job):
        return simulate_to_logs(
            job.config, tmp_path / "serial",
            per_proxy=job.per_proxy, per_day=job.per_day,
            compress=job.compress,
        )

    def _assert_identical(self, tmp_path, out="out"):
        serial = sorted((tmp_path / "serial").iterdir())
        dist = sorted((tmp_path / out).iterdir())
        assert [p.name for p in serial] == [p.name for p in dist]
        for a, b in zip(serial, dist):
            assert a.read_bytes() == b.read_bytes(), a.name

    def test_spawned_workers_match_serial_bytes(self, tmp_path):
        job = small_job(tmp_path)
        self._serial(tmp_path, job)
        metrics = MetricsRegistry()
        run = run_distributed(
            job, tmp_path / "queue", spawn=2, ttl=20.0, metrics=metrics,
            poll_interval=0.05, wait_timeout=120.0,
        )
        self._assert_identical(tmp_path)
        assert run.counters["dispatch.lease.granted"] >= len(run.labels)
        assert run.counters["dispatch.shards.completed"] == len(run.labels)
        assert metrics.counters["dispatch.lease.granted"] >= len(run.labels)
        assert metrics.total_records() > 0

    def test_zero_spawn_with_inline_worker_thread(self, tmp_path):
        """--spawn 0 plus an externally run worker (here: a thread in
        this process) completes and matches serial bytes."""
        job = small_job(tmp_path)
        self._serial(tmp_path, job)
        queue_dir = tmp_path / "queue"
        worker = threading.Thread(
            target=run_worker, args=(queue_dir,),
            kwargs={"worker_id": "external", "poll_interval": 0.02,
                    "startup_timeout": 30.0},
        )
        worker.start()
        try:
            run_distributed(
                job, queue_dir, spawn=0, ttl=20.0,
                poll_interval=0.05, wait_timeout=120.0,
            )
        finally:
            worker.join(timeout=60.0)
        self._assert_identical(tmp_path)

    def test_wait_timeout_with_no_workers(self, tmp_path):
        job = small_job(tmp_path)
        with pytest.raises(DispatchError, match="pending"):
            run_distributed(
                job, tmp_path / "queue", spawn=0, ttl=20.0,
                poll_interval=0.02, wait_timeout=0.2,
            )

    def test_worker_summary_accounts_for_all_shards(self, tmp_path):
        job = small_job(tmp_path)
        queue_dir = tmp_path / "queue"
        done = {}

        def coordinate():
            done["run"] = run_distributed(
                job, queue_dir, spawn=0, ttl=20.0,
                poll_interval=0.05, wait_timeout=120.0,
            )

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        try:
            summary = run_worker(
                queue_dir, worker_id="solo", poll_interval=0.02,
                startup_timeout=30.0,
            )
        finally:
            coordinator.join(timeout=120.0)
        assert summary.executed == len(job.labels())
        assert sorted(summary.shards) == sorted(job.labels())
        assert summary.records > 0
        assert done["run"].labels == job.labels()


# -- the churn drill (real subprocesses, real SIGKILL) -----------------------

def _run_env(extra=None):
    import repro

    src = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    env.pop("REPRO_FAULT_PLAN", None)
    if extra:
        env.update(extra)
    return env


@pytest.mark.chaos
class TestWorkerChurn:
    """The acceptance scenario: 3 real workers, one SIGKILLed mid-shard
    by the ``worker.kill`` fault, and the run still completes with
    output byte-identical to a serial run."""

    SIM = ["--requests", "900", "--seed", "17"]
    KILL = "day:2011-08-01"

    def test_sigkilled_worker_is_reclaimed_byte_identical(self, tmp_path):
        serial = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", *self.SIM,
             "--out", str(tmp_path / "serial")],
            env=_run_env(), capture_output=True, text=True,
        )
        assert serial.returncode == 0, serial.stderr

        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro", "run-distributed", *self.SIM,
             "--out", str(tmp_path / "dist"),
             "--queue-dir", str(tmp_path / "queue"),
             "--spawn", "0", "--lease-ttl", "2",
             "--metrics", str(tmp_path / "metrics.json")],
            env=_run_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        # Every worker runs under a plan that SIGKILLs the first
        # claimant of KILL at the worker.kill site; the reclaimed
        # attempt (attempt 1) is past fail_attempts and survives.
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "work",
                 str(tmp_path / "queue"),
                 "--worker-id", f"w{i}", "--startup-timeout", "30"],
                env=_run_env({
                    "REPRO_FAULT_PLAN":
                        f"kill={self.KILL},kill_site=worker.kill",
                }),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for i in range(3)
        ]
        exits = [worker.wait(timeout=180) for worker in workers]
        for worker in workers:
            worker.communicate()
        out, err = coordinator.communicate(timeout=180)
        assert coordinator.returncode == 0, err

        assert exits.count(-signal.SIGKILL) == 1, exits
        assert all(code in (0, -signal.SIGKILL) for code in exits), exits

        serial_files = sorted((tmp_path / "serial").iterdir())
        dist_files = sorted((tmp_path / "dist").iterdir())
        assert [p.name for p in serial_files] == \
            [p.name for p in dist_files]
        for a, b in zip(serial_files, dist_files):
            assert a.read_bytes() == b.read_bytes(), a.name

        document = json.loads((tmp_path / "metrics.json").read_text())
        counters = document["counters"]
        assert counters["dispatch.lease.reclaimed"] >= 1
        assert counters["dispatch.lease.expired"] >= 1
        assert counters["dispatch.lease.granted"] >= 10

        # The ledger a churned run leaves behind audits clean.
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "verify-run",
             str(tmp_path / "queue"), "--json"],
            env=_run_env(), capture_output=True, text=True,
        )
        assert verify.returncode == 0, verify.stdout
        audit = json.loads(verify.stdout)
        assert audit["ok"] is True
        assert audit["counts"]["damaged"] == 0


# -- the status surface ------------------------------------------------------

class TestStatusServer:
    def test_healthz_and_workers_endpoints(self, tmp_path):
        from repro.runstate import RunCheckpoint
        from repro.service import WorkerStatusServer

        job = small_job(tmp_path)
        checkpoint = RunCheckpoint(tmp_path / "run", job.fingerprint())
        checkpoint.begin(job.labels())
        checkpoint.close()
        queue = seeded_queue(tmp_path, ttl=30.0)
        queue.try_claim("day:2011-08-03")
        queue.write_worker_status({"state": "running", "executed": 1})

        server = WorkerStatusServer(tmp_path / "run").start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/healthz") as reply:
                health = json.loads(reply.read())
            assert health["status"] == "ok"
            assert health["shards"]["leased"] == 1
            assert health["counters"]["dispatch.lease.granted"] == 1
            with urllib.request.urlopen(f"{base}/workers") as reply:
                workers = json.loads(reply.read())
            assert workers["workers"][0]["state"] == "running"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            server.stop()

    def test_queue_status_on_empty_directory(self, tmp_path):
        from repro.service import queue_status

        status = queue_status(tmp_path / "nowhere")
        assert status["shards"]["planned"] == 0
        assert status["leases"] == []
