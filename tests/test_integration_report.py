"""End-to-end integration: the full report against scenario ground
truth — the known-answer validation of the whole pipeline."""

import numpy as np

from repro.policy.syria import KEYWORDS


class TestReportEndToEnd:
    def test_every_section_present(self, report):
        assert report.table1 and report.table3 and report.table4
        assert report.table8 and report.table10 and report.table13
        assert report.fig3 and report.fig5.allowed_counts.sum() > 0
        assert report.tor.total_requests > 0
        assert report.bittorrent.announce_requests > 0

    def test_headline_proportions(self, report):
        """Table 3 shape: >90 % allowed, ~1 % censored, ~5 % errors."""
        full = report.table3["full"]
        assert full.allowed_pct > 90.0
        assert 0.5 < full.censored_pct < 3.0
        assert 3.0 < (full.denied_pct - full.censored_pct) < 9.0

    def test_sample_tracks_full(self, report):
        """D_sample proportions stay close to D_full (the paper's CI
        argument, at our smaller scale with a looser bound)."""
        full = report.table3["full"]
        sample = report.table3["sample"]
        assert abs(full.allowed_pct - sample.allowed_pct) < 3.0
        assert abs(full.censored_pct - sample.censored_pct) < 1.5

    def test_denied_dataset_consistency(self, report):
        denied = report.table3["denied"]
        assert denied.allowed == 0
        assert denied.denied == denied.total

    def test_recovered_domains_match_policy(self, scenario, report):
        """Known-answer: every Table 8 domain is genuinely blocked —
        by a domain rule, the .il suffix, or a keyword embedded in its
        hostnames (the recovery cannot and need not distinguish a
        domain rule from a keyword that covers every host under it)."""
        recovered = {row.domain for row in report.table8}
        policy = scenario.policy
        from repro.analysis.common import domain_column

        hosts = scenario.full.col("cs_host")
        domains = domain_column(scenario.full)
        for domain in recovered:
            domain_hosts = {
                str(h) for h, d in zip(hosts, domains) if d == domain
            }
            explained = (
                domain in policy.blocked_domains
                or domain.endswith(".il")
                or all(
                    any(k in host for k in policy.keywords)
                    for host in domain_hosts
                )
            )
            assert explained, f"false positive: {domain}"

    def test_recovered_keywords_subset_of_policy(self, report):
        keywords = [k.keyword for k in report.recovered_keywords]
        assert keywords
        assert keywords[0] == "proxy"
        assert set(keywords) <= set(KEYWORDS)

    def test_keyword_stats_sound(self, report):
        for row in report.table10:
            assert row.allowed == 0

    def test_facebook_both_top_allowed_and_top_censored(self, report):
        allowed_domains = {r.domain for r in report.table4.allowed}
        censored_domains = {r.domain for r in report.table4.censored}
        assert "facebook.com" in allowed_domains & censored_domains

    def test_tor_censored_only_by_sg44(self, report):
        assert set(report.tor.censored_by_proxy) <= {"SG-44"}
        assert report.tor.http_censored == 0

    def test_https_censorship_targets_ips(self, report):
        """Section 4: most censored HTTPS goes to raw IP addresses."""
        if report.https.censored_https >= 5:
            assert report.https.censored_to_ip_pct > 50.0

    def test_redirects_dominated_by_upload_youtube(self, report):
        assert report.table7.rows[0][0] == "upload.youtube.com"

    def test_table12_blocked_subnets_have_no_allowed(self, scenario, report):
        blocked = {str(net) for net in scenario.policy.blocked_subnets}
        for row in report.table12:
            if row.subnet in blocked:
                assert row.allowed_requests == 0

    def test_fig2_power_law_tail(self, report):
        counts = report.fig2.per_domain_counts["allowed"]
        assert counts.max() > 30 * np.median(counts)

    def test_fig6_rcv_bounded(self, report):
        values = report.fig6.rcv[~np.isnan(report.fig6.rcv)]
        assert (values >= 0).all() and (values <= 1).all()

    def test_fig9_rfilter_bounded(self, report):
        values = report.fig9.rfilter[~np.isnan(report.fig9.rfilter)]
        assert (values >= 0).all() and (values <= 1).all()

    def test_extension_sections_populated(self, report):
        assert report.mitm is not None
        assert not report.mitm.interception_evidence
        assert report.keyword_weather is not None
        assert len(report.keyword_weather.days) == 9
        assert report.economics is not None
        assert (
            report.economics.collateral_index_pct
            + report.economics.precision_index_pct
        ) == 100.0 or report.economics.censored_total == 0

    def test_report_without_keyword_recovery(self, scenario):
        from repro.analysis.report import build_report

        quick = build_report(scenario, recover_keywords=False)
        assert quick.recovered_keywords == []
        assert quick.table10  # Table 10 still computed from known list
