"""Tests for analysis.ipfilter (Tables 11 and 12)."""

import pytest

from repro.analysis.ipfilter import (
    censored_anonymizer_addresses,
    country_censorship_ratio,
    ipv4_subset,
    israeli_subnets,
)
from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from repro.geoip import GeoIPDatabase, builtin_registry
from repro.net.ip import parse_network
from tests.helpers import allowed_row, censored_row, make_frame, proxied_row


@pytest.fixture
def geo():
    return GeoIPDatabase([
        (parse_network("84.229.0.0/16"), "IL"),
        (parse_network("145.0.0.0/11"), "NL"),
    ])


class TestIpv4Subset:
    def test_filters_to_ip_hosts(self):
        frame = make_frame([
            allowed_row(cs_host="1.2.3.4"),
            allowed_row(cs_host="a.com"),
            censored_row(cs_host="84.229.0.1"),
        ])
        subset = ipv4_subset(frame)
        assert len(subset) == 2
        assert set(subset.col("cs_host")) == {"1.2.3.4", "84.229.0.1"}


class TestTable11:
    def test_ratios(self, geo):
        frame = make_frame(
            [censored_row(cs_host="84.229.0.1")] * 2
            + [allowed_row(cs_host="84.229.0.2")] * 2
            + [allowed_row(cs_host="145.0.0.9")] * 9
            + [censored_row(cs_host="145.0.0.10")]
        )
        rows = country_censorship_ratio(ipv4_subset(frame), geo)
        assert [r.country for r in rows] == ["IL", "NL"]
        assert rows[0].ratio_pct == pytest.approx(50.0)
        assert rows[1].ratio_pct == pytest.approx(10.0)

    def test_countries_without_censorship_omitted(self, geo):
        frame = make_frame([allowed_row(cs_host="145.0.0.9")])
        assert country_censorship_ratio(ipv4_subset(frame), geo) == []

    def test_empty_frame(self, geo):
        from repro.frame.io import empty_frame

        assert country_censorship_ratio(empty_frame(), geo) == []

    def test_israel_highest_ratio_on_scenario(self, scenario):
        """Table 11's headline: Israel has by far the highest ratio
        among countries with real traffic volume."""
        rows = country_censorship_ratio(
            ipv4_subset(scenario.full), builtin_registry()
        )
        by_country = {r.country: r for r in rows}
        assert "IL" in by_country
        il_ratio = by_country["IL"].ratio_pct
        # NL carries the bulk of IP traffic with a tiny ratio
        if "NL" in by_country:
            assert il_ratio > by_country["NL"].ratio_pct * 4


class TestTable12:
    def test_subnet_stats(self):
        frame = make_frame(
            [censored_row(cs_host="84.229.0.1")] * 2
            + [censored_row(cs_host="84.229.0.2")]
            + [allowed_row(cs_host="212.150.0.5")] * 3
            + [proxied_row(cs_host="84.229.0.3")]
        )
        rows = israeli_subnets(
            ipv4_subset(frame),
            (parse_network("84.229.0.0/16"), parse_network("212.150.0.0/16")),
        )
        blocked = rows[0]
        assert blocked.subnet == "84.229.0.0/16"
        assert blocked.censored_requests == 3
        assert blocked.censored_ips == 2
        assert blocked.proxied_requests == 1
        open_net = rows[1]
        assert open_net.allowed_requests == 3
        assert open_net.allowed_ips == 1

    def test_scenario_blocked_vs_open_subnets(self, scenario):
        """Table 12's two groups: wholesale-blocked subnets vs the
        mostly-allowed 212.150.0.0/16."""
        subnets = scenario.policy.blocked_subnets + (
            parse_network("212.150.0.0/16"),
        )
        rows = israeli_subnets(ipv4_subset(scenario.full), subnets)
        by_subnet = {r.subnet: r for r in rows}
        open_net = by_subnet["212.150.0.0/16"]
        assert open_net.allowed_requests >= open_net.censored_requests
        blocked_total = sum(
            by_subnet[str(s)].allowed_requests
            for s in scenario.policy.blocked_subnets
        )
        assert blocked_total == 0  # wholesale-blocked: nothing allowed


class TestAnonymizerCheck:
    def test_counts(self, geo):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("84.229.0.1", C.ANONYMIZER)
        frame = make_frame([
            censored_row(cs_host="84.229.0.1"),
            censored_row(cs_host="84.229.0.2"),
        ])
        anonymizers, total = censored_anonymizer_addresses(
            ipv4_subset(frame), geo, categorizer, country="IL"
        )
        assert (anonymizers, total) == (1, 2)
