"""Tests for the what-if scenario machinery (repro.scenarios)."""

import numpy as np
import pytest

from repro.analysis.common import censored_mask, domain_column
from repro.analysis.overview import traffic_breakdown
from repro.analysis.toranalysis import identify_tor_traffic, tor_overview
from repro.scenarios import (
    build_custom_scenario,
    no_keyword_filtering,
    streaming_curfew,
    tor_blackout,
)
from repro.workload.config import small_config


@pytest.fixture(scope="module")
def config():
    return small_config(20_000, seed=21)


@pytest.fixture(scope="module")
def baseline(config):
    return build_custom_scenario(config)


class TestCustomScenario:
    def test_identity_transform_matches_builder(self, config, baseline):
        from repro.datasets import build_scenario

        canonical = build_scenario(config)
        assert baseline.summary() == canonical.summary()

    def test_datasets_consistent(self, baseline):
        assert (baseline.denied.col("x_exception_id") != "-").all()
        assert len(baseline.sample) == round(len(baseline.full) * 0.04)


class TestTorBlackout:
    @pytest.fixture(scope="class")
    def blackout(self, config):
        return build_custom_scenario(config, transform=tor_blackout)

    def test_all_onion_traffic_censored(self, blackout):
        tor = identify_tor_traffic(
            blackout.full, blackout.generator.tor_directory
        )
        overview = tor_overview(tor)
        onion_total = int(tor.onion_mask.sum())
        assert onion_total > 0
        # every OR connection denied (modulo the PROXIED cache quirk)
        assert overview.onion_censored > onion_total * 0.9

    def test_directory_traffic_still_allowed(self, blackout):
        tor = identify_tor_traffic(
            blackout.full, blackout.generator.tor_directory
        )
        assert tor_overview(tor).http_censored == 0

    def test_every_proxy_censors(self, blackout):
        tor = identify_tor_traffic(
            blackout.full, blackout.generator.tor_directory
        )
        overview = tor_overview(tor)
        assert len(overview.censored_by_proxy) >= 5  # not just SG-44

    def test_censorship_rises_vs_baseline(self, baseline, blackout):
        base = traffic_breakdown(baseline.full).censored_pct
        new = traffic_breakdown(blackout.full).censored_pct
        assert new > base


class TestStreamingCurfew:
    @pytest.fixture(scope="class")
    def curfew(self, config):
        return build_custom_scenario(
            config, transform=streaming_curfew(start_hour=18, end_hour=23)
        )

    def test_youtube_censored_in_window_only(self, curfew):
        frame = curfew.full
        censored = censored_mask(frame)
        hours = (frame.col("epoch") % 86400) // 3600
        # www.youtube.com only: upload.youtube.com is redirect-listed
        # in the baseline policy regardless of the curfew
        of_youtube = frame.col("cs_host") == "www.youtube.com"
        inside = of_youtube & (hours >= 18) & (hours < 23)
        outside = of_youtube & ~((hours >= 18) & (hours < 23))
        assert int((inside & censored).sum()) > 0
        # outside the curfew youtube stays almost entirely open
        outside_total = int(outside.sum())
        outside_censored = int((outside & censored).sum())
        assert outside_censored < outside_total * 0.05

    def test_always_blocked_sites_unaffected(self, curfew, baseline):
        """metacafe is blocked by domain rule either way."""
        for datasets in (curfew, baseline):
            frame = datasets.full
            domains = domain_column(frame)
            censored = censored_mask(frame)
            of_metacafe = domains == "metacafe.com"
            allowed = of_metacafe & ~censored & (
                frame.col("sc_filter_result") == "OBSERVED"
            ) & (frame.col("x_exception_id") == "-")
            assert int(allowed.sum()) == 0


class TestNoKeywordFiltering:
    @pytest.fixture(scope="class")
    def stripped(self, config):
        return build_custom_scenario(config, transform=no_keyword_filtering)

    def test_censored_volume_collapses(self, baseline, stripped):
        """The paper: 'proxy' alone is >50 % of censored traffic;
        dropping the keyword engine should roughly halve censorship."""
        base = traffic_breakdown(baseline.full).censored_pct
        new = traffic_breakdown(stripped.full).censored_pct
        assert new < base * 0.65

    def test_facebook_plugins_now_allowed(self, stripped):
        frame = stripped.full
        plugins = np.char.startswith(
            frame.col("cs_uri_path").astype(str), "/plugins/"
        )
        censored = censored_mask(frame)
        assert int((plugins & censored).sum()) == 0

    def test_domain_blocking_survives(self, stripped):
        frame = stripped.full
        domains = domain_column(frame)
        censored = censored_mask(frame)
        of_metacafe = domains == "metacafe.com"
        assert int((of_metacafe & censored).sum()) > 0
