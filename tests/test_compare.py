"""Tests for the cross-regime comparison (repro.regimes.compare and
``repro compare``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.regimes import UnknownRegimeError
from repro.regimes.compare import (
    DEFAULT_COMPARE_REGIMES,
    compare_regimes,
    comparison_table,
    comparison_to_json,
    comparison_to_markdown,
)
from repro.workload.config import DEFAULT_BOOSTS, ScenarioConfig

#: Shared workload: small, boosted, and seeded to make every regime's
#: mechanisms visible (the same volume/seed the CLI smoke uses).
CONFIG = ScenarioConfig(
    total_requests=3_000, seed=7, boosts=dict(DEFAULT_BOOSTS)
)


@pytest.fixture(scope="module")
def comparison():
    return compare_regimes(CONFIG)


class TestCompareRegimes:
    def test_one_summary_per_regime_in_request_order(self, comparison):
        assert tuple(s.regime for s in comparison.summaries) == (
            DEFAULT_COMPARE_REGIMES
        )
        assert all(s.total > 0 for s in comparison.summaries)

    def test_identical_workload_across_regimes(self, comparison):
        """Same config, same seed → every regime saw the same request
        volume; only the deployment differs."""
        totals = {s.total for s in comparison.summaries}
        assert len(totals) == 1

    def test_mechanism_mixes_are_regime_specific(self, comparison):
        syria = comparison.summary_for("syria")
        pakistan = comparison.summary_for("pakistan")
        turkmenistan = comparison.summary_for("turkmenistan")
        assert syria.mechanism_mix.get("policy_denied", 0) > 0
        assert pakistan.mechanism_mix.get("dns_injected_nxdomain", 0) > 0
        assert turkmenistan.mechanism_mix.get("dpi_rst_teardown", 0) > 0
        # No regime emits another regime's signature.
        assert "dns_injected_nxdomain" not in syria.mechanism_mix
        assert "policy_denied" not in pakistan.mechanism_mix
        assert "policy_denied" not in turkmenistan.mechanism_mix

    def test_only_syria_has_a_proxy_cache(self, comparison):
        assert comparison.summary_for("syria").proxied_pct > 0
        assert comparison.summary_for("pakistan").proxied_pct == 0
        assert comparison.summary_for("turkmenistan").proxied_pct == 0

    def test_every_regime_carries_scored_recoveries(self, comparison):
        for summary in comparison.summaries:
            assert summary.recoveries
            for recovery in summary.recoveries:
                assert 0.0 <= recovery.precision <= 1.0
                assert 0.0 <= recovery.recall <= 1.0

    def test_unknown_regime_fails_before_any_simulation(self):
        with pytest.raises(UnknownRegimeError, match="atlantis"):
            compare_regimes(CONFIG, ("syria", "atlantis"))

    def test_summary_for_unknown_regime_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.summary_for("atlantis")


class TestRenderings:
    def test_table_covers_all_regimes_and_mechanisms(self, comparison):
        table = comparison_table(comparison)
        for name in DEFAULT_COMPARE_REGIMES:
            assert name in table
        assert "Regime comparison — 3,000 requests, seed 7" in table
        assert "mechanism dns_injected_nxdomain" in table
        assert "mechanism dpi_rst_teardown" in table
        assert "recovered dns-domains" in table
        assert "precision dpi-keywords" in table

    def test_markdown_is_a_pipe_table(self, comparison):
        markdown = comparison_to_markdown(comparison)
        header = "| Metric | syria | pakistan | turkmenistan |"
        assert header in markdown
        assert "| --- | --- | --- | --- |" in markdown
        for summary in comparison.summaries:
            assert f"- **{summary.regime}** — {summary.description}" \
                in markdown

    def test_json_document_shape(self, comparison):
        document = comparison_to_json(comparison)
        assert document["schema"] == "repro.compare/1"
        assert document["requests"] == 3_000 and document["seed"] == 7
        assert [r["regime"] for r in document["regimes"]] == list(
            DEFAULT_COMPARE_REGIMES
        )
        for entry in document["regimes"]:
            assert set(entry) >= {
                "mechanisms", "allowed_pct", "censored_pct",
                "mechanism_mix", "error_surface", "recoveries",
            }
            for recovery in entry["recoveries"]:
                assert set(recovery) == {
                    "kind", "recovered", "truth", "precision", "recall",
                }
        json.dumps(document)  # JSON-serializable end to end


class TestCompareCli:
    def test_compare_emits_one_table_covering_all_regimes(
        self, tmp_path, capsys
    ):
        markdown = tmp_path / "compare.md"
        document = tmp_path / "compare.json"
        assert main([
            "compare", "--requests", "3000", "--seed", "7",
            "--workers", "2", "--batch-size", "64",
            "--markdown", str(markdown), "--json", str(document),
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("Regime comparison") == 1
        for name in DEFAULT_COMPARE_REGIMES:
            assert name in out
        assert "| Metric | syria | pakistan | turkmenistan |" in (
            markdown.read_text()
        )
        payload = json.loads(document.read_text())
        assert [r["regime"] for r in payload["regimes"]] == list(
            DEFAULT_COMPARE_REGIMES
        )

    def test_compare_subset_of_regimes(self, capsys):
        assert main([
            "compare", "--requests", "1500", "--seed", "3",
            "--regimes", "pakistan", "turkmenistan",
        ]) == 0
        out = capsys.readouterr().out
        assert "pakistan" in out and "turkmenistan" in out
        assert "mechanism policy_denied" not in out

    def test_compare_rejects_unknown_regime(self):
        with pytest.raises(SystemExit, match="unknown regime"):
            main([
                "compare", "--requests", "100",
                "--regimes", "syria", "atlantis",
            ])


class TestCompareResilience:
    """``repro compare`` composes with the resilience surface: batched
    execution must not change a single reported number, and a fault
    plan under ``--allow-partial`` quarantines per regime without
    sinking the comparison."""

    REGIMES = ("syria", "pakistan")
    SMALL = ScenarioConfig(
        total_requests=2_000, seed=9, boosts=dict(DEFAULT_BOOSTS)
    )

    def test_batched_comparison_equals_scalar(self):
        scalar = compare_regimes(self.SMALL, self.REGIMES)
        batched = compare_regimes(self.SMALL, self.REGIMES, batch_size=64)
        assert comparison_to_json(batched) == comparison_to_json(scalar)

    def test_quarantined_day_reported_once_per_regime(self):
        from repro.engine import RetryPolicy
        from repro.faults import FaultPlan, FaultRule, ShardFailureReport

        victim = f"day:{self.SMALL.days[1]}"
        failures = ShardFailureReport()
        partial = compare_regimes(
            self.SMALL, self.REGIMES,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            allow_partial=True, failures=failures,
            fault_plan=FaultPlan(rules=(
                FaultRule(site="shard.start", kind="crash",
                          shard_id=victim),
            )),
        )
        # One quarantine record per regime: each regime's run lost the
        # same shard of the shared workload.
        assert failures.shard_ids() == [victim] * len(self.REGIMES)
        clean = compare_regimes(self.SMALL, self.REGIMES)
        for name in self.REGIMES:
            survived = partial.summary_for(name)
            assert 0 < survived.total < clean.summary_for(name).total

    def test_cli_fault_plan_with_allow_partial(self, monkeypatch, capsys):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "rate=1.0,seed=1,attempts=99"
        )
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "0")
        assert main([
            "compare", "--requests", "1500", "--seed", "3",
            "--regimes", "syria", "--allow-partial",
        ]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "Regime comparison" in out

    def test_cli_fault_plan_without_allow_partial_fails(self, monkeypatch):
        from repro.engine import ShardError

        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "rate=1.0,seed=1,attempts=99"
        )
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "0")
        with pytest.raises(ShardError):
            main([
                "compare", "--requests", "1500", "--seed", "3",
                "--regimes", "syria",
            ])
