"""Tests for analysis.proxies (Fig 7, Table 6) and analysis.redirects
(Table 7)."""

import numpy as np
import pytest

from repro.analysis.proxies import (
    category_labels_by_proxy,
    censored_domain_vectors,
    proxy_load_timeseries,
    proxy_names_column,
    proxy_similarity,
)
from repro.analysis.redirects import (
    followup_requests_after_redirect,
    redirect_hosts,
)
from repro.logmodel.fields import proxy_ip
from repro.timeline import PROTEST_DAY, day_epoch
from tests.helpers import allowed_row, censored_row, make_frame


def on(proxy: int, **kw) -> dict:
    kw["s_ip"] = proxy_ip(proxy)
    return kw


class TestProxyNames:
    def test_column(self):
        frame = make_frame([
            allowed_row(**on(42)), allowed_row(**on(48)),
        ])
        assert proxy_names_column(frame).tolist() == ["SG-42", "SG-48"]


class TestSimilarity:
    def test_table6_structure(self):
        day = PROTEST_DAY
        epoch = day_epoch(day) + 100
        rows = (
            # SG-43 and SG-44 censor the same domains -> similar
            [censored_row(cs_host="www.facebook.com", epoch=epoch, **on(43))] * 3
            + [censored_row(cs_host="www.skype.com", epoch=epoch, **on(43))]
            + [censored_row(cs_host="www.facebook.com", epoch=epoch, **on(44))] * 3
            + [censored_row(cs_host="www.skype.com", epoch=epoch, **on(44))]
            # SG-48 censors something entirely different
            + [censored_row(cs_host="www.metacafe.com", epoch=epoch, **on(48))] * 4
        )
        result = proxy_similarity(make_frame(rows), day=day)
        assert result.value("SG-43", "SG-44") == pytest.approx(1.0)
        assert result.value("SG-43", "SG-48") == 0.0
        assert result.value("SG-48", "SG-48") == pytest.approx(1.0)

    def test_day_filter(self):
        other_day = day_epoch("2011-08-04") + 100
        rows = [censored_row(cs_host="a.com", epoch=other_day, **on(43))]
        vectors = censored_domain_vectors(make_frame(rows), day=PROTEST_DAY)
        assert vectors["SG-43"] == {}

    def test_scenario_structure(self, scenario):
        """The paper's Table 6 shape: SG-48 is the odd one out (its
        censored vector is dominated by the redirected metacafe
        traffic) while the other proxies form a similar cluster.
        Computed over the full period — at test scale a single day is
        too sparse for stable cosines."""
        result = proxy_similarity(scenario.full)
        cluster = result.value("SG-43", "SG-46")
        outlier = np.mean([
            result.value("SG-48", name)
            for name in ("SG-42", "SG-43", "SG-44", "SG-46", "SG-47")
        ])
        assert cluster > 0.55
        assert outlier < 0.50
        assert cluster > outlier + 0.1
        # SG-45 receives a slice of the redirected domains, so it is
        # SG-48's closest peer.
        sg48_row = {
            name: result.value("SG-48", name)
            for name in result.proxies
            if name != "SG-48"
        }
        top_two = sorted(sg48_row, key=sg48_row.get, reverse=True)[:2]
        assert "SG-45" in top_two


class TestLoadTimeseries:
    def test_fig7_shares(self):
        epoch = day_epoch(PROTEST_DAY) + 1800
        rows = [allowed_row(epoch=epoch, **on(42))] * 3 + [
            allowed_row(epoch=epoch, **on(43))
        ]
        series = proxy_load_timeseries(
            make_frame(rows), day_epoch(PROTEST_DAY), day_epoch(PROTEST_DAY) + 3600
        )
        sg42 = series.proxies.index("SG-42")
        assert series.total_shares[sg42][0] == pytest.approx(75.0)
        assert series.total_shares[:, 0].sum() == pytest.approx(100.0)

    def test_load_roughly_balanced_on_scenario(self, scenario):
        start = day_epoch("2011-08-03")
        series = proxy_load_timeseries(scenario.full, start, start + 86400,
                                       bin_seconds=86400)
        shares = series.total_shares[:, 0]
        assert shares.max() < 25.0  # fair balance across 7 proxies
        assert shares.min() > 5.0

    def test_sg48_overrepresented_in_censored(self, scenario):
        start = day_epoch("2011-08-03")
        series = proxy_load_timeseries(scenario.full, start, start + 86400,
                                       bin_seconds=86400)
        sg48 = series.proxies.index("SG-48")
        assert series.censored_shares[sg48][0] > series.total_shares[sg48][0] * 1.5


class TestCategoryLabels:
    def test_paper_configuration_split(self, scenario):
        labels = category_labels_by_proxy(scenario.full)
        assert "none" in labels["SG-43"]
        assert "none" in labels["SG-48"]
        assert "unavailable" in labels["SG-42"]
        assert "none" not in labels["SG-42"]


class TestRedirects:
    def test_table7(self):
        rows = (
            [censored_row(cs_host="upload.youtube.com",
                          x_exception_id="policy_redirect")] * 3
            + [censored_row(cs_host="www.facebook.com",
                            x_exception_id="policy_redirect")]
            + [censored_row(cs_host="other.com")]
        )
        result = redirect_hosts(make_frame(rows))
        assert result.total_redirects == 4
        assert result.rows[0][0] == "upload.youtube.com"
        assert result.rows[0][2] == pytest.approx(75.0)

    def test_scenario_dominated_by_upload_youtube(self, scenario):
        result = redirect_hosts(scenario.full)
        assert result.total_redirects > 0
        assert result.rows[0][0] == "upload.youtube.com"
        assert result.rows[0][2] > 50.0

    def test_followup_detection(self):
        epoch = day_epoch(PROTEST_DAY)
        rows = [
            censored_row(c_ip="u1", epoch=epoch,
                         x_exception_id="policy_redirect"),
            allowed_row(c_ip="u1", epoch=epoch + 1),
        ]
        assert followup_requests_after_redirect(make_frame(rows)) == 1

    def test_no_followup_outside_window(self):
        epoch = day_epoch(PROTEST_DAY)
        rows = [
            censored_row(c_ip="u1", epoch=epoch,
                         x_exception_id="policy_redirect"),
            allowed_row(c_ip="u1", epoch=epoch + 10),
            allowed_row(c_ip="u2", epoch=epoch + 1),
        ]
        assert followup_requests_after_redirect(make_frame(rows)) == 0

    def test_no_redirects_no_followups(self):
        assert followup_requests_after_redirect(
            make_frame([allowed_row()])
        ) == 0
