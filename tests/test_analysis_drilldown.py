"""Tests for the per-domain drill-down (analysis.drilldown)."""

import pytest

from repro.analysis.drilldown import compare_domains, domain_profile
from tests.helpers import allowed_row, censored_row, error_row, make_frame, proxied_row


@pytest.fixture
def frame():
    return make_frame(
        [allowed_row(cs_host="www.facebook.com", cs_uri_path="/home.php")] * 4
        + [censored_row(cs_host="www.facebook.com",
                        cs_uri_path="/plugins/like.php")] * 3
        + [error_row("tcp_error", cs_host="www.facebook.com",
                     cs_uri_path="/home.php")]
        + [proxied_row(cs_host="ar-ar.facebook.com", cs_uri_path="/")]
        + [censored_row(cs_host="www.metacafe.com", cs_uri_path="/")] * 2
    )


class TestDomainProfile:
    def test_counts(self, frame):
        profile = domain_profile(frame, "facebook.com")
        assert profile.requests == 9
        assert profile.allowed == 4
        assert profile.censored == 3
        assert profile.errors == 1
        assert profile.proxied == 1
        assert profile.censored_pct == pytest.approx(300 / 9)

    def test_hosts_aggregated(self, frame):
        profile = domain_profile(frame, "facebook.com")
        hosts = dict(profile.hosts)
        assert hosts["www.facebook.com"] == 8
        assert hosts["ar-ar.facebook.com"] == 1

    def test_path_attribution(self, frame):
        profile = domain_profile(frame, "facebook.com")
        censored_paths = {p.path: p for p in profile.top_censored_paths}
        assert censored_paths["/plugins/like.php"].censored == 3
        assert censored_paths["/plugins/like.php"].allowed == 0
        allowed_paths = {p.path: p for p in profile.top_allowed_paths}
        assert allowed_paths["/home.php"].allowed == 4

    def test_exception_mix(self, frame):
        profile = domain_profile(frame, "facebook.com")
        exceptions = dict(profile.exceptions)
        assert exceptions["policy_denied"] == 3
        assert exceptions["tcp_error"] == 1

    def test_flags(self, frame):
        assert domain_profile(frame, "facebook.com").mixed
        assert domain_profile(frame, "metacafe.com").fully_blocked

    def test_unknown_domain(self, frame):
        profile = domain_profile(frame, "nosuch.com")
        assert profile.requests == 0
        assert not profile.fully_blocked

    def test_censored_by_day(self, frame):
        profile = domain_profile(frame, "facebook.com")
        assert profile.censored_by_day == (("2011-08-03", 3),)

    def test_compare_sorted_by_censored(self, frame):
        profiles = compare_domains(frame, ["metacafe.com", "facebook.com"])
        assert [p.domain for p in profiles] == ["facebook.com", "metacafe.com"]


class TestScenarioDrilldown:
    def test_facebook_is_mixed(self, scenario):
        profile = domain_profile(scenario.full, "facebook.com")
        assert profile.mixed
        # the censored paths are the plugin endpoints
        blocked = [p.path for p in profile.top_censored_paths]
        assert any(path.startswith(("/plugins/", "/extern/"))
                   for path in blocked)

    def test_metacafe_fully_blocked(self, scenario):
        profile = domain_profile(scenario.full, "metacafe.com")
        assert profile.fully_blocked
        assert profile.censored_by_day  # blocked every day it was visited

    def test_live_dot_com_split_by_host(self, scenario):
        profile = domain_profile(scenario.full, "live.com")
        hosts = dict(profile.hosts)
        assert "messenger.live.com" in hosts
        assert "mail.live.com" in hosts
        assert profile.mixed  # messenger blocked, mail open
