"""Tests for the fault-injection subsystem (repro.faults).

The chaos harness is only useful if its own behavior is pinned:
rules fire exactly where and when the plan says, rate-based injection
is a pure function of (seed, site, shard), the active-plan context
nests and restores, and the quarantine report obeys the same monoid
laws as every other accumulator in the system.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedCorruption,
    InjectedCrash,
    InjectedFault,
    ShardFailure,
    ShardFailureReport,
    active_fault_context,
    fault_point,
    parse_fault_plan,
    plan_from_env,
    use_fault_plan,
)


# -- exceptions --------------------------------------------------------------

class TestInjectedFault:
    def test_message_names_site_shard_and_attempt(self):
        error = InjectedFault("shard.start", "day:2011-08-03", 2)
        assert "shard.start" in str(error)
        assert "day:2011-08-03" in str(error)
        assert "attempt 2" in str(error)
        assert error.site == "shard.start"
        assert error.shard_id == "day:2011-08-03"
        assert error.attempt == 2

    def test_kinds(self):
        assert InjectedFault("s", "x", 0).kind == "transient"
        assert InjectedCrash("s", "x", 0).kind == "crash"
        assert InjectedCorruption("s", "x", 0).kind == "corrupt"
        assert isinstance(InjectedCrash("s", "x", 0), InjectedFault)

    @pytest.mark.parametrize(
        "cls", [InjectedFault, InjectedCrash, InjectedCorruption]
    )
    def test_survives_pickle(self, cls):
        # Worker exceptions cross the pool boundary pickled; multi-arg
        # __init__ exceptions silently break without __reduce__.
        error = cls("elff.read", "log:sg-42.log", 1)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert (clone.site, clone.shard_id, clone.attempt) == (
            "elff.read", "log:sg-42.log", 1,
        )


# -- rules -------------------------------------------------------------------

class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="shard.start", kind="meteor")

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_accepts_every_documented_kind(self, kind):
        assert FaultRule(site="shard.start", kind=kind).kind == kind

    def test_matches_site_and_wildcard_shard(self):
        rule = FaultRule(site="shard.start")
        assert rule.matches("shard.start", "day:a")
        assert rule.matches("shard.start", "day:b")
        assert not rule.matches("elff.read", "day:a")

    def test_matches_exact_shard_only_when_pinned(self):
        rule = FaultRule(site="shard.start", shard_id="day:a")
        assert rule.matches("shard.start", "day:a")
        assert not rule.matches("shard.start", "day:b")


# -- plans -------------------------------------------------------------------

class TestFaultPlanFire:
    def test_transient_fires_then_heals(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", fail_attempts=2),
        ))
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                plan.fire("shard.start", "day:a", attempt)
        plan.fire("shard.start", "day:a", 2)  # healed

    def test_crash_fires_on_every_attempt(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="crash"),
        ))
        for attempt in (0, 1, 5):
            with pytest.raises(InjectedCrash):
                plan.fire("shard.start", "day:a", attempt)

    def test_corrupt_fires_on_every_attempt(self):
        plan = FaultPlan(rules=(
            FaultRule(site="gzip.open", kind="corrupt"),
        ))
        with pytest.raises(InjectedCorruption):
            plan.fire("gzip.open", "log:x", 3)

    def test_slow_sleeps_then_continues(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="slow", delay_seconds=0.0),
        ))
        plan.fire("shard.start", "day:a", 0)  # no exception

    def test_unmatched_site_is_silent(self):
        plan = FaultPlan(rules=(
            FaultRule(site="elff.read", kind="crash"),
        ))
        plan.fire("shard.start", "day:a", 0)

    def test_plan_is_picklable(self):
        plan = FaultPlan(
            rules=(FaultRule(site="shard.start", kind="crash"),),
            seed=7, rate=0.25,
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestRateInjection:
    def test_roll_is_deterministic_and_in_range(self):
        plan = FaultPlan(seed=11, rate=0.5)
        first = plan.roll("shard.start", "day:a")
        assert 0.0 <= first < 1.0
        assert plan.roll("shard.start", "day:a") == first

    def test_roll_varies_by_site_shard_and_seed(self):
        plan = FaultPlan(seed=11)
        rolls = {
            plan.roll(site, shard)
            for site in FAULT_SITES
            for shard in ("day:a", "day:b", "day:c")
        }
        assert len(rolls) > 1
        assert FaultPlan(seed=12).roll(
            "shard.start", "day:a"
        ) != plan.roll("shard.start", "day:a")

    def test_rate_one_poisons_only_the_configured_attempts(self):
        plan = FaultPlan(seed=3, rate=1.0, rate_attempts=1)
        with pytest.raises(InjectedFault):
            plan.fire("shard.start", "day:a", 0)
        plan.fire("shard.start", "day:a", 1)  # attempt 1 is clean

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=3, rate=0.0)
        for shard in ("day:a", "day:b", "day:c"):
            plan.fire("shard.start", shard, 0)

    def test_rate_only_rolls_at_the_rate_site(self):
        plan = FaultPlan(seed=3, rate=1.0, rate_site="elff.read")
        plan.fire("shard.start", "day:a", 0)
        with pytest.raises(InjectedFault):
            plan.fire("elff.read", "day:a", 0)

    def test_rate_hit_fraction_tracks_rate(self):
        plan = FaultPlan(seed=99, rate=0.3)
        hits = sum(
            plan.roll("shard.start", f"day:{i}") < plan.rate
            for i in range(400)
        )
        assert 0.2 < hits / 400 < 0.4


# -- the active-plan context and the hook ------------------------------------

class TestFaultPoint:
    def test_noop_when_no_plan_is_active(self):
        assert active_fault_context() is None
        fault_point("shard.start")  # must not raise

    def test_fires_inside_context(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="crash"),
        ))
        with use_fault_plan(plan, shard_id="day:a", attempt=0):
            with pytest.raises(InjectedCrash) as caught:
                fault_point("shard.start")
        assert caught.value.shard_id == "day:a"
        assert active_fault_context() is None

    def test_context_nests_and_restores(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        with use_fault_plan(outer, shard_id="day:a"):
            with use_fault_plan(inner, shard_id="day:b", attempt=3):
                assert active_fault_context() == (inner, "day:b", 3)
            assert active_fault_context() == (outer, "day:a", 0)
        assert active_fault_context() is None

    def test_none_plan_disables_sites_inside_context(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="crash"),
        ))
        with use_fault_plan(plan, shard_id="day:a"):
            with use_fault_plan(None):
                fault_point("shard.start")  # suppressed
            with pytest.raises(InjectedCrash):
                fault_point("shard.start")

    def test_context_restores_after_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_fault_plan(FaultPlan(seed=1), shard_id="day:a"):
                raise RuntimeError("boom")
        assert active_fault_context() is None


# -- the environment knob ----------------------------------------------------

class TestEnvSpec:
    def test_parse_full_spec(self):
        plan = parse_fault_plan(
            "seed=20260805, rate=0.1, attempts=2, site=elff.read"
        )
        assert plan == FaultPlan(
            seed=20260805, rate=0.1, rate_attempts=2,
            rate_site="elff.read",
        )

    def test_parse_defaults(self):
        assert parse_fault_plan("") == FaultPlan()
        assert parse_fault_plan("seed=5") == FaultPlan(seed=5)

    @pytest.mark.parametrize("spec", [
        "seed=abc", "rate=lots", "volume=11", "rate=1.5", "rate=-0.1",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)

    def test_plan_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert plan_from_env() is None

    def test_plan_from_env_parses_and_tracks_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=7,rate=0.5")
        assert plan_from_env() == FaultPlan(seed=7, rate=0.5)
        assert plan_from_env() == FaultPlan(seed=7, rate=0.5)  # cached
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=8")
        assert plan_from_env() == FaultPlan(seed=8)


# -- the quarantine report monoid --------------------------------------------

def _failure(tag: str, attempts: int = 3) -> ShardFailure:
    return ShardFailure(
        shard_id=f"day:{tag}", site="shard.start", attempts=attempts,
        error=f"InjectedCrash({tag!r})",
    )


#: Strategy for arbitrary reports (as lists of failures, then wrapped —
#: ShardFailureReport is mutable, so strategies hand out fresh copies).
_failures = st.lists(
    st.builds(
        ShardFailure,
        shard_id=st.text(min_size=1, max_size=8),
        site=st.sampled_from(FAULT_SITES),
        attempts=st.integers(min_value=1, max_value=9),
        error=st.text(max_size=16),
    ),
    max_size=6,
)


class TestShardFailureReport:
    def test_add_and_introspection(self):
        report = ShardFailureReport()
        assert not report
        assert len(report) == 0
        report.add(_failure("a"))
        report.add(_failure("b"))
        assert report
        assert len(report) == 2
        assert report.shard_ids() == ["day:a", "day:b"]
        assert [f.shard_id for f in report] == ["day:a", "day:b"]

    def test_to_dict_is_json_shaped(self):
        report = ShardFailureReport([_failure("a", attempts=2)])
        assert report.to_dict() == [{
            "shard_id": "day:a", "site": "shard.start",
            "attempts": 2, "error": "InjectedCrash('a')",
        }]

    def test_copy_is_independent(self):
        report = ShardFailureReport([_failure("a")])
        clone = report.copy()
        clone.add(_failure("b"))
        assert len(report) == 1
        assert len(clone) == 2

    def test_sum_reduces_parts(self):
        parts = [
            ShardFailureReport([_failure("a")]),
            ShardFailureReport(),
            ShardFailureReport([_failure("b"), _failure("c")]),
        ]
        total = sum(parts, ShardFailureReport())
        assert total.shard_ids() == ["day:a", "day:b", "day:c"]
        assert len(parts[0]) == 1  # __add__ did not mutate the parts

    @given(_failures)
    def test_identity(self, failures):
        report = ShardFailureReport(failures)
        assert ShardFailureReport() + report == report
        assert report + ShardFailureReport() == report
        merged = ShardFailureReport(failures)
        merged += ShardFailureReport()
        assert merged == report

    @given(_failures, _failures, _failures)
    def test_associativity(self, a, b, c):
        left = (
            ShardFailureReport(a) + ShardFailureReport(b)
        ) + ShardFailureReport(c)
        right = ShardFailureReport(a) + (
            ShardFailureReport(b) + ShardFailureReport(c)
        )
        assert left == right

    @given(_failures, _failures)
    def test_iadd_matches_add(self, a, b):
        via_add = ShardFailureReport(a) + ShardFailureReport(b)
        accumulated = ShardFailureReport(a)
        accumulated += ShardFailureReport(b)
        assert accumulated == via_add
        assert via_add.failures == list(a) + list(b)

    @given(_failures, _failures)
    def test_merge_returns_self_and_concatenates(self, a, b):
        report = ShardFailureReport(a)
        assert report.merge(ShardFailureReport(b)) is report
        assert report.failures == list(a) + list(b)
