"""Shared test helpers: compact frame/record construction."""

from __future__ import annotations

import numpy as np

from repro.frame import LogFrame, frame_from_records
from repro.logmodel.record import LogRecord
from repro.timeline import day_epoch

DEFAULT_EPOCH = day_epoch("2011-08-03") + 10 * 3600


def make_record(**overrides) -> LogRecord:
    """A LogRecord with sensible defaults, overridable per field."""
    values = dict(
        epoch=DEFAULT_EPOCH,
        c_ip="0.0.0.0",
        s_ip="82.137.200.42",
        cs_host="www.example.com",
        cs_uri_path="/",
        cs_uri_query="",
        sc_filter_result="OBSERVED",
        x_exception_id="-",
    )
    values.update(overrides)
    return LogRecord(**values)


def make_frame(rows: list[dict]) -> LogFrame:
    """Build a LogFrame from partial row dicts (record defaults)."""
    return frame_from_records([make_record(**row) for row in rows])


def censored_row(**overrides) -> dict:
    row = dict(sc_filter_result="DENIED", x_exception_id="policy_denied")
    row.update(overrides)
    return row


def allowed_row(**overrides) -> dict:
    row = dict(sc_filter_result="OBSERVED", x_exception_id="-")
    row.update(overrides)
    return row


def error_row(exception: str = "tcp_error", **overrides) -> dict:
    row = dict(sc_filter_result="DENIED", x_exception_id=exception)
    row.update(overrides)
    return row


def proxied_row(**overrides) -> dict:
    row = dict(sc_filter_result="PROXIED", x_exception_id="-")
    row.update(overrides)
    return row


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
