"""Tests for the SG-9000 appliance and the fleet."""

import numpy as np
import pytest

from repro.catalog.domains import build_domain_universe
from repro.policy import HostBlacklistRule, KeywordRule, PolicyEngine, RedirectHostRule
from repro.policy.cache import CacheModel
from repro.policy.errors import ErrorModel
from repro.policy.syria import build_syrian_policy
from repro.proxy import CategoryNaming, ProxyFleet, RoutingPolicy, SG9000
from repro.timeline import day_epoch
from repro.traffic import Request, connect_request
from tests.helpers import rng


def request(**kw) -> Request:
    defaults = dict(
        epoch=day_epoch("2011-08-03") + 3600,
        c_ip="31.9.1.2",
        user_agent="UA",
        host="www.example.com",
    )
    defaults.update(kw)
    return Request(**defaults)


def make_proxy(rules=(), **kw) -> SG9000:
    return SG9000(
        "SG-42",
        PolicyEngine(list(rules)),
        cache=CacheModel(cache_rate=0.0),
        error_model=ErrorModel({}),
        **kw,
    )


class TestSG9000:
    def test_allowed_request_record(self):
        record = make_proxy().process(request(), rng())
        assert record.sc_filter_result == "OBSERVED"
        assert record.x_exception_id == "-"
        assert record.s_ip == "82.137.200.42"
        assert record.cs_host == "www.example.com"
        assert record.s_action == "TCP_NC_MISS"
        assert record.s_supplier_name == "www.example.com"

    def test_censored_request_record(self):
        proxy = make_proxy([HostBlacklistRule(["www.example.com"])])
        record = proxy.process(request(), rng())
        assert record.sc_filter_result == "DENIED"
        assert record.x_exception_id == "policy_denied"
        assert record.sc_status == 403
        assert record.s_action == "TCP_DENIED"
        assert record.s_supplier_name == "-"

    def test_redirected_request_record(self):
        proxy = make_proxy([RedirectHostRule(["www.example.com"])])
        record = proxy.process(request(), rng())
        assert record.x_exception_id == "policy_redirect"
        assert record.sc_status == 302
        assert record.s_action == "TCP_POLICY_REDIRECT"

    def test_error_injection(self):
        proxy = SG9000(
            "SG-42",
            PolicyEngine([]),
            cache=CacheModel(cache_rate=0.0),
            error_model=ErrorModel({"tcp_error": 1.0 - 1e-9}),
        )
        record = proxy.process(request(), rng())
        assert record.x_exception_id == "tcp_error"
        assert record.sc_filter_result == "DENIED"
        assert record.s_action == "TCP_ERR_MISS"

    def test_errors_do_not_override_policy(self):
        proxy = SG9000(
            "SG-42",
            PolicyEngine([HostBlacklistRule(["www.example.com"])]),
            cache=CacheModel(cache_rate=0.0),
            error_model=ErrorModel({"tcp_error": 1.0 - 1e-9}),
        )
        record = proxy.process(request(), rng())
        assert record.x_exception_id == "policy_denied"

    def test_cached_request_is_proxied(self):
        proxy = SG9000(
            "SG-42",
            PolicyEngine([]),
            cache=CacheModel(cache_rate=1.0),
            error_model=ErrorModel({}),
        )
        record = proxy.process(request(), rng())
        assert record.sc_filter_result == "PROXIED"
        assert record.s_action == "TCP_HIT"

    def test_cached_censored_request_may_lose_exception(self):
        proxy = SG9000(
            "SG-42",
            PolicyEngine([HostBlacklistRule(["www.example.com"])]),
            cache=CacheModel(cache_rate=1.0, clear_exception_share=1.0),
            error_model=ErrorModel({}),
        )
        record = proxy.process(request(), rng())
        assert record.sc_filter_result == "PROXIED"
        assert record.x_exception_id == "-"  # the paper's inconsistency

    def test_connect_request_logging(self):
        record = make_proxy().process(
            connect_request(day_epoch("2011-08-03"), "31.9.1.2", "UA",
                            "www.example.com", 443, "browsing"),
            rng(),
        )
        assert record.cs_method == "CONNECT"
        assert record.cs_uri_path == "-"
        assert record.cs_uri_query == "-"
        assert record.cs_uri_port == 443
        assert record.s_action == "TCP_TUNNELED"

    def test_custom_category_label(self):
        naming = CategoryNaming("unavailable", "Blocked sites; unavailable")
        assert naming.label(None) == "unavailable"
        assert naming.label("Blocked sites") == "Blocked sites; unavailable"

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            SG9000("proxy-1", PolicyEngine([]))


class TestRoutingPolicy:
    def test_single_active_proxy_wins(self):
        routing = RoutingPolicy()
        assert routing.route(request(), ("SG-42",), rng()) == "SG-42"

    def test_override_routes_metacafe_to_sg48(self):
        routing = RoutingPolicy()
        counts = {}
        generator = rng(0)
        active = tuple(f"SG-{n}" for n in range(42, 49))
        for _ in range(400):
            name = routing.route(
                request(host="www.metacafe.com"), active, generator
            )
            counts[name] = counts.get(name, 0) + 1
        assert counts["SG-48"] > 320

    def test_uniform_for_unlisted_domain(self):
        routing = RoutingPolicy()
        counts = {}
        generator = rng(0)
        active = tuple(f"SG-{n}" for n in range(42, 49))
        for _ in range(700):
            name = routing.route(request(host="plain.example.com"), active, generator)
            counts[name] = counts.get(name, 0) + 1
        assert len(counts) == 7
        assert max(counts.values()) < 200

    def test_rejects_overweight_overrides(self):
        with pytest.raises(ValueError):
            RoutingPolicy({"x.com": (("SG-42", 0.7), ("SG-43", 0.6))})


class TestProxyFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        sites = build_domain_universe(tail_count=10)
        policy = build_syrian_policy(sites)
        return ProxyFleet(policy)

    def test_july_days_use_sg42_only(self, fleet):
        assert fleet.active_proxies(day_epoch("2011-07-22") + 100) == ("SG-42",)
        assert fleet.active_proxies(day_epoch("2011-07-31") + 100) == ("SG-42",)

    def test_august_days_use_all_proxies(self, fleet):
        assert len(fleet.active_proxies(day_epoch("2011-08-03") + 100)) == 7

    def test_category_naming_split(self, fleet):
        assert fleet.proxies["SG-43"].naming.default_label == "none"
        assert fleet.proxies["SG-48"].naming.default_label == "none"
        assert fleet.proxies["SG-42"].naming.default_label == "unavailable"
        assert (
            fleet.proxies["SG-44"].naming.custom_label
            == "Blocked sites; unavailable"
        )

    def test_process_assigns_active_proxy(self, fleet):
        record = fleet.process(
            request(epoch=day_epoch("2011-07-22") + 50), rng()
        )
        assert record.s_ip.endswith(".42")

    def test_process_all(self, fleet):
        records = fleet.process_all([request(), request()], rng())
        assert len(records) == 2
