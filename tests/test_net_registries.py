"""Tests for the port registry and user-agent catalog."""

from repro.net.ports import TOR_DIR_PORTS, TOR_OR_PORTS, WELL_KNOWN_PORTS, service_name
from repro.net.useragent import (
    ALL_AGENTS,
    BITTORRENT_AGENTS,
    BROWSERS,
    SOFTWARE_AGENTS,
    classify_agent,
)


class TestPorts:
    def test_web_ports(self):
        assert service_name(80) == "http"
        assert service_name(443) == "https"

    def test_tor_ports_registered(self):
        assert service_name(9001) == "tor-or"
        assert service_name(9030) == "tor-dir"
        assert 9001 in TOR_OR_PORTS
        assert 9030 in TOR_DIR_PORTS

    def test_unknown_port(self):
        assert service_name(54321) == "other"

    def test_registry_consistency(self):
        # the labels the Fig. 1 analysis prints must be unique per port
        assert len(WELL_KNOWN_PORTS) == len(set(WELL_KNOWN_PORTS))
        assert all(isinstance(p, int) for p in WELL_KNOWN_PORTS)


class TestUserAgents:
    def test_browsers_are_interactive(self):
        assert all(agent.interactive for agent in BROWSERS)

    def test_software_agents_are_not(self):
        assert all(not agent.interactive for agent in SOFTWARE_AGENTS)
        assert all(not agent.interactive for agent in BITTORRENT_AGENTS)

    def test_catalog_strings_unique(self):
        strings = [agent.string for agent in ALL_AGENTS]
        assert len(strings) == len(set(strings))

    def test_classify_known_agent(self):
        skype = classify_agent("Skype WISPr")
        assert skype is not None
        assert skype.family == "skype-updater"
        assert not skype.interactive

    def test_classify_unknown_agent(self):
        assert classify_agent("TotallyUnknown/1.0") is None

    def test_paper_relevant_families_present(self):
        families = {agent.family for agent in ALL_AGENTS}
        # the agents the paper's analyses lean on
        for family in ("skype-updater", "google-toolbar", "msn",
                       "windows-update", "utorrent"):
            assert family in families
